//! Sketch-to-SQL decoding: slot-filling an intent with linked schema
//! elements and extracted values, plus tier-scaled corruption noise.

use crate::intent::Intent;
use crate::linking::Linker;
use crate::values::ExtractedValues;
use rand::rngs::StdRng;
use rand::Rng;
use sqlkit::ast::*;

/// Decode an intent into a query against the linked schema.
///
/// Returns `None` when the schema offers no way to realize the intent (the
/// model then falls back to a trivial query — see the model driver).
pub fn decode(
    intent: Intent,
    linker: &Linker<'_>,
    vals: &ExtractedValues,
    rng: &mut StdRng,
    tier: f64,
) -> Option<Query> {
    if linker.n_tables() == 0 {
        return None;
    }
    let d = Decoder { linker, vals, tier };
    d.decode(intent, rng)
}

struct Decoder<'a, 'b> {
    linker: &'a Linker<'b>,
    vals: &'a ExtractedValues,
    tier: f64,
}

impl Decoder<'_, '_> {
    fn decode(&self, intent: Intent, rng: &mut StdRng) -> Option<Query> {
        // A join sketch only makes sense when the question actually evokes a
        // second table; otherwise the model sensibly falls back to the
        // single-table variant of the same shape.
        let intent = if matches!(
            intent,
            Intent::JoinGroup
                | Intent::JoinFilter
                | Intent::JoinSuperlative
                | Intent::JoinGroupHaving
        ) {
            let ranked = self.linker.ranked_tables();
            let second_linked = ranked.get(1).map(|&(_, s)| s > 0.0).unwrap_or(false);
            if second_linked {
                intent
            } else {
                match intent {
                    Intent::JoinGroup => Intent::GroupCount,
                    Intent::JoinFilter => Intent::Filter,
                    Intent::JoinSuperlative => Intent::Superlative,
                    Intent::JoinGroupHaving => Intent::GroupHaving,
                    _ => unreachable!(),
                }
            }
        } else {
            intent
        };
        match intent {
            Intent::List => self.list(rng),
            Intent::Filter => self.filter(rng),
            Intent::CountAll => self.count_all(rng),
            Intent::CountWhere => self.count_where(rng),
            Intent::AggSingle => self.agg_single(rng),
            Intent::Superlative => self.superlative(rng),
            Intent::GroupCount => self.group_count(rng),
            Intent::GroupHaving => self.group_having(rng),
            Intent::JoinFilter => self.join_filter(rng),
            Intent::JoinGroup => self.join_group(rng),
            Intent::NestedIn => self.nested_in(rng),
            Intent::NestedNotIn => self.nested_not_in(rng),
            Intent::AboveAverage => self.above_average(rng),
            Intent::SetIntersect => self.set_op(SetOp::Intersect, rng),
            Intent::SetUnion => self.set_op(SetOp::Union, rng),
            Intent::SetExcept => self.set_op(SetOp::Except, rng),
            Intent::Distinct => self.distinct(rng),
            Intent::Between => self.between(rng),
            Intent::Like => self.like(rng),
            Intent::MostCommon => self.most_common(rng),
            Intent::MultiAgg => self.multi_agg(rng),
            Intent::TwoCond => self.two_cond(rng),
            Intent::JoinSuperlative => self.join_superlative(rng),
            Intent::JoinGroupHaving => self.join_group_having(rng),
            Intent::OrNested => self.or_nested(rng),
        }
    }

    // ---- shared pieces ----

    fn table(&self, rng: &mut StdRng) -> usize {
        let ranked = self.linker.ranked_tables();
        // Occasionally a weaker model grabs the wrong table when linking is
        // ambiguous (top two scores close).
        if ranked.len() >= 2 && ranked[0].1 - ranked[1].1 < 0.05 {
            let p_wrong = 0.25 * (1.0 - self.tier);
            if rng.gen_bool(p_wrong) {
                return ranked[1].0;
            }
        }
        ranked[0].0
    }

    fn tname(&self, ti: usize) -> String {
        self.linker.table(ti).name.clone()
    }

    fn cname(&self, ti: usize, ci: usize) -> String {
        self.linker.table(ti).columns[ci].clone()
    }

    fn col(&self, ti: usize, ci: usize, alias: Option<&str>) -> Expr {
        Expr::Col(ColumnRef {
            table: alias.map(str::to_string),
            column: self.cname(ti, ci),
        })
    }

    #[allow(clippy::wrong_self_convention)] // builds a FROM clause
    fn from_one(&self, ti: usize) -> FromClause {
        FromClause {
            base: TableRef::Named {
                name: self.tname(ti),
                alias: None,
            },
            joins: vec![],
        }
    }

    /// Comparison operator implied by the question's wording.
    fn cmp_op(&self) -> CmpOp {
        let q = format!(" {} ", self.linker.parsed.question.to_lowercase());
        if q.contains("at least") {
            CmpOp::Ge
        } else if q.contains("at most") {
            CmpOp::Le
        } else if q.contains("less than") || q.contains(" below ") || q.contains(" under ") {
            CmpOp::Lt
        } else {
            // greater than / above / over / older than / exceeds / default
            CmpOp::Gt
        }
    }

    /// The measure column the question conditions on.
    fn measure(&self, ti: usize, rng: &mut StdRng) -> Option<usize> {
        let ci = self.linker.measure_column(ti)?;
        // Mislinks under ambiguity for weak models.
        if rng.gen_bool(0.12 * (1.0 - self.tier)) {
            let ranked = self.linker.ranked_columns(ti);
            if let Some(&(alt, _)) = ranked.iter().find(|&&(c, _)| c != ci) {
                return Some(alt);
            }
        }
        Some(ci)
    }

    /// Projection column, preferring linked words not used by the condition;
    /// falls back to a name/title column, never an id.
    fn projection(&self, ti: usize, exclude: Option<usize>) -> usize {
        let ranked = self.linker.ranked_columns(ti);
        for &(ci, score) in &ranked {
            if Some(ci) == exclude || self.linker.is_idlike(ti, ci) {
                continue;
            }
            if score > 0.34 {
                return ci;
            }
        }
        // Name/title columns read best.
        let t = self.linker.table(ti);
        for (ci, cname) in t.columns.iter().enumerate() {
            let lc = cname.to_lowercase();
            if Some(ci) != exclude && (lc == "name" || lc == "title" || lc.ends_with("_name")) {
                return ci;
            }
        }
        // First non-id, non-excluded column in schema order.
        (0..t.columns.len())
            .find(|&ci| Some(ci) != exclude && !self.linker.is_idlike(ti, ci))
            .or_else(|| (0..t.columns.len()).find(|&ci| Some(ci) != exclude))
            .unwrap_or(0)
    }

    fn number(&self) -> Option<Literal> {
        self.vals.numbers.first().cloned()
    }

    fn string_value(&self) -> Option<Literal> {
        if let Some(s) = self.vals.strings.last() {
            return Some(Literal::Str(s.clone()));
        }
        // No capitalized/quoted value in the question: sampled table content
        // in the prompt can still identify it ("equal to pop" → 'Pop'). This
        // is the mechanism behind the paper's table-content toggle.
        let q = format!(" {} ", self.linker.parsed.question.to_lowercase());
        self.linker
            .parsed
            .content_values
            .iter()
            .find(|v| {
                q.contains(&format!(" {} ", v.to_lowercase()))
                    || q.contains(&format!(" {}?", v.to_lowercase()))
            })
            .map(|v| Literal::Str(v.clone()))
    }

    /// Resolve the two tables of a join intent: (parent, child).
    ///
    /// With FK info in the prompt, orientation is read off the key edge.
    /// Without it, the model guesses by name patterns — deliberately made
    /// unreliable (real-world schemas rarely name keys so helpfully), which
    /// is the mechanism behind the paper's foreign-key ablation.
    fn join_pair(&self, rng: &mut StdRng) -> Option<(usize, usize, String, String)> {
        let ranked = self.linker.ranked_tables();
        if ranked.len() < 2 {
            return None;
        }
        let (a, b) = (ranked[0].0, ranked[1].0);
        if let Some((ca, cb)) = self.linker.fk_between(b, a) {
            // fk_between(child?, parent?) returned (col_in_b, col_in_a):
            // orient so that `from` is the parent (the table whose column is
            // referenced). We check both directions explicitly instead.
            let _ = (ca, cb);
        }
        // Explicit orientation from FK edges. Even with FK info, weaker
        // models occasionally confuse which side of the relationship the
        // question asks about.
        for &(x, y) in &[(a, b), (b, a)] {
            let tx = &self.linker.table(x).name;
            let ty = &self.linker.table(y).name;
            for fk in &self.linker.parsed.fks {
                if fk.from_table.eq_ignore_ascii_case(ty) && fk.to_table.eq_ignore_ascii_case(tx) {
                    // y is child of x.
                    if rng.gen_bool((0.30 * (1.0 - self.tier).powf(0.7)).clamp(0.0, 0.45)) {
                        // Swapped reading: treats the child as the entity of
                        // interest.
                        return Some((y, x, fk.from_column.clone(), fk.to_column.clone()));
                    }
                    return Some((x, y, fk.to_column.clone(), fk.from_column.clone()));
                }
            }
        }
        // No FK info: name-based guess succeeds with probability that grows
        // with capability; failure links the wrong columns.
        let p_guess = 0.45 + 0.5 * self.tier;
        if let Some((ca, cb)) = self.linker.guess_join(a, b) {
            if rng.gen_bool(p_guess.clamp(0.0, 1.0)) {
                return Some((a, b, ca, cb));
            }
        }
        // Wrong guess: join first columns (likely ids that do not
        // correspond), producing plausible-looking but wrong SQL.
        let ca = self.linker.table(a).columns.first()?.clone();
        let cb = self.linker.table(b).columns.first()?.clone();
        Some((a, b, ca, cb))
    }

    #[allow(clippy::wrong_self_convention)] // builds a FROM clause
    fn from_join(&self, parent: usize, child: usize, pc: &str, cc: &str) -> FromClause {
        FromClause {
            base: TableRef::Named {
                name: self.tname(parent),
                alias: Some("T1".into()),
            },
            joins: vec![Join {
                table: TableRef::Named {
                    name: self.tname(child),
                    alias: Some("T2".into()),
                },
                on: Some(Cond::Cmp {
                    left: Expr::Col(ColumnRef::qualified("T1", pc)),
                    op: CmpOp::Eq,
                    right: Operand::Expr(Expr::Col(ColumnRef::qualified("T2", cc))),
                }),
            }],
        }
    }

    /// A WHERE condition for count/filter intents: equality on a category
    /// when the question carries a string value, else a numeric comparison.
    fn simple_condition(&self, ti: usize, rng: &mut StdRng) -> Option<(Cond, Option<usize>)> {
        if let Some(v) = self.string_value() {
            let ci = self.linker.category_column(ti)?;
            return Some((
                Cond::Cmp {
                    left: self.col(ti, ci, None),
                    op: CmpOp::Eq,
                    right: Operand::Expr(Expr::Lit(v)),
                },
                Some(ci),
            ));
        }
        let n = self.number()?;
        let ci = self.measure(ti, rng)?;
        Some((
            Cond::Cmp {
                left: self.col(ti, ci, None),
                op: self.cmp_op(),
                right: Operand::Expr(Expr::Lit(n)),
            },
            Some(ci),
        ))
    }

    // ---- intents ----

    fn list(&self, rng: &mut StdRng) -> Option<Query> {
        let ti = self.table(rng);
        let ci = self.projection(ti, None);
        Some(Query::Select(Select {
            items: vec![SelectItem::bare(self.col(ti, ci, None))],
            from: Some(self.from_one(ti)),
            ..Select::default()
        }))
    }

    fn filter(&self, rng: &mut StdRng) -> Option<Query> {
        let ti = self.table(rng);
        let (cond, used) = self.simple_condition(ti, rng)?;
        let ci = self.projection(ti, used);
        Some(Query::Select(Select {
            items: vec![SelectItem::bare(self.col(ti, ci, None))],
            from: Some(self.from_one(ti)),
            where_cond: Some(cond),
            ..Select::default()
        }))
    }

    fn count_all(&self, rng: &mut StdRng) -> Option<Query> {
        let ti = self.table(rng);
        Some(Query::Select(Select {
            items: vec![SelectItem::bare(count_star())],
            from: Some(self.from_one(ti)),
            ..Select::default()
        }))
    }

    fn count_where(&self, rng: &mut StdRng) -> Option<Query> {
        let ti = self.table(rng);
        let (cond, _) = self.simple_condition(ti, rng)?;
        Some(Query::Select(Select {
            items: vec![SelectItem::bare(count_star())],
            from: Some(self.from_one(ti)),
            where_cond: Some(cond),
            ..Select::default()
        }))
    }

    fn agg_func_from_question(&self) -> AggFunc {
        let q = self.linker.parsed.question.to_lowercase();
        if q.contains("average") || q.contains("typical") {
            AggFunc::Avg
        } else if q.contains("total") || q.contains("sum") {
            AggFunc::Sum
        } else if q.contains("minimum") || q.contains("smallest") || q.contains("lowest") {
            AggFunc::Min
        } else {
            AggFunc::Max
        }
    }

    fn agg_single(&self, rng: &mut StdRng) -> Option<Query> {
        let ti = self.table(rng);
        let ci = self.measure(ti, rng)?;
        let func = self.agg_func_from_question();
        Some(Query::Select(Select {
            items: vec![SelectItem::bare(Expr::Agg {
                func,
                distinct: false,
                arg: Box::new(self.col(ti, ci, None)),
            })],
            from: Some(self.from_one(ti)),
            ..Select::default()
        }))
    }

    fn sort_dir(&self) -> SortDir {
        let q = self.linker.parsed.question.to_lowercase();
        if q.contains("lowest")
            || q.contains("smallest")
            || q.contains("ranks last")
            || q.contains("youngest")
            || q.contains("minimum")
        {
            SortDir::Asc
        } else {
            SortDir::Desc
        }
    }

    fn superlative(&self, rng: &mut StdRng) -> Option<Query> {
        let ti = self.table(rng);
        let key = self.measure(ti, rng)?;
        let proj = self.projection(ti, Some(key));
        Some(Query::Select(Select {
            items: vec![SelectItem::bare(self.col(ti, proj, None))],
            from: Some(self.from_one(ti)),
            order_by: vec![OrderKey {
                expr: self.col(ti, key, None),
                dir: self.sort_dir(),
            }],
            limit: Some(1),
            ..Select::default()
        }))
    }

    fn group_count(&self, rng: &mut StdRng) -> Option<Query> {
        let ti = self.table(rng);
        let ci = self.linker.category_column(ti)?;
        Some(Query::Select(Select {
            items: vec![
                SelectItem::bare(self.col(ti, ci, None)),
                SelectItem::bare(count_star()),
            ],
            from: Some(self.from_one(ti)),
            group_by: vec![ColumnRef::new(self.cname(ti, ci))],
            ..Select::default()
        }))
    }

    fn group_having(&self, rng: &mut StdRng) -> Option<Query> {
        let ti = self.table(rng);
        let ci = self.linker.category_column(ti)?;
        let n = self.number().unwrap_or(Literal::Int(1));
        Some(Query::Select(Select {
            items: vec![SelectItem::bare(self.col(ti, ci, None))],
            from: Some(self.from_one(ti)),
            group_by: vec![ColumnRef::new(self.cname(ti, ci))],
            having: Some(Cond::Cmp {
                left: count_star(),
                op: CmpOp::Gt,
                right: Operand::Expr(Expr::Lit(n)),
            }),
            ..Select::default()
        }))
    }

    fn join_filter(&self, rng: &mut StdRng) -> Option<Query> {
        let (parent, child, pc, cc) = self.join_pair(rng)?;
        let proj = self.projection(parent, None);
        // Condition on the child side.
        let cond = if let Some(v) = self.string_value() {
            let ci = self.linker.category_column(child)?;
            Cond::Cmp {
                left: self.col(child, ci, Some("T2")),
                op: CmpOp::Eq,
                right: Operand::Expr(Expr::Lit(v)),
            }
        } else {
            let n = self.number()?;
            let ci = self.measure(child, rng)?;
            Cond::Cmp {
                left: self.col(child, ci, Some("T2")),
                op: self.cmp_op(),
                right: Operand::Expr(Expr::Lit(n)),
            }
        };
        Some(Query::Select(Select {
            items: vec![SelectItem::bare(self.col(parent, proj, Some("T1")))],
            from: Some(self.from_join(parent, child, &pc, &cc)),
            where_cond: Some(cond),
            ..Select::default()
        }))
    }

    fn join_group(&self, rng: &mut StdRng) -> Option<Query> {
        let (parent, child, pc, cc) = self.join_pair(rng)?;
        let proj = self.projection(parent, None);
        Some(Query::Select(Select {
            items: vec![
                SelectItem::bare(self.col(parent, proj, Some("T1"))),
                SelectItem::bare(count_star()),
            ],
            from: Some(self.from_join(parent, child, &pc, &cc)),
            group_by: vec![ColumnRef::qualified("T1", pc)],
            ..Select::default()
        }))
    }

    fn nested_in(&self, rng: &mut StdRng) -> Option<Query> {
        let (parent, child, pc, cc) = self.join_pair(rng)?;
        let proj = self.projection(parent, None);
        let n = self.number()?;
        let ci = self.measure(child, rng)?;
        let sub = Query::Select(Select {
            items: vec![SelectItem::bare(Expr::Col(ColumnRef::new(cc)))],
            from: Some(self.from_one(child)),
            where_cond: Some(Cond::Cmp {
                left: self.col(child, ci, None),
                op: CmpOp::Gt,
                right: Operand::Expr(Expr::Lit(n)),
            }),
            ..Select::default()
        });
        Some(Query::Select(Select {
            items: vec![SelectItem::bare(self.col(parent, proj, None))],
            from: Some(self.from_one(parent)),
            where_cond: Some(Cond::In {
                expr: Expr::Col(ColumnRef::new(pc)),
                negated: false,
                source: InSource::Subquery(Box::new(sub)),
            }),
            ..Select::default()
        }))
    }

    fn nested_not_in(&self, rng: &mut StdRng) -> Option<Query> {
        let (parent, child, pc, cc) = self.join_pair(rng)?;
        let proj = self.projection(parent, None);
        let sub = Query::Select(Select {
            items: vec![SelectItem::bare(Expr::Col(ColumnRef::new(cc)))],
            from: Some(self.from_one(child)),
            ..Select::default()
        });
        Some(Query::Select(Select {
            items: vec![SelectItem::bare(self.col(parent, proj, None))],
            from: Some(self.from_one(parent)),
            where_cond: Some(Cond::In {
                expr: Expr::Col(ColumnRef::new(pc)),
                negated: true,
                source: InSource::Subquery(Box::new(sub)),
            }),
            ..Select::default()
        }))
    }

    fn above_average(&self, rng: &mut StdRng) -> Option<Query> {
        let ti = self.table(rng);
        let ci = self.measure(ti, rng)?;
        let proj = self.projection(ti, Some(ci));
        let sub = Query::Select(Select {
            items: vec![SelectItem::bare(Expr::Agg {
                func: AggFunc::Avg,
                distinct: false,
                arg: Box::new(self.col(ti, ci, None)),
            })],
            from: Some(self.from_one(ti)),
            ..Select::default()
        });
        Some(Query::Select(Select {
            items: vec![SelectItem::bare(self.col(ti, proj, None))],
            from: Some(self.from_one(ti)),
            where_cond: Some(Cond::Cmp {
                left: self.col(ti, ci, None),
                op: CmpOp::Gt,
                right: Operand::Subquery(Box::new(sub)),
            }),
            ..Select::default()
        }))
    }

    fn set_op(&self, op: SetOp, rng: &mut StdRng) -> Option<Query> {
        let ti = self.table(rng);
        let proj = self.linker.category_column(ti)?;
        let n = self.number()?;
        let ci = self.measure(ti, rng)?;
        let side = |cmp: CmpOp| {
            Query::Select(Select {
                items: vec![SelectItem::bare(self.col(ti, proj, None))],
                from: Some(self.from_one(ti)),
                where_cond: Some(Cond::Cmp {
                    left: self.col(ti, ci, None),
                    op: cmp,
                    right: Operand::Expr(Expr::Lit(n.clone())),
                }),
                ..Select::default()
            })
        };
        Some(Query::Compound {
            op,
            left: Box::new(side(CmpOp::Gt)),
            right: Box::new(side(CmpOp::Lt)),
        })
    }

    fn distinct(&self, rng: &mut StdRng) -> Option<Query> {
        let ti = self.table(rng);
        let ci = self
            .linker
            .category_column(ti)
            .unwrap_or_else(|| self.projection(ti, None));
        Some(Query::Select(Select {
            distinct: true,
            items: vec![SelectItem::bare(self.col(ti, ci, None))],
            from: Some(self.from_one(ti)),
            ..Select::default()
        }))
    }

    fn between(&self, rng: &mut StdRng) -> Option<Query> {
        let ti = self.table(rng);
        if self.vals.numbers.len() < 2 {
            return None;
        }
        let ci = self.measure(ti, rng)?;
        let proj = self.projection(ti, Some(ci));
        Some(Query::Select(Select {
            items: vec![SelectItem::bare(self.col(ti, proj, None))],
            from: Some(self.from_one(ti)),
            where_cond: Some(Cond::Between {
                expr: self.col(ti, ci, None),
                negated: false,
                low: Expr::Lit(self.vals.numbers[0].clone()),
                high: Expr::Lit(self.vals.numbers[1].clone()),
            }),
            ..Select::default()
        }))
    }

    fn like(&self, rng: &mut StdRng) -> Option<Query> {
        let ti = self.table(rng);
        let prefix = self.vals.strings.first()?.clone();
        let ranked = self.linker.ranked_columns(ti);
        let ci = ranked
            .iter()
            .find(|&&(c, s)| s > 0.34 && !self.linker.is_idlike(ti, c))
            .map(|&(c, _)| c)
            .unwrap_or_else(|| self.linker.display_column(ti));
        Some(Query::Select(Select {
            items: vec![SelectItem::bare(self.col(ti, ci, None))],
            from: Some(self.from_one(ti)),
            where_cond: Some(Cond::Like {
                expr: self.col(ti, ci, None),
                negated: false,
                pattern: format!("{prefix}%"),
            }),
            ..Select::default()
        }))
    }

    fn most_common(&self, rng: &mut StdRng) -> Option<Query> {
        let ti = self.table(rng);
        let ci = self.linker.category_column(ti)?;
        Some(Query::Select(Select {
            items: vec![SelectItem::bare(self.col(ti, ci, None))],
            from: Some(self.from_one(ti)),
            group_by: vec![ColumnRef::new(self.cname(ti, ci))],
            order_by: vec![OrderKey {
                expr: count_star(),
                dir: SortDir::Desc,
            }],
            limit: Some(1),
            ..Select::default()
        }))
    }

    fn multi_agg(&self, rng: &mut StdRng) -> Option<Query> {
        let ti = self.table(rng);
        let ci = self.measure(ti, rng)?;
        let mk = |func| {
            SelectItem::bare(Expr::Agg {
                func,
                distinct: false,
                arg: Box::new(self.col(ti, ci, None)),
            })
        };
        Some(Query::Select(Select {
            items: vec![mk(AggFunc::Min), mk(AggFunc::Max), mk(AggFunc::Avg)],
            from: Some(self.from_one(ti)),
            ..Select::default()
        }))
    }

    fn two_cond(&self, rng: &mut StdRng) -> Option<Query> {
        let ti = self.table(rng);
        let n = self.number()?;
        let mi = self.measure(ti, rng)?;
        let v = self.string_value()?;
        let ci = self.linker.category_column(ti)?;
        let proj = self.projection(ti, Some(mi));
        let left = Cond::Cmp {
            left: self.col(ti, mi, None),
            op: self.cmp_op(),
            right: Operand::Expr(Expr::Lit(n)),
        };
        let right = Cond::Cmp {
            left: self.col(ti, ci, None),
            op: CmpOp::Eq,
            right: Operand::Expr(Expr::Lit(v)),
        };
        let q = self.linker.parsed.question.to_lowercase();
        let cond = if q.contains(" or ") {
            Cond::Or(Box::new(left), Box::new(right))
        } else {
            Cond::And(Box::new(left), Box::new(right))
        };
        Some(Query::Select(Select {
            items: vec![SelectItem::bare(self.col(ti, proj, None))],
            from: Some(self.from_one(ti)),
            where_cond: Some(cond),
            ..Select::default()
        }))
    }

    fn join_superlative(&self, rng: &mut StdRng) -> Option<Query> {
        let (parent, child, pc, cc) = self.join_pair(rng)?;
        let proj = self.projection(parent, None);
        let key = self.measure(child, rng)?;
        Some(Query::Select(Select {
            items: vec![SelectItem::bare(self.col(parent, proj, Some("T1")))],
            from: Some(self.from_join(parent, child, &pc, &cc)),
            order_by: vec![OrderKey {
                expr: self.col(child, key, Some("T2")),
                dir: self.sort_dir(),
            }],
            limit: Some(1),
            ..Select::default()
        }))
    }
}

impl Decoder<'_, '_> {
    fn join_group_having(&self, rng: &mut StdRng) -> Option<Query> {
        let (parent, child, pc, cc) = self.join_pair(rng)?;
        let proj = self.projection(parent, None);
        let n = self.number().unwrap_or(Literal::Int(1));
        Some(Query::Select(Select {
            items: vec![
                SelectItem::bare(self.col(parent, proj, Some("T1"))),
                SelectItem::bare(count_star()),
            ],
            from: Some(self.from_join(parent, child, &pc, &cc)),
            group_by: vec![ColumnRef::qualified("T1", pc)],
            having: Some(Cond::Cmp {
                left: count_star(),
                op: CmpOp::Gt,
                right: Operand::Expr(Expr::Lit(n)),
            }),
            order_by: vec![OrderKey {
                expr: count_star(),
                dir: SortDir::Desc,
            }],
            ..Select::default()
        }))
    }

    fn or_nested(&self, rng: &mut StdRng) -> Option<Query> {
        let (parent, child, pc, cc) = self.join_pair(rng)?;
        let proj = self.projection(parent, None);
        if self.vals.numbers.len() < 2 {
            return None;
        }
        let thr1 = self.vals.numbers[0].clone();
        let thr2 = self.vals.numbers[1].clone();
        let pm = self.measure(parent, rng)?;
        let cm = self.measure(child, rng)?;
        let sub = Query::Select(Select {
            items: vec![SelectItem::bare(Expr::Col(ColumnRef::new(cc)))],
            from: Some(self.from_one(child)),
            where_cond: Some(Cond::Cmp {
                left: self.col(child, cm, None),
                op: CmpOp::Gt,
                right: Operand::Expr(Expr::Lit(thr2)),
            }),
            ..Select::default()
        });
        Some(Query::Select(Select {
            items: vec![SelectItem::bare(self.col(parent, proj, None))],
            from: Some(self.from_one(parent)),
            where_cond: Some(Cond::Or(
                Box::new(Cond::Cmp {
                    left: self.col(parent, pm, None),
                    op: CmpOp::Gt,
                    right: Operand::Expr(Expr::Lit(thr1)),
                }),
                Box::new(Cond::In {
                    expr: Expr::Col(ColumnRef::new(pc)),
                    negated: false,
                    source: InSource::Subquery(Box::new(sub)),
                }),
            )),
            ..Select::default()
        }))
    }
}

fn count_star() -> Expr {
    Expr::Agg {
        func: AggFunc::Count,
        distinct: false,
        arg: Box::new(Expr::Star),
    }
}

/// Apply tier-scaled corruption noise to a decoded query.
///
/// Each corruption site fires independently with probability `p`; the sites
/// are the classic LLM slip-ups the paper's error analyses describe —
/// flipped comparison operators, wrong sort direction, swapped aggregates,
/// dropped DISTINCT, perturbed limits.
pub fn corrupt_query(q: &mut Query, rng: &mut StdRng, p: f64) {
    match q {
        Query::Select(s) => corrupt_select(s, rng, p),
        Query::Compound { left, right, .. } => {
            corrupt_query(left, rng, p);
            corrupt_query(right, rng, p);
        }
    }
}

fn corrupt_select(s: &mut Select, rng: &mut StdRng, p: f64) {
    if s.distinct && rng.gen_bool(p) {
        s.distinct = false;
    }
    for item in &mut s.items {
        corrupt_expr(&mut item.expr, rng, p);
    }
    if let Some(w) = &mut s.where_cond {
        corrupt_cond(w, rng, p);
    }
    if let Some(h) = &mut s.having {
        corrupt_cond(h, rng, p);
    }
    for k in &mut s.order_by {
        if rng.gen_bool(p) {
            k.dir = match k.dir {
                SortDir::Asc => SortDir::Desc,
                SortDir::Desc => SortDir::Asc,
            };
        }
    }
    if let Some(l) = &mut s.limit {
        if *l == 1 && rng.gen_bool(p * 0.5) {
            *l = rng.gen_range(2..5);
        }
    }
}

fn corrupt_expr(e: &mut Expr, rng: &mut StdRng, p: f64) {
    if let Expr::Agg { func, .. } = e {
        if rng.gen_bool(p) {
            *func = match func {
                AggFunc::Avg => AggFunc::Sum,
                AggFunc::Sum => AggFunc::Avg,
                AggFunc::Max => AggFunc::Min,
                AggFunc::Min => AggFunc::Max,
                AggFunc::Count => AggFunc::Count,
            };
        }
    }
}

fn corrupt_cond(c: &mut Cond, rng: &mut StdRng, p: f64) {
    match c {
        Cond::Cmp { op, right, .. } => {
            if rng.gen_bool(p) {
                *op = match op {
                    CmpOp::Gt => CmpOp::Ge,
                    CmpOp::Ge => CmpOp::Gt,
                    CmpOp::Lt => CmpOp::Le,
                    CmpOp::Le => CmpOp::Lt,
                    CmpOp::Eq => CmpOp::Eq,
                    CmpOp::Neq => CmpOp::Neq,
                };
            }
            if let Operand::Subquery(sub) = right {
                corrupt_query(sub, rng, p);
            }
        }
        Cond::In {
            source: InSource::Subquery(sub),
            negated,
            ..
        } => {
            if rng.gen_bool(p * 0.4) {
                *negated = !*negated;
            }
            corrupt_query(sub, rng, p);
        }
        Cond::And(l, r) | Cond::Or(l, r) => {
            corrupt_cond(l, rng, p);
            corrupt_cond(r, rng, p);
        }
        Cond::Not(inner) => corrupt_cond(inner, rng, p),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comprehend::parse_prompt;
    use crate::intent::Intent;
    use crate::linking::Linker;
    use crate::values;
    use promptkit::{render_prompt, QuestionRepr, ReprOptions};
    use rand::SeedableRng;
    use spider_gen::all_domains;

    fn run(question: &str, intent: Intent, tier: f64, fk: bool) -> Option<Query> {
        let schema = all_domains()[0].to_schema();
        let p = render_prompt(
            QuestionRepr::CodeRepr,
            &schema,
            None,
            question,
            ReprOptions {
                foreign_keys: fk,
                ..Default::default()
            },
        );
        let parsed = parse_prompt(&p);
        let linker = Linker::new(&parsed);
        let vals = values::extract(question);
        let mut rng = StdRng::seed_from_u64(1);
        decode(intent, &linker, &vals, &mut rng, tier)
    }

    #[test]
    fn decodes_count_all() {
        let q = run("How many singers are there?", Intent::CountAll, 0.95, true).unwrap();
        assert_eq!(q.to_string(), "SELECT COUNT(*) FROM singer");
    }

    #[test]
    fn decodes_filter_with_threshold() {
        let q = run(
            "What is the name of the singers whose age is greater than 40?",
            Intent::Filter,
            0.95,
            true,
        )
        .unwrap();
        assert_eq!(q.to_string(), "SELECT name FROM singer WHERE age > 40");
    }

    #[test]
    fn decodes_category_equality() {
        let q = run(
            "How many singers have country equal to France?",
            Intent::CountWhere,
            0.95,
            true,
        )
        .unwrap();
        assert_eq!(
            q.to_string(),
            "SELECT COUNT(*) FROM singer WHERE country = 'France'"
        );
    }

    #[test]
    fn decodes_superlative() {
        let q = run(
            "What is the name of the singer with the highest age?",
            Intent::Superlative,
            0.95,
            true,
        )
        .unwrap();
        assert_eq!(
            q.to_string(),
            "SELECT name FROM singer ORDER BY age DESC LIMIT 1"
        );
    }

    #[test]
    fn decodes_group_count() {
        let q = run(
            "Show the number of singers for each country.",
            Intent::GroupCount,
            0.95,
            true,
        )
        .unwrap();
        assert_eq!(
            q.to_string(),
            "SELECT country, COUNT(*) FROM singer GROUP BY country"
        );
    }

    #[test]
    fn join_uses_fk_when_present() {
        let q = run(
            "How many concerts does each singer have? Show the name and the count.",
            Intent::JoinGroup,
            0.95,
            true,
        )
        .unwrap();
        let sql = q.to_string();
        assert!(sql.contains("JOIN"), "{sql}");
        assert!(
            sql.contains("T1.singer_id = T2.singer_id")
                || sql.contains("T2.singer_id = T1.singer_id"),
            "{sql}"
        );
    }

    #[test]
    fn join_without_fk_is_less_reliable_for_weak_models() {
        // Weak model, no FK info: across seeds, some decodes must produce a
        // wrong join (first-column fallback).
        let schema = all_domains()[0].to_schema();
        let question = "How many concerts does each singer have? Show the name and the count.";
        let p = render_prompt(
            QuestionRepr::CodeRepr,
            &schema,
            None,
            question,
            ReprOptions {
                foreign_keys: false,
                ..Default::default()
            },
        );
        let parsed = parse_prompt(&p);
        let linker = Linker::new(&parsed);
        let vals = values::extract(question);
        let mut wrong = 0;
        for seed in 0..60 {
            let mut rng = StdRng::seed_from_u64(seed);
            let q = decode(Intent::JoinGroup, &linker, &vals, &mut rng, 0.3).unwrap();
            let sql = q.to_string();
            if !sql.contains("T2.singer_id") {
                wrong += 1;
            }
        }
        assert!(wrong > 5, "expected some wrong joins, got {wrong}");
        assert!(wrong < 45, "expected some correct joins, got {wrong} wrong");
    }

    #[test]
    fn corruption_changes_queries_at_high_p() {
        let q0 = run(
            "What is the name of the singer with the highest age?",
            Intent::Superlative,
            0.95,
            true,
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut q = q0.clone();
        corrupt_query(&mut q, &mut rng, 1.0);
        assert_ne!(q0, q);
    }

    #[test]
    fn corruption_is_noop_at_zero_p() {
        let q0 = run(
            "Show the name of singers with age between 20 and 30.",
            Intent::Between,
            0.95,
            true,
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut q = q0.clone();
        corrupt_query(&mut q, &mut rng, 0.0);
        assert_eq!(q0, q);
    }

    #[test]
    fn decoded_queries_execute_on_the_database() {
        let d = &all_domains()[0];
        let db = spider_gen::populate(d, 5);
        for (question, intent) in [
            ("How many singers are there?", Intent::CountAll),
            ("What is the average age of all singers?", Intent::AggSingle),
            (
                "List the distinct country of the singers.",
                Intent::Distinct,
            ),
            (
                "Which genre is the most common among the singers?",
                Intent::MostCommon,
            ),
            (
                "List the name of singers that do not have any concerts.",
                Intent::NestedNotIn,
            ),
        ] {
            let q = run(question, intent, 0.95, true).unwrap();
            storage::execute_query(&db, &q).unwrap_or_else(|e| panic!("{question}: {e}: {q}"));
        }
    }
}
