//! # simllm — calibrated stochastic semantic-parser LLM simulator
//!
//! The offline stand-in for the LLM APIs the paper benchmarks. A
//! [`SimLlm`] consumes *only the prompt string* and produces a completion:
//!
//! 1. **comprehension** — re-parse the prompt (schema, foreign keys,
//!    examples, question, instruction flags); information a representation
//!    omitted is genuinely unavailable downstream;
//! 2. **schema linking** — match question words to recovered tables/columns,
//!    with tier-scaled attention dropout;
//! 3. **intent induction** — cue-based sketch prior plus in-context example
//!    votes weighted by question similarity (the paper's question→skeleton
//!    learning hypothesis, made mechanical);
//! 4. **decoding** — slot-fill the sketch; joins use prompt FK info when
//!    present and unreliable name-guessing otherwise;
//! 5. **corruption** — tier-scaled slip-ups, damped by relevant examples;
//! 6. **formatting** — alignment-dependent chattiness, suppressed by the
//!    "no explanation" rule.
//!
//! Fine-tuning ([`SimLlm::finetune`]) raises capability toward a data-bound
//! ceiling, locks the expected prompt style, and collapses ICL weight —
//! reproducing the paper's SFT findings.
//!
//! Everything is deterministic given (prompt, seed, sample index).

#![warn(missing_docs)]

pub mod comprehend;
pub mod decode;
pub mod faults;
pub mod intent;
pub mod linking;
pub mod model;
pub mod profile;
pub mod sft;
pub mod values;

pub use comprehend::{parse_prompt, ParsedExample, ParsedFk, ParsedPrompt, ParsedTable};
pub use faults::{FaultConfig, FaultInjector, FaultPlan};
pub use intent::{intent_of_query, intent_of_sql, Intent};
pub use linking::Linker;
pub use model::{extract_sql, CompletionTrace, GenOptions, SimLlm};
pub use profile::{profile, ModelProfile, MAIN_STUDY, OPEN_SOURCE_STUDY, ZOO};
pub use sft::{detect_style, PromptStyle, SftState};
