//! The simulated LLM driver: prompt in, completion text out.
//!
//! `SimLlm::complete` chains the substrate stages — comprehension (with
//! tier-scaled attention dropout), schema linking, cue-based intent
//! induction with in-context example votes, sketch decoding, corruption
//! noise, and alignment-dependent output formatting. Everything is
//! deterministic given (prompt, seed, sample index).

use crate::comprehend::{parse_prompt, ParsedPrompt};
use crate::decode::{corrupt_query, decode};
use crate::intent::{fire_cues, rank_intents};
use crate::linking::Linker;
use crate::profile::{profile, ModelProfile};
use crate::sft::{detect_style, SftState};
use crate::values;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use textkit::text_cosine;

/// Generation options.
#[derive(Debug, Clone, Copy)]
pub struct GenOptions {
    /// Caller seed (combined with a prompt hash).
    pub seed: u64,
    /// Sampling temperature; 0 = greedy (sample index ignored).
    pub temperature: f64,
    /// Sample index for self-consistency sampling.
    pub sample_index: u32,
    /// Request trace context; when sampled, each completion opens a
    /// `simllm.complete` span under it. Never affects the output text.
    pub trace: obskit::TraceContext,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            seed: 0,
            temperature: 0.0,
            sample_index: 0,
            trace: obskit::TraceContext::disabled(),
        }
    }
}

/// A stage-by-stage account of one completion — the model's "anatomy".
///
/// Returned by [`SimLlm::complete_traced`]; useful for error analysis,
/// debugging prompt configurations, and the `model_anatomy` example.
#[derive(Debug, Clone, Default)]
pub struct CompletionTrace {
    /// Tables recovered from the prompt (post attention-dropout), with the
    /// columns the model actually retained.
    pub tables_seen: Vec<(String, usize)>,
    /// Foreign keys recovered.
    pub fks_seen: usize,
    /// In-context examples recovered.
    pub examples_seen: usize,
    /// The target question as understood.
    pub question: String,
    /// Effective capability tier after SFT/instruction adjustments.
    pub tier: f64,
    /// Effective alignment.
    pub alignment: f64,
    /// Cues that survived attention (id, weight).
    pub cues_kept: Vec<(usize, f64)>,
    /// Ranked intents after example votes (intent, score), best first.
    pub intent_ranking: Vec<(crate::intent::Intent, f64)>,
    /// The sketch the model committed to.
    pub intent: crate::intent::Intent,
    /// Demonstration stabilization signal in `[0, 1]`.
    pub stabilize: f64,
    /// Per-site systematic corruption probability applied.
    pub p_sys: f64,
    /// Per-site sampling corruption probability applied.
    pub p_noise: f64,
    /// The SQL before surface formatting.
    pub sql: String,
    /// The final response text.
    pub response: String,
}

/// A simulated LLM.
#[derive(Debug, Clone)]
pub struct SimLlm {
    /// The underlying profile.
    pub profile: ModelProfile,
    /// Fine-tuning state, when the model has been SFT'ed.
    pub sft: Option<SftState>,
}

impl SimLlm {
    /// Instantiate a model from the zoo by name.
    pub fn new(name: &str) -> Option<SimLlm> {
        profile(name).map(|p| SimLlm {
            profile: *p,
            sft: None,
        })
    }

    /// Instantiate from an explicit profile.
    pub fn from_profile(profile: ModelProfile) -> SimLlm {
        SimLlm { profile, sft: None }
    }

    /// Generate a completion for a prompt.
    ///
    /// Two error sources are deliberately separated: *systematic* errors
    /// (misreading the schema, overlooking a question cue, guessing a wrong
    /// join) are seeded only by the prompt and caller seed — they persist
    /// across temperature samples, so self-consistency voting cannot launder
    /// them away — while *sampling* noise (decoding slip-ups, formatting)
    /// additionally varies with the sample index.
    pub fn complete(&self, prompt: &str, opts: &GenOptions) -> String {
        self.complete_traced(prompt, opts).response
    }

    /// Like [`SimLlm::complete`], but also returns the full stage-by-stage
    /// trace. The `response` field is byte-identical to what `complete`
    /// returns for the same inputs.
    pub fn complete_traced(&self, prompt: &str, opts: &GenOptions) -> CompletionTrace {
        // Telemetry goes through the process-global recorder as counters and
        // latency histograms only — aggregates are order-independent, so
        // multi-threaded harness runs still produce deterministic traces.
        let obs = obskit::enabled().then(std::time::Instant::now);
        let (_gen_span, _gen_ctx) = opts.trace.span("simllm.complete");
        let mut trace = CompletionTrace::default();
        let comprehend_t = obs.map(|_| std::time::Instant::now());
        let mut parsed = parse_prompt(prompt);
        if let Some(t) = comprehend_t {
            let g = obskit::global();
            g.observe("simllm.comprehend_ns", t.elapsed().as_nanos() as u64);
            g.add_counter("simllm.tables_seen", parsed.tables.len() as u64);
            g.add_counter("simllm.examples_seen", parsed.examples.len() as u64);
        }

        // Systematic decisions are seeded by the *information content* of
        // the task — the question plus the recovered schema — not by the raw
        // prompt bytes. Two prompts that differ only in formatting (a toggle,
        // an extra example) therefore share their systematic draws: paired
        // comparisons isolate the mechanism under test instead of reshuffling
        // every error (the common-random-numbers variance-reduction idiom).
        let mut content_sig = String::with_capacity(128);
        content_sig.push_str(&parsed.question);
        for t in &parsed.tables {
            content_sig.push('\u{1}');
            content_sig.push_str(&t.name);
            for c in &t.columns {
                content_sig.push('\u{2}');
                content_sig.push_str(c);
            }
        }
        let sys_seed = fnv(&content_sig) ^ opts.seed.wrapping_mul(0x9E3779B97F4A7C15);
        // The sampling stream additionally varies with the surface form:
        // token-level noise is prompt-shape-sensitive even when the task
        // content is identical.
        let mut sample_seed =
            sys_seed ^ 0xA5A5A5A5A5A5A5A5 ^ fnv(&format!("{:?}", detect_style(prompt)));
        if opts.temperature > 0.0 {
            sample_seed ^= (opts.sample_index as u64).wrapping_mul(0xD1B54A32D192ED03) | 1;
        }
        // At temperature > 0 most samples explore an independent "reasoning
        // path": their systematic decisions re-roll too. This is what makes
        // self-consistency voting work at all — correct paths cluster on one
        // result while independent errors scatter — without letting it
        // launder the residual fully-systematic component.
        let mut path_rng = StdRng::seed_from_u64(sample_seed ^ 0x517cc1b727220a95);
        let reroll =
            opts.temperature > 0.0 && path_rng.gen_bool((0.75 * opts.temperature).clamp(0.0, 0.95));
        let mut sys_rng = StdRng::seed_from_u64(if reroll {
            sample_seed ^ 0xC2B2AE3D27D4EB4F
        } else {
            sys_seed
        });
        let mut rng = StdRng::seed_from_u64(sample_seed);

        // --- effective parameters (SFT shifts them per prompt style) ---
        let style = detect_style(prompt);
        let (tier, alignment, icl_weight) = match &self.sft {
            Some(sft) => sft.effective_params(&self.profile, style),
            None => (
                self.profile.tier,
                self.profile.alignment,
                self.profile.icl_weight,
            ),
        };
        // Temperature loosens decoding slightly (used for self-consistency).
        let mut tier = (tier - 0.04 * opts.temperature).clamp(0.02, 0.99);

        // A prompt with no task instruction at all (BS_P) leaves the model
        // guessing what is being asked — the paper's finding that detailed
        // instructions matter. Aligned models cope better.
        let has_instruction = parsed.has_rule
            || prompt.contains("Answer the following")
            || prompt.contains("Write a sql")
            || prompt.contains("Complete sqlite");
        if !has_instruction {
            tier = (tier - 0.05 - 0.10 * (1.0 - alignment)).clamp(0.02, 0.99);
        }

        // --- context window: drop earliest examples until the prompt fits ---
        let approx_tokens = prompt.len() / 4;
        if approx_tokens > self.profile.context_window {
            let overflow = approx_tokens - self.profile.context_window;
            // Rough per-example cost estimate; drop from the front.
            let per_example = 40.max(prompt.len() / (4 * (parsed.examples.len() + 4)));
            let drop = (overflow / per_example + 1).min(parsed.examples.len());
            parsed.examples.drain(..drop);
        }

        // --- comprehension dropout: weaker models overlook columns; the
        //     structured formats (DDL / pound-sign) are easier to read ---
        let structured =
            prompt.contains("CREATE TABLE") || prompt.contains("### SQLite SQL tables");
        let drop_p = 0.10 * (1.0 - tier) * if structured { 0.6 } else { 1.0 };
        for t in &mut parsed.tables {
            if t.columns.len() > 1 {
                let mut i = 0;
                while i < t.columns.len() {
                    if t.columns.len() > 1 && sys_rng.gen_bool(drop_p) {
                        t.columns.remove(i);
                        if i < t.types.len() {
                            t.types.remove(i);
                        }
                    } else {
                        i += 1;
                    }
                }
            }
        }

        trace.tables_seen = parsed
            .tables
            .iter()
            .map(|t| (t.name.clone(), t.columns.len()))
            .collect();
        trace.fks_seen = parsed.fks.len();
        trace.examples_seen = parsed.examples.len();
        trace.question = parsed.question.clone();
        trace.tier = tier;
        trace.alignment = alignment;

        let linker = Linker::new(&parsed);
        let vals = values::extract(&parsed.question);

        // --- intent: cue dropout + ICL votes ---
        // The chance of overlooking a cue falls with capability AND with the
        // cue's surface strength: nobody misreads "how many ... are there",
        // while subtle compositional cues slip past weaker readers. This is
        // what concentrates errors on hard queries, as in the paper's
        // per-hardness breakdowns.
        let kept: Vec<_> = fire_cues(&parsed.question)
            .into_iter()
            .filter(|(id, _, w)| {
                if *id == 22 {
                    // The default-List prior is always retained.
                    return true;
                }
                let miss = ((1.0 - tier).powf(0.8) * (2.0 / w).powi(2) * 1.25).clamp(0.0, 0.95);
                !sys_rng.gen_bool(miss)
            })
            .collect();
        trace.cues_kept = kept.iter().map(|(id, _, w)| (*id, *w)).collect();
        let ranked = rank_intents(&parsed.question, &kept, &parsed.examples, icl_weight);
        trace.intent_ranking = ranked.clone();
        let intent = ranked
            .first()
            .map(|(i, _)| *i)
            .unwrap_or(crate::intent::Intent::List);
        trace.intent = intent;

        // --- ICL signal reduces decoding noise (relevant demonstrations
        //     stabilize generation) ---
        let icl_signal = parsed
            .examples
            .iter()
            .filter_map(|ex| ex.question.as_ref())
            .map(|exq| {
                text_cosine(
                    &crate::intent::neutralize(&parsed.question),
                    &crate::intent::neutralize(exq),
                )
                .max(0.0)
            })
            .fold(0.0f64, f64::max)
            * icl_weight;

        // --- decode (systematic slot errors) + corrupt (sampling noise) ---
        let decode_t = obs.map(|_| std::time::Instant::now());
        let query = decode(intent, &linker, &vals, &mut sys_rng, tier).or_else(|| {
            // Fallback sketch: project something from the best table.
            let fallback = crate::intent::Intent::List;
            decode(fallback, &linker, &vals, &mut sys_rng, tier)
        });
        if let Some(t) = decode_t {
            let g = obskit::global();
            g.observe("simllm.decode_ns", t.elapsed().as_nanos() as u64);
            if query.is_none() {
                g.add_counter("simllm.decode_fallbacks", 1);
            }
        }
        let sql = match query {
            Some(mut q) => {
                // Demonstrations stabilize generation through two channels:
                // a similar *question* (the model trusts the analogy) and a
                // matching *SQL skeleton* (the demonstrated structure guides
                // each clause). The second channel is what skeleton-aware
                // DAIL selection — and, weakly, SQL-only organization — buys.
                let skel = sqlkit::Skeleton::of(&q);
                let icl_struct = parsed
                    .examples
                    .iter()
                    .filter_map(|ex| sqlkit::parse_query(&ex.sql).ok())
                    .map(|exq| sqlkit::Skeleton::of(&exq).similarity(&skel))
                    .fold(0.0f64, f64::max)
                    * icl_weight;
                let stabilize = icl_signal.max(icl_struct).min(1.0);
                trace.stabilize = stabilize;

                // Systematic misreadings: per-site probability scales with
                // (lack of) capability, so complex queries — more sites —
                // accumulate more errors, matching the paper's hardness
                // breakdowns. Relevant demonstrations suppress them.
                let p_sys = (0.62 * (1.0 - tier).powf(0.85)).min(0.45) * (1.0 - 0.75 * stabilize);
                trace.p_sys = p_sys.clamp(0.0, 0.45);
                corrupt_query(&mut q, &mut sys_rng, trace.p_sys);
                // Sampling noise on top (varies per temperature sample).
                let p_noise =
                    (0.12 * (1.0 - tier).powf(1.3) * (1.0 - 0.6 * stabilize)).clamp(0.0, 0.5);
                trace.p_noise = p_noise;
                corrupt_query(&mut q, &mut rng, p_noise);
                q.to_string()
            }
            None => "SELECT 1".to_string(),
        };

        trace.sql = sql.clone();
        trace.response = self.format_output(&sql, &parsed, alignment, &mut rng);
        if let Some(t) = obs {
            let g = obskit::global();
            g.add_counter("simllm.completions", 1);
            g.observe("simllm.complete_ns", t.elapsed().as_nanos() as u64);
        }
        trace
    }

    /// Alignment-dependent surface formatting.
    fn format_output(
        &self,
        sql: &str,
        parsed: &ParsedPrompt,
        alignment: f64,
        rng: &mut StdRng,
    ) -> String {
        // Invalid/truncated output: undisciplined models sometimes cut off.
        let p_invalid = (1.0 - alignment) * if parsed.has_rule { 0.02 } else { 0.06 };
        if rng.gen_bool(p_invalid.clamp(0.0, 0.5)) {
            let cut = (sql.len() * 3 / 5).max(8).min(sql.len());
            return sql[..cut].to_string();
        }
        // Chatty wrappers: the rule implication suppresses them; a trailing
        // `SELECT ` prefix constrains the continuation too.
        let mut p_chatty = (1.0 - alignment) * if parsed.has_rule { 0.12 } else { 0.70 };
        if parsed.ends_with_select {
            p_chatty *= 0.4;
        }
        let chatty = rng.gen_bool(p_chatty.clamp(0.0, 0.95));

        let body = if parsed.ends_with_select {
            // Continue after the "SELECT " prefix.
            sql.strip_prefix("SELECT ").unwrap_or(sql).to_string()
        } else {
            sql.to_string()
        };

        if !chatty {
            return body;
        }
        if parsed.ends_with_select {
            format!("{body}\n\nThis query retrieves the rows you asked about.")
        } else {
            match rng.gen_range(0..3) {
                0 => format!("Here is the SQL query you asked for:\n```sql\n{sql}\n```"),
                1 => {
                    format!("{sql}\n\nExplanation: this query retrieves the requested information.")
                }
                _ => format!("Sure! You can use the following query: {sql}"),
            }
        }
    }
}

/// Recover a SQL string from a model response.
///
/// `had_select_prefix` must be true when the prompt ended with `SELECT `
/// (the response is then a continuation). Handles markdown fences and chatty
/// wrappers; returns the best-effort SQL text (which may still fail to
/// parse — that is scored as invalid downstream).
pub fn extract_sql(response: &str, had_select_prefix: bool) -> String {
    let mut text = response.trim();
    // Markdown fence.
    if let Some(start) = text.find("```") {
        let after = &text[start + 3..];
        let after = after.strip_prefix("sql").unwrap_or(after);
        if let Some(end) = after.find("```") {
            text = after[..end].trim();
        } else {
            text = after.trim();
        }
    }
    // Find the SELECT onset. When the prompt ended with a `SELECT ` prefix
    // the whole response is a continuation — prepend rather than searching,
    // or a nested subquery's SELECT would be mistaken for the onset.
    let lower = text.to_lowercase();
    let body = if had_select_prefix {
        if lower.starts_with("select") {
            text.to_string()
        } else {
            format!("SELECT {text}")
        }
    } else if let Some(pos) = lower.find("select ") {
        text[pos..].to_string()
    } else {
        text.to_string()
    };
    // Cut at blank line or explanation marker.
    let mut out = &body[..];
    for marker in ["\n\n", "Explanation:", "This query", "Note:"] {
        if let Some(pos) = out.find(marker) {
            out = &out[..pos];
        }
    }
    out.trim().trim_end_matches(';').to_string()
}

pub(crate) fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use promptkit::{render_prompt, QuestionRepr, ReprOptions};
    use spider_gen::all_domains;

    fn prompt(question: &str) -> String {
        render_prompt(
            QuestionRepr::CodeRepr,
            &all_domains()[0].to_schema(),
            None,
            question,
            ReprOptions::default(),
        )
    }

    #[test]
    fn gpt4_answers_simple_questions_correctly() {
        let m = SimLlm::new("gpt-4").unwrap();
        let p = prompt("How many singers are there?");
        let out = m.complete(&p, &GenOptions::default());
        let sql = extract_sql(&out, true);
        assert_eq!(sql, "SELECT COUNT(*) FROM singer");
    }

    #[test]
    fn completion_is_deterministic_at_temperature_zero() {
        let m = SimLlm::new("gpt-3.5-turbo").unwrap();
        let p = prompt("What is the average age of all singers?");
        let a = m.complete(&p, &GenOptions::default());
        let b = m.complete(&p, &GenOptions::default());
        assert_eq!(a, b);
        // Sample index must not matter at temperature 0.
        let c = m.complete(
            &p,
            &GenOptions {
                sample_index: 3,
                ..Default::default()
            },
        );
        assert_eq!(a, c);
    }

    #[test]
    fn temperature_varies_samples() {
        let m = SimLlm::new("vicuna-33b").unwrap();
        let p = prompt("What is the name of the singer with the highest age?");
        let outs: std::collections::HashSet<String> = (0..10)
            .map(|i| {
                m.complete(
                    &p,
                    &GenOptions {
                        temperature: 1.0,
                        sample_index: i,
                        seed: 5,
                        ..Default::default()
                    },
                )
            })
            .collect();
        assert!(outs.len() > 1, "temperature should diversify outputs");
    }

    #[test]
    fn weak_models_err_more_often() {
        let strong = SimLlm::new("gpt-4").unwrap();
        let weak = SimLlm::new("llama-7b").unwrap();
        let questions = [
            "How many singers are there?",
            "What is the average age of all singers?",
            "Show the number of singers for each country.",
            "What is the name of the singer with the highest age?",
            "List the distinct country of the singers.",
            "How many concerts does each singer have? Show the name and the count.",
            "Which genre is the most common among the singers?",
            "Show the name of singers whose age is above the average age.",
        ];
        let mut strong_ok = 0;
        let mut weak_ok = 0;
        for (i, q) in questions.iter().enumerate() {
            let p = prompt(q);
            for seed in 0..6u64 {
                let opts = GenOptions {
                    seed: seed * 31 + i as u64,
                    ..Default::default()
                };
                let s = extract_sql(&strong.complete(&p, &opts), true);
                let w = extract_sql(&weak.complete(&p, &opts), true);
                if sqlkit::parse_query(&s).is_ok() {
                    strong_ok += 1;
                }
                if sqlkit::parse_query(&w).is_ok() && s == w {
                    weak_ok += 1;
                }
            }
        }
        assert!(
            strong_ok > weak_ok,
            "strong {strong_ok} vs weak-matching {weak_ok}"
        );
    }

    #[test]
    fn extract_sql_handles_wrappers() {
        assert_eq!(
            extract_sql(
                "Here is the SQL query you asked for:\n```sql\nSELECT a FROM t\n```",
                false
            ),
            "SELECT a FROM t"
        );
        assert_eq!(
            extract_sql("SELECT a FROM t\n\nExplanation: because.", false),
            "SELECT a FROM t"
        );
        assert_eq!(
            extract_sql("count(*) FROM singer", true),
            "SELECT count(*) FROM singer"
        );
        assert_eq!(extract_sql("SELECT a FROM t;", false), "SELECT a FROM t");
        assert_eq!(
            extract_sql(
                "Sure! You can use the following query: SELECT a FROM t",
                false
            ),
            "SELECT a FROM t"
        );
    }

    #[test]
    fn rule_implication_reduces_chatty_outputs() {
        let m = SimLlm::new("llama-13b").unwrap();
        let schema = all_domains()[0].to_schema();
        let mut chatty_with_rule = 0;
        let mut chatty_without = 0;
        for seed in 0..40u64 {
            for (rule, counter) in [(true, &mut chatty_with_rule), (false, &mut chatty_without)] {
                let p = render_prompt(
                    QuestionRepr::TextRepr,
                    &schema,
                    None,
                    "How many singers are there?",
                    ReprOptions {
                        rule_implication: rule,
                        ..Default::default()
                    },
                );
                let out = m.complete(
                    &p,
                    &GenOptions {
                        seed,
                        ..Default::default()
                    },
                );
                if out.contains("This query") || out.contains("Sure!") || out.contains("```") {
                    *counter += 1;
                }
            }
        }
        assert!(
            chatty_with_rule < chatty_without,
            "rule {chatty_with_rule} vs no-rule {chatty_without}"
        );
    }

    #[test]
    fn relevant_examples_improve_weak_model_output() {
        let m = SimLlm::new("vicuna-33b").unwrap();
        let schema = all_domains()[0].to_schema();
        let target = render_prompt(
            QuestionRepr::CodeRepr,
            &schema,
            None,
            "Which genre is the most common among the singers?",
            ReprOptions::default(),
        );
        let examples = "/* Some example questions and corresponding SQL queries are provided based on similar problems: */\n\
            /* Answer the following: Which cuisine is the most common among the restaurants? */\n\
            SELECT cuisine FROM restaurant GROUP BY cuisine ORDER BY COUNT(*) DESC LIMIT 1\n\
            /* Answer the following: Which species is the most common among the pets? */\n\
            SELECT species FROM pet GROUP BY species ORDER BY COUNT(*) DESC LIMIT 1\n\n";
        let few_shot = format!("{examples}{target}");
        let mut zero_ok = 0;
        let mut few_ok = 0;
        let want = "SELECT genre FROM singer GROUP BY genre ORDER BY COUNT(*) DESC LIMIT 1";
        for seed in 0..30u64 {
            let opts = GenOptions {
                seed,
                ..Default::default()
            };
            if extract_sql(&m.complete(&target, &opts), true) == want {
                zero_ok += 1;
            }
            if extract_sql(&m.complete(&few_shot, &opts), true) == want {
                few_ok += 1;
            }
        }
        assert!(
            few_ok >= zero_ok,
            "few-shot {few_ok} vs zero-shot {zero_ok}"
        );
    }
}
