//! Offline drop-in replacement for the subset of the `rand` 0.8 API used by
//! this workspace.
//!
//! The build container has no network access and no vendored registry, so
//! the real `rand` crate can never resolve. This shim keeps every
//! `use rand::...` line in the workspace compiling unchanged: it provides
//! [`rngs::StdRng`], [`SeedableRng`], the [`Rng`] trait (with `gen_range`
//! over integer and float ranges plus `gen_bool`), and
//! [`seq::SliceRandom`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for simulation work. Streams differ from upstream `StdRng`
//! (ChaCha12), which is fine: the workspace only relies on *seeded
//! determinism*, never on upstream's exact streams.

#![warn(missing_docs)]

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[low, high)`.
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
    /// Sample uniformly from `[low, high]`.
    fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

/// A range that can drive uniform sampling of `T`.
pub trait SampleRange<T> {
    /// Sample a value from this range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty inclusive range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Unbias a draw into `[0, span)` via 128-bit widening multiply.
fn mul_shift(raw: u64, span: u64) -> u64 {
    ((raw as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u64;
                low.wrapping_add(mul_shift(rng.next_u64(), span) as $t)
            }
            fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(mul_shift(rng.next_u64(), span as u64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
        low + rng.unit_f64() * (high - low)
    }
    fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
        low + rng.unit_f64() * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
        low + rng.unit_f64() as f32 * (high - low)
    }
    fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
        low + rng.unit_f64() as f32 * (high - low)
    }
}

/// Object-safe core of a random generator.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` built from the top 53 bits.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        self.unit_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator seeded through SplitMix64.
    ///
    /// Named `StdRng` so `use rand::rngs::StdRng` compiles unchanged.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence-related sampling, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Shuffling and choosing over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly choose one element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::mul_shift(rng.next_u64(), i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::mul_shift(rng.next_u64(), self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
            let f: f64 = rng.gen_range(1.5..=2.5);
            assert!((1.5..=2.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }

    #[test]
    fn choose_stays_in_slice() {
        let mut rng = StdRng::seed_from_u64(17);
        let xs = [1, 2, 3];
        for _ in 0..100 {
            assert!(xs.contains(xs.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn full_width_inclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(19);
        let _: u64 = rng.gen_range(0..=u64::MAX);
        let _: i64 = rng.gen_range(i64::MIN..=i64::MAX);
    }
}
