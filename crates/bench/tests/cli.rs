//! Integration tests for the `dail_sql_cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dail_sql_cli"))
}

#[test]
fn models_lists_the_zoo() {
    let out = cli().arg("models").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("gpt-4"));
    assert!(text.contains("llama-7b"));
    assert!(text.contains("vicuna-33b"));
    // Header row: one column per profile field shown.
    let header = text.lines().next().expect("non-empty output");
    for col in [
        "model", "tier", "align", "icl", "context", "$/1k in", "open",
    ] {
        assert!(header.contains(col), "missing column {col:?} in {header:?}");
    }
    // Every zoo row is aligned under the header.
    assert!(text.lines().count() >= 8, "{text}");
}

#[test]
fn ask_answers_a_question() {
    let out = cli()
        .args([
            "ask",
            "--question",
            "How many singers are there?",
            "--db",
            "concert_singer",
            "--train",
            "40",
            "--dev",
            "10",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("sql:"), "{text}");
    assert!(text.to_lowercase().contains("singer"), "{text}");
}

#[test]
fn eval_prints_a_summary() {
    let out = cli()
        .args([
            "eval",
            "--pipeline",
            "zero",
            "--model",
            "gpt-4",
            "--train",
            "60",
            "--dev",
            "15",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("EX:"), "{text}");
    assert!(text.contains("valid:"), "{text}");
}

#[test]
fn generate_exports_files() {
    let dir = std::env::temp_dir().join("dail_cli_gen_test");
    let _ = std::fs::remove_dir_all(&dir);
    let out = cli()
        .args([
            "generate",
            "--out",
            dir.to_str().unwrap(),
            "--train",
            "40",
            "--dev",
            "10",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dir.join("train.jsonl").exists());
    assert!(dir.join("dev.jsonl").exists());
    assert!(dir.join("databases").read_dir().unwrap().count() > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = cli().arg("bogus").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
    assert!(err.contains("commands:"), "usage should follow: {err}");
}

#[test]
fn missing_command_exits_2_with_usage() {
    let out = cli().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("commands:"));
}

#[test]
fn missing_required_argument_exits_2() {
    for args in [
        vec!["generate"],
        vec!["ask"],
        vec!["run-experiments"],
        vec!["profile"],
    ] {
        let out = cli().args(&args).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
    }
}

#[test]
fn malformed_numeric_flag_exits_2() {
    let out = cli()
        .args(["eval", "--dev", "ten"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--dev"), "{err}");
}

#[test]
fn unknown_model_fails() {
    let out = cli()
        .args(["eval", "--model", "gpt-99"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unknown_experiment_id_exits_2() {
    let out = cli()
        .args(["run-experiments", "--experiment", "e99"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));
}

#[test]
fn trace_then_profile_round_trips() {
    let trace = std::env::temp_dir().join("dail_cli_trace_test.jsonl");
    let _ = std::fs::remove_file(&trace);
    let out = cli()
        .args([
            "run-experiments",
            "--experiment",
            "a2",
            "--dev-cap",
            "6",
            "--train",
            "40",
            "--dev",
            "10",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&trace).expect("trace written");
    // Every line is valid JSONL and parses back into events.
    let events = obskit::parse_jsonl(&text).expect("valid trace");
    assert!(!events.is_empty());

    let out = cli()
        .args(["profile", trace.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(report.contains("PROFILE"), "{report}");
    assert!(report.contains("| stage |"), "{report}");
    assert!(report.contains("experiment.a2"), "{report}");
    assert!(report.contains("eval.items"), "{report}");
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn profile_rejects_garbage_input() {
    let bad = std::env::temp_dir().join("dail_cli_bad_trace.jsonl");
    std::fs::write(&bad, "this is not json\n").unwrap();
    let out = cli()
        .args(["profile", bad.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 1"));
    let _ = std::fs::remove_file(&bad);
}
