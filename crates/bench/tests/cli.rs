//! Integration tests for the `dail_sql_cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dail_sql_cli"))
}

#[test]
fn models_lists_the_zoo() {
    let out = cli().arg("models").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("gpt-4"));
    assert!(text.contains("llama-7b"));
    assert!(text.contains("vicuna-33b"));
}

#[test]
fn ask_answers_a_question() {
    let out = cli()
        .args([
            "ask",
            "--question",
            "How many singers are there?",
            "--db",
            "concert_singer",
            "--train",
            "40",
            "--dev",
            "10",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("sql:"), "{text}");
    assert!(text.to_lowercase().contains("singer"), "{text}");
}

#[test]
fn eval_prints_a_summary() {
    let out = cli()
        .args(["eval", "--pipeline", "zero", "--model", "gpt-4", "--train", "60", "--dev", "15"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("EX:"), "{text}");
    assert!(text.contains("valid:"), "{text}");
}

#[test]
fn generate_exports_files() {
    let dir = std::env::temp_dir().join("dail_cli_gen_test");
    let _ = std::fs::remove_dir_all(&dir);
    let out = cli()
        .args([
            "generate",
            "--out",
            dir.to_str().unwrap(),
            "--train",
            "40",
            "--dev",
            "10",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(dir.join("train.jsonl").exists());
    assert!(dir.join("dev.jsonl").exists());
    assert!(dir.join("databases").read_dir().unwrap().count() > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = cli().arg("bogus").output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
}

#[test]
fn unknown_model_fails() {
    let out = cli()
        .args(["eval", "--model", "gpt-99"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}
