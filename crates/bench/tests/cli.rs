//! Integration tests for the `dail_sql_cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dail_sql_cli"))
}

#[test]
fn models_lists_the_zoo() {
    let out = cli().arg("models").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("gpt-4"));
    assert!(text.contains("llama-7b"));
    assert!(text.contains("vicuna-33b"));
    // Header row: one column per profile field shown.
    let header = text.lines().next().expect("non-empty output");
    for col in [
        "model", "tier", "align", "icl", "context", "$/1k in", "open",
    ] {
        assert!(header.contains(col), "missing column {col:?} in {header:?}");
    }
    // Every zoo row is aligned under the header.
    assert!(text.lines().count() >= 8, "{text}");
}

#[test]
fn ask_answers_a_question() {
    let out = cli()
        .args([
            "ask",
            "--question",
            "How many singers are there?",
            "--db",
            "concert_singer",
            "--train",
            "40",
            "--dev",
            "10",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("sql:"), "{text}");
    assert!(text.to_lowercase().contains("singer"), "{text}");
}

#[test]
fn eval_prints_a_summary() {
    let out = cli()
        .args([
            "eval",
            "--pipeline",
            "zero",
            "--model",
            "gpt-4",
            "--train",
            "60",
            "--dev",
            "15",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("EX:"), "{text}");
    assert!(text.contains("valid:"), "{text}");
}

#[test]
fn generate_exports_files() {
    let dir = std::env::temp_dir().join("dail_cli_gen_test");
    let _ = std::fs::remove_dir_all(&dir);
    let out = cli()
        .args([
            "generate",
            "--out",
            dir.to_str().unwrap(),
            "--train",
            "40",
            "--dev",
            "10",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dir.join("train.jsonl").exists());
    assert!(dir.join("dev.jsonl").exists());
    assert!(dir.join("databases").read_dir().unwrap().count() > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = cli().arg("bogus").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
    assert!(err.contains("commands:"), "usage should follow: {err}");
}

#[test]
fn missing_command_exits_2_with_usage() {
    let out = cli().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("commands:"));
}

#[test]
fn missing_required_argument_exits_2() {
    for args in [
        vec!["generate"],
        vec!["ask"],
        vec!["run-experiments"],
        vec!["profile"],
    ] {
        let out = cli().args(&args).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
    }
}

#[test]
fn malformed_numeric_flag_exits_2() {
    let out = cli()
        .args(["eval", "--dev", "ten"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--dev"), "{err}");
}

#[test]
fn unknown_model_fails() {
    let out = cli()
        .args(["eval", "--model", "gpt-99"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unknown_experiment_id_exits_2() {
    let out = cli()
        .args(["run-experiments", "--experiment", "e99"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));
}

#[test]
fn trace_then_profile_round_trips() {
    let trace = std::env::temp_dir().join("dail_cli_trace_test.jsonl");
    let _ = std::fs::remove_file(&trace);
    let out = cli()
        .args([
            "run-experiments",
            "--experiment",
            "a2",
            "--dev-cap",
            "6",
            "--train",
            "40",
            "--dev",
            "10",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&trace).expect("trace written");
    // Every line is valid JSONL and parses back into events.
    let events = obskit::parse_jsonl(&text).expect("valid trace");
    assert!(!events.is_empty());

    let out = cli()
        .args(["profile", trace.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(report.contains("PROFILE"), "{report}");
    assert!(report.contains("| stage |"), "{report}");
    assert!(report.contains("experiment.a2"), "{report}");
    assert!(report.contains("eval.items"), "{report}");
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn profile_rejects_garbage_input() {
    let bad = std::env::temp_dir().join("dail_cli_bad_trace.jsonl");
    std::fs::write(&bad, "this is not json\n").unwrap();
    let out = cli()
        .args(["profile", bad.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 1"));
    let _ = std::fs::remove_file(&bad);
}

// ---- perf-regression gate: flame + profile diff ----

/// Absolute path of a committed trace fixture under `tests/golden/`.
fn fixture(name: &str) -> String {
    format!("{}/../../tests/golden/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn profile_diff_identical_pair_passes_the_gate() {
    let base = fixture("baseline_trace.jsonl");
    let out = cli()
        .args(["profile", &base, &base, "--fail-on-regress", "10"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("PROFILE DIFF"), "{text}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("perf gate OK"), "{err}");
}

#[test]
fn profile_diff_flags_the_injected_slowdown() {
    let out = cli()
        .args([
            "profile",
            &fixture("baseline_trace.jsonl"),
            &fixture("slowdown_trace.jsonl"),
            "--fail-on-regress",
            "10",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("REGRESSION"), "{err}");
    assert!(err.contains("predict"), "{err}");
    // The report still prints, with the regressed stage's delta.
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("+33.3"), "{text}");
}

#[test]
fn profile_diff_without_gate_is_report_only() {
    let out = cli()
        .args([
            "profile",
            &fixture("baseline_trace.jsonl"),
            &fixture("slowdown_trace.jsonl"),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("PROFILE DIFF"), "{text}");
    assert!(text.contains("predict"), "{text}");
}

#[test]
fn malformed_regress_threshold_exits_2() {
    let base = fixture("baseline_trace.jsonl");
    let out = cli()
        .args(["profile", &base, &base, "--fail-on-regress", "ten"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("fail-on-regress"));
}

#[test]
fn profile_missing_file_exits_2() {
    let out = cli()
        .args(["profile", "/nonexistent/trace.jsonl"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn profile_three_files_exits_2() {
    let base = fixture("baseline_trace.jsonl");
    let out = cli()
        .args(["profile", &base, &base, &base])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn flame_writes_svg_with_wall_clock_root() {
    let svg_path = std::env::temp_dir().join("dail_cli_flame_test.svg");
    let _ = std::fs::remove_file(&svg_path);
    let out = cli()
        .args([
            "flame",
            &fixture("baseline_trace.jsonl"),
            "--out",
            svg_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("flamegraph written"));
    let svg = std::fs::read_to_string(&svg_path).expect("svg written");
    assert!(
        svg.contains("<svg"),
        "not an svg: {}",
        &svg[..80.min(svg.len())]
    );
    // The root frame spans exactly the fixture's 10ms wall-clock.
    assert!(
        svg.contains("data-name=\"all\" data-ns=\"10000000\""),
        "root frame must span the wall-clock"
    );

    // `-o` is shorthand for `--out` and produces the same bytes.
    let short_path = std::env::temp_dir().join("dail_cli_flame_test_short.svg");
    let _ = std::fs::remove_file(&short_path);
    let out = cli()
        .args([
            "flame",
            &fixture("baseline_trace.jsonl"),
            "-o",
            short_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert_eq!(svg, std::fs::read_to_string(&short_path).unwrap());
    let _ = std::fs::remove_file(&svg_path);
    let _ = std::fs::remove_file(&short_path);
}

#[test]
fn flame_folded_matches_committed_golden() {
    let out = cli()
        .args(["flame", &fixture("baseline_trace.jsonl"), "--folded"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let expected = std::fs::read_to_string(fixture("baseline_trace.folded")).unwrap();
    assert_eq!(String::from_utf8_lossy(&out.stdout), expected);
}

#[test]
fn flame_requires_a_trace_file() {
    let out = cli().arg("flame").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn truncated_trace_warns_but_still_renders() {
    // A partial trace: the full baseline plus a line chopped mid-object,
    // as left behind by a crashed or still-running producer.
    let partial = std::env::temp_dir().join("dail_cli_partial_trace.jsonl");
    let mut text = std::fs::read_to_string(fixture("baseline_trace.jsonl")).unwrap();
    text.push_str("{\"ev\":\"span_start\",\"id\":99,\"par\n");
    std::fs::write(&partial, &text).unwrap();

    let out = cli()
        .args(["profile", partial.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("skipped"));
    assert!(String::from_utf8_lossy(&out.stdout).contains("| stage |"));

    // The flamegraph of the intact events is unchanged by the junk line.
    let out = cli()
        .args(["flame", partial.to_str().unwrap(), "--folded"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let expected = std::fs::read_to_string(fixture("baseline_trace.folded")).unwrap();
    assert_eq!(String::from_utf8_lossy(&out.stdout), expected);
    let _ = std::fs::remove_file(&partial);
}

#[test]
fn eval_is_deterministic_across_dail_threads() {
    let run = |threads: &str| {
        let trace = std::env::temp_dir().join(format!("dail_cli_det_{threads}.jsonl"));
        let _ = std::fs::remove_file(&trace);
        let out = cli()
            .env("DAIL_THREADS", threads)
            .args([
                "eval",
                "--pipeline",
                "zero",
                "--model",
                "gpt-4",
                "--train",
                "40",
                "--dev",
                "10",
                "--trace",
                trace.to_str().unwrap(),
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = std::fs::read_to_string(&trace).expect("trace written");
        let _ = std::fs::remove_file(&trace);
        // Two kinds of events legitimately vary run to run: the thread-count
        // gauge (reporting it is its whole job) and latency histograms,
        // whose observations are real wall-clock samples. Histograms are
        // still checked below by name and observation count.
        let mut hist_counts: Vec<(String, u64)> = Vec::new();
        let events: Vec<obskit::Event> = obskit::parse_jsonl(&text)
            .expect("valid trace")
            .into_iter()
            .filter(|e| match e {
                obskit::Event::Histogram { name, count, .. } => {
                    hist_counts.push((name.clone(), *count));
                    false
                }
                other => other.name() != "eval.threads",
            })
            .collect();
        (out.stdout, obskit::canonical_jsonl(&events), hist_counts)
    };
    let (stdout1, trace1, hists1) = run("1");
    let (stdout4, trace4, hists4) = run("4");
    // Same report on stdout, same canonicalised trace on disk, and the same
    // number of observations in every latency histogram.
    assert_eq!(
        String::from_utf8_lossy(&stdout1),
        String::from_utf8_lossy(&stdout4)
    );
    assert_eq!(trace1, trace4);
    assert!(!trace1.is_empty());
    assert_eq!(hists1, hists4);
    assert!(!hists1.is_empty());
}

// ---- serving layer: serve-bench ----

/// The committed golden serve-bench invocation (also exercised by
/// `scripts/check.sh`). Small benchmark, moderate overload so shedding,
/// retries and cache hits all appear in the report.
fn serve_bench_cmd(extra: &[&str]) -> Command {
    let mut c = cli();
    c.args([
        "serve-bench",
        "--seed",
        "7",
        "--train",
        "60",
        "--dev",
        "24",
        "--requests",
        "120",
        "--mean-gap-ms",
        "15",
        "--queue",
        "16",
    ]);
    c.args(extra);
    c
}

#[test]
fn serve_bench_report_is_deterministic_across_workers() {
    let run = |workers: &str| {
        let out = serve_bench_cmd(&["--workers", workers])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let w1 = run("1");
    let w6 = run("6");
    assert_eq!(
        String::from_utf8_lossy(&w1),
        String::from_utf8_lossy(&w6),
        "report must be byte-identical across worker counts"
    );

    let text = String::from_utf8_lossy(&w1);
    // Under injected faults the pool absorbs everything without a panic…
    assert!(text.contains("| panics | 0 |"), "{text}");
    // …the cache serves repeated questions…
    let cache_line = text
        .lines()
        .find(|l| l.contains("cache served"))
        .expect("cache row present");
    let served: u64 = cache_line
        .split('|')
        .nth(2)
        .and_then(|v| v.trim().split(" / ").next())
        .and_then(|n| n.trim().parse().ok())
        .expect("cache row parses");
    assert!(served > 0, "cache must serve duplicates: {cache_line}");
    // …and overload resolves to typed sheds, reported with a rate.
    assert!(text.contains("| shed | "), "{text}");
    assert!(text.contains("| EX (served ok) | "), "{text}");
}

#[test]
fn serve_bench_matches_committed_golden() {
    let out = serve_bench_cmd(&[]).output().expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let actual = String::from_utf8_lossy(&out.stdout);
    let golden = fixture("serve_bench_report.md");
    if std::env::var("DAIL_UPDATE_GOLDEN").is_ok() {
        std::fs::write(&golden, actual.as_bytes()).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&golden)
        .expect("golden report committed; regenerate with DAIL_UPDATE_GOLDEN=1");
    assert_eq!(
        actual, expected,
        "serve-bench report drifted from tests/golden/serve_bench_report.md; \
         if intended, regenerate with DAIL_UPDATE_GOLDEN=1 cargo test -p bench"
    );
}

// ---- request telemetry: trace trees, sampling, exposition, SLOs ----

/// `id -> (name, parent)` for every span in a trace.
fn span_index(events: &[obskit::Event]) -> std::collections::HashMap<u64, (String, Option<u64>)> {
    let mut idx = std::collections::HashMap::new();
    for e in events {
        if let obskit::Event::SpanStart {
            id, parent, name, ..
        } = e
        {
            idx.insert(*id, (name.clone(), *parent));
        }
    }
    idx
}

/// Walk parent links from `id` until a span named `target` (returning its
/// id) or the root. Panics on a broken link or a cycle.
fn ancestor_named(
    idx: &std::collections::HashMap<u64, (String, Option<u64>)>,
    mut id: u64,
    target: &str,
) -> Option<u64> {
    for _ in 0..idx.len() + 1 {
        let (name, parent) = idx.get(&id).expect("parent link resolves");
        if name == target {
            return Some(id);
        }
        match parent {
            Some(p) => id = *p,
            None => return None,
        }
    }
    panic!("cycle while walking ancestors of span {id}");
}

fn counter_value(events: &[obskit::Event], counter: &str) -> Option<u64> {
    events.iter().find_map(|e| match e {
        obskit::Event::Counter { name, value } if name == counter => Some(*value),
        _ => None,
    })
}

#[test]
fn serve_bench_trace_forms_one_connected_tree_per_request() {
    let trace = std::env::temp_dir().join("dail_cli_serve_tree.jsonl");
    let _ = std::fs::remove_file(&trace);
    let out = serve_bench_cmd(&["--trace", trace.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let events = obskit::parse_jsonl(&std::fs::read_to_string(&trace).unwrap()).unwrap();
    let _ = std::fs::remove_file(&trace);
    let idx = span_index(&events);

    // Exactly one batch root, itself unparented.
    let serve_ids: Vec<u64> = idx
        .iter()
        .filter(|(_, (n, _))| n == "servekit.serve")
        .map(|(&id, _)| id)
        .collect();
    assert_eq!(serve_ids.len(), 1, "one serve batch span");
    assert_eq!(idx[&serve_ids[0]].1, None);

    // One request span per submitted request (default sample rate is 1.0),
    // each a direct child of the batch span.
    let request_ids: Vec<u64> = idx
        .iter()
        .filter(|(_, (n, _))| n == "servekit.request")
        .map(|(&id, _)| id)
        .collect();
    assert_eq!(
        request_ids.len() as u64,
        counter_value(&events, "servekit.submitted").expect("submitted counter"),
        "one request span per submitted request"
    );
    for &id in &request_ids {
        assert_eq!(idx[&id].1, Some(serve_ids[0]), "request under batch span");
    }

    // Every other span walks its parent links into exactly one request
    // tree: nothing float-free, nothing orphaned.
    let mut names_by_request: std::collections::HashMap<u64, std::collections::HashSet<String>> =
        std::collections::HashMap::new();
    for (&id, (name, _)) in &idx {
        if name == "servekit.serve" || name == "servekit.request" {
            continue;
        }
        let req = ancestor_named(&idx, id, "servekit.request").unwrap_or_else(|| {
            panic!("span {id} ({name}) is not connected to any servekit.request")
        });
        names_by_request
            .entry(req)
            .or_default()
            .insert(name.clone());
    }

    // At least one request tree contains the full pipeline: admission,
    // queue wait, cache lookup, the retry attempts, both DAIL stages with
    // prompt build + selection + scoring + model call, and post-serve
    // execution + comparison.
    let full: Vec<&str> = vec![
        "servekit.admission",
        "servekit.queue_wait",
        "servekit.cache_lookup",
        "servekit.attempt",
        "dail.preliminary",
        "dail.main",
        "promptkit.build_prompt",
        "promptkit.select",
        "retrievekit.score",
        "simllm.complete",
        "eval.execution",
        "eval.comparison",
    ];
    assert!(
        names_by_request
            .values()
            .any(|names| full.iter().all(|n| names.contains(*n))),
        "no request tree contains the full pipeline; trees seen: {names_by_request:?}"
    );
}

#[test]
fn sampled_out_requests_emit_no_spans_but_still_count() {
    let trace = std::env::temp_dir().join("dail_cli_sampled_out.jsonl");
    let _ = std::fs::remove_file(&trace);
    let out = serve_bench_cmd(&["--trace", trace.to_str().unwrap()])
        .env("DAIL_TRACE_SAMPLE", "0")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let events = obskit::parse_jsonl(&std::fs::read_to_string(&trace).unwrap()).unwrap();

    // Zero request-scoped spans: only the batch span remains.
    let span_names: Vec<&str> = events
        .iter()
        .filter_map(|e| match e {
            obskit::Event::SpanStart { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(span_names, vec!["servekit.serve"], "{span_names:?}");

    // …but the metrics keep counting every request.
    let submitted = counter_value(&events, "servekit.submitted").expect("submitted");
    assert_eq!(counter_value(&events, "servekit.trace.sampled"), Some(0));
    assert_eq!(
        counter_value(&events, "servekit.trace.unsampled"),
        Some(submitted)
    );
    assert!(counter_value(&events, "promptkit.prompts_built").unwrap_or(0) > 0);

    // The rendered report is byte-identical to a fully-untraced run:
    // telemetry never changes a reported number.
    let untraced = serve_bench_cmd(&[]).output().expect("binary runs");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&untraced.stdout)
    );

    // The exposition of that trace passes the in-repo mini-parser.
    let metrics = cli()
        .args(["metrics", trace.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(metrics.status.success());
    let families =
        obskit::expo::parse(&String::from_utf8_lossy(&metrics.stdout)).expect("exposition parses");
    assert!(!families.is_empty());
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn unparsable_trace_sample_warns_and_falls_back() {
    let out = serve_bench_cmd(&[])
        .env("DAIL_TRACE_SAMPLE", "lots")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "unparsable DAIL_TRACE_SAMPLE must not abort: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("DAIL_TRACE_SAMPLE") && err.contains("lots"),
        "stderr must name the rejected value: {err}"
    );
}

#[test]
fn metrics_exposition_matches_golden_and_parses() {
    let run = |threads: &str| {
        let out = cli()
            .env("DAIL_THREADS", threads)
            .args(["metrics", &fixture("baseline_trace.jsonl")])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let a = run("1");
    let b = run("4");
    assert_eq!(a, b, "exposition must not depend on DAIL_THREADS");
    assert_eq!(a, run("1"), "exposition must be stable across runs");

    let text = String::from_utf8_lossy(&a).to_string();
    let families = obskit::expo::parse(&text).expect("exposition passes the mini-parser");
    assert!(!families.is_empty());

    let golden = fixture("metrics_expo.txt");
    if std::env::var("DAIL_UPDATE_GOLDEN").is_ok() {
        std::fs::write(&golden, &text).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&golden)
        .expect("golden exposition committed; regenerate with DAIL_UPDATE_GOLDEN=1");
    assert_eq!(
        text, expected,
        "metrics exposition drifted from tests/golden/metrics_expo.txt; \
         if intended, regenerate with DAIL_UPDATE_GOLDEN=1 cargo test -p bench"
    );
}

/// The committed golden slo-report invocation (also gated by
/// `scripts/check.sh`): the serve-bench golden load with a burn-rate
/// threshold tuned so exactly one alert fires.
fn slo_report_cmd(extra: &[&str]) -> Command {
    let mut c = cli();
    c.args([
        "slo-report",
        "--seed",
        "7",
        "--train",
        "60",
        "--dev",
        "24",
        "--requests",
        "120",
        "--mean-gap-ms",
        "15",
        "--queue",
        "16",
        "--burn-alert",
        "4",
    ]);
    c.args(extra);
    c
}

#[test]
fn slo_report_is_deterministic_and_matches_golden() {
    let run = |threads: &str, workers: &str| {
        let out = slo_report_cmd(&["--workers", workers])
            .env("DAIL_THREADS", threads)
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let a = run("1", "1");
    let b = run("4", "6");
    assert_eq!(
        String::from_utf8_lossy(&a),
        String::from_utf8_lossy(&b),
        "slo-report must be byte-identical across workers and DAIL_THREADS"
    );
    assert_eq!(a, run("1", "1"), "slo-report must be stable across runs");

    let text = String::from_utf8_lossy(&a).to_string();
    assert_eq!(
        text.lines().filter(|l| l.starts_with("- ALERT")).count(),
        1,
        "golden config fires exactly one burn-rate alert:\n{text}"
    );
    assert!(text.contains("| error budget remaining |"), "{text}");

    let golden = fixture("slo_report.md");
    if std::env::var("DAIL_UPDATE_GOLDEN").is_ok() {
        std::fs::write(&golden, &text).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&golden)
        .expect("golden slo-report committed; regenerate with DAIL_UPDATE_GOLDEN=1");
    assert_eq!(
        text, expected,
        "slo-report drifted from tests/golden/slo_report.md; \
         if intended, regenerate with DAIL_UPDATE_GOLDEN=1 cargo test -p bench"
    );
}

#[test]
fn metrics_requires_a_trace_file() {
    let out = cli().arg("metrics").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = cli()
        .args(["metrics", "/nonexistent/trace.jsonl"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

// ---- dashboard: windowed time-series over a recorded trace ----

/// Run the golden traced serve-bench (full sampling so every request can
/// carry exemplars) and leave the trace at `trace`.
fn traced_serve_for_dashboard(trace: &std::path::Path, threads: &str, workers: &str) {
    let _ = std::fs::remove_file(trace);
    let out = serve_bench_cmd(&["--workers", workers, "--trace", trace.to_str().unwrap()])
        .env("DAIL_THREADS", threads)
        .env("DAIL_TRACE_SAMPLE", "1.0")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn dashboard_output(trace: &std::path::Path, extra: &[&str]) -> String {
    let out = cli()
        .arg("dashboard")
        .arg(trace)
        .args(extra)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).to_string()
}

#[test]
fn dashboard_is_deterministic_and_matches_golden() {
    let t1 = std::env::temp_dir().join("dail_cli_dash_t1.jsonl");
    let t4 = std::env::temp_dir().join("dail_cli_dash_t4.jsonl");
    traced_serve_for_dashboard(&t1, "1", "1");
    traced_serve_for_dashboard(&t4, "4", "6");
    let a = dashboard_output(&t1, &[]);
    let b = dashboard_output(&t4, &[]);
    assert_eq!(
        a, b,
        "dashboard must be byte-identical across DAIL_THREADS and workers"
    );
    let _ = std::fs::remove_file(&t4);

    for needle in [
        "# tsdb dashboard",
        "| step | 250 ms |",
        "| overflow | 0 |",
        "| dropped late | 0 |",
        "## top series (by total over all retained windows)",
        "servekit.latency_ms{db=",
        "eval.ex_verdicts{db=",
        "req=",
    ] {
        assert!(a.contains(needle), "missing {needle:?} in:\n{a}");
    }

    // Tenant filtering keeps only that tenant's series.
    let filtered = dashboard_output(&t1, &["--tenant", "t0"]);
    assert!(filtered.contains("| tenant filter | t0 |"), "{filtered}");
    for line in filtered.lines().filter(|l| l.starts_with("| `")) {
        assert!(line.contains("tenant=\"t0\""), "foreign series: {line}");
    }

    // JSON twin parses the same rows.
    let json_path = std::env::temp_dir().join("dail_cli_dash.json");
    let _ = dashboard_output(&t1, &["--json", json_path.to_str().unwrap()]);
    let json = std::fs::read_to_string(&json_path).unwrap();
    let _ = std::fs::remove_file(&json_path);
    assert!(json.starts_with("{\"step_ms\":250,"), "{json}");
    assert!(json.contains("\"exemplar\":{\"request_id\":"), "{json}");
    let _ = std::fs::remove_file(&t1);

    let golden = fixture("dashboard.md");
    if std::env::var("DAIL_UPDATE_GOLDEN").is_ok() {
        std::fs::write(&golden, &a).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&golden)
        .expect("golden dashboard committed; regenerate with DAIL_UPDATE_GOLDEN=1");
    assert_eq!(
        a, expected,
        "dashboard drifted from tests/golden/dashboard.md; \
         if intended, regenerate with DAIL_UPDATE_GOLDEN=1 cargo test -p bench"
    );
}

#[test]
fn dashboard_exemplar_resolves_to_a_real_request_in_the_trace() {
    let trace = std::env::temp_dir().join("dail_cli_dash_exemplar.jsonl");
    traced_serve_for_dashboard(&trace, "2", "4");
    let text = dashboard_output(&trace, &[]);

    // Pull the first latency exemplar's request id off the dashboard.
    let req_id: u64 = text
        .lines()
        .find(|l| l.contains("servekit.latency_ms{") && l.contains("req="))
        .and_then(|l| {
            let rest = &l[l.find("req=").unwrap() + 4..];
            rest[..rest.find(' ').unwrap()].parse().ok()
        })
        .expect("dashboard shows a latency exemplar");

    // The id must belong to an admitted request in the same trace: find
    // its admission decision and walk the span tree around it.
    let events =
        obskit::parse_jsonl(&std::fs::read_to_string(&trace).unwrap()).expect("trace parses");
    let _ = std::fs::remove_file(&trace);
    let idx = span_index(&events);
    let mut last_admission_span = None;
    let mut admission_span_of_req = None;
    for e in &events {
        match e {
            obskit::Event::SpanStart { id, name, .. } if name == "servekit.admission" => {
                last_admission_span = Some(*id);
            }
            obskit::Event::Meta { name, fields } if name == "servekit.admission.decision" => {
                let field = |k: &str| {
                    fields
                        .iter()
                        .find(|(fk, _)| fk == k)
                        .map(|(_, v)| v.as_str())
                };
                if field("request") == Some(req_id.to_string().as_str()) {
                    assert_eq!(
                        field("decision"),
                        Some("admit"),
                        "exemplar request {req_id} must have been admitted"
                    );
                    admission_span_of_req = last_admission_span;
                }
            }
            _ => {}
        }
    }
    let admission = admission_span_of_req
        .unwrap_or_else(|| panic!("no admission decision for exemplar request {req_id}"));
    // The admission span sits inside that request's tree, under the batch.
    assert!(
        ancestor_named(&idx, admission, "servekit.request").is_some(),
        "admission span {admission} not under a servekit.request span"
    );
    assert!(
        ancestor_named(&idx, admission, "servekit.serve").is_some(),
        "admission span {admission} not under the servekit.serve batch span"
    );
}

#[test]
fn dashboard_requires_a_trace_with_tsdb_events() {
    let out = cli().arg("dashboard").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = cli()
        .args(["dashboard", "/nonexistent/trace.jsonl"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    // A valid trace without tsdb events (pre-tsdb fixture) is also exit 2.
    let out = cli()
        .args(["dashboard", &fixture("baseline_trace.jsonl")])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no tsdb series"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn serve_bench_rejects_out_of_range_rate() {
    let out = cli()
        .args(["serve-bench", "--error-rate", "2"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error-rate"));
}

// ---- eval harness: DAIL_THREADS handling ----

#[test]
fn unparsable_dail_threads_warns_and_falls_back() {
    let out = cli()
        .env("DAIL_THREADS", "=all")
        .args([
            "eval",
            "--pipeline",
            "zero",
            "--model",
            "gpt-4",
            "--train",
            "40",
            "--dev",
            "8",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "unparsable DAIL_THREADS must not abort the run: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("DAIL_THREADS") && err.contains("=all"),
        "stderr must name the rejected value: {err}"
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("EX:"),
        "eval still completes"
    );
}

// ---- explain / stats / digests ----

/// The committed golden explain invocation (also gated by
/// `scripts/check.sh`): canonical ANALYZE plan for a join + group query.
fn explain_cmd_golden() -> Command {
    let mut c = cli();
    c.args([
        "explain",
        "concert_singer",
        "SELECT T1.country, count(*) FROM singer AS T1 JOIN concert AS T2 \
         ON T1.singer_id = T2.singer_id WHERE T2.year > 2015 \
         GROUP BY T1.country ORDER BY count(*) DESC LIMIT 3",
        "--analyze",
        "--canonical",
        "--train",
        "40",
        "--dev",
        "10",
    ]);
    c
}

#[test]
fn explain_matches_golden_plan() {
    let out = explain_cmd_golden().output().expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let actual = String::from_utf8_lossy(&out.stdout);
    // Structural sanity before the byte comparison.
    for needle in [
        "exec",
        "scan singer as t1",
        "join on",
        "group by",
        "total self-time: 0ns",
    ] {
        assert!(actual.contains(needle), "missing {needle:?} in:\n{actual}");
    }
    let golden = fixture("explain_plan.txt");
    if std::env::var("DAIL_UPDATE_GOLDEN").is_ok() {
        std::fs::write(&golden, actual.as_bytes()).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&golden)
        .expect("golden explain plan committed; regenerate with DAIL_UPDATE_GOLDEN=1");
    assert_eq!(
        actual, expected,
        "explain plan drifted from tests/golden/explain_plan.txt; \
         if intended, regenerate with DAIL_UPDATE_GOLDEN=1 cargo test -p bench"
    );
}

#[test]
fn explain_analyze_is_byte_identical_across_thread_counts() {
    let run = |threads: &str| {
        let out = explain_cmd_golden()
            .env("DAIL_THREADS", threads)
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    assert_eq!(
        run("1"),
        run("4"),
        "canonical ANALYZE output must not depend on DAIL_THREADS"
    );
}

#[test]
fn explain_without_analyze_prints_estimates_only() {
    let out = cli()
        .args([
            "explain",
            "concert_singer",
            "SELECT name FROM singer WHERE age > 40",
            "--train",
            "40",
            "--dev",
            "10",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("est="), "{text}");
    assert!(
        !text.contains("act="),
        "no actuals without --analyze: {text}"
    );
    assert!(!text.contains("total self-time"), "{text}");
}

#[test]
fn explain_analyze_surfaces_near_miss_column_suggestions() {
    let out = cli()
        .args([
            "explain",
            "concert_singer",
            "SELECT nmae FROM singer",
            "--analyze",
            "--train",
            "40",
            "--dev",
            "10",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("did you mean singer.name?"),
        "unknown-column errors should suggest the near miss: {err}"
    );
}

#[test]
fn stats_round_trip_is_byte_identical() {
    let out = cli()
        .args([
            "stats",
            "concert_singer",
            "--roundtrip",
            "--train",
            "40",
            "--dev",
            "10",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("round-trip OK"));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"db\":\"concert_singer\""), "{text}");
    assert!(text.contains("\"ndv\""), "{text}");
}

#[test]
fn serve_bench_report_is_unchanged_under_analyzed_scoring() {
    let run = |analyze: bool| {
        let mut c = serve_bench_cmd(&[]);
        if analyze {
            c.env("DAIL_ANALYZE", "1");
        }
        let out = c.output().expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    assert_eq!(
        run(false),
        run(true),
        "DAIL_ANALYZE=1 must not change a single report byte (passive observability)"
    );
}

#[test]
fn serve_bench_digests_section_is_deterministic() {
    let run = || {
        let out = serve_bench_cmd(&["--digests", "5", "--canonical"])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let a = run();
    assert!(
        a.contains("## Query digests (top 5 by rows scanned)"),
        "{a}"
    );
    assert!(a.contains("distinct shapes."), "{a}");
    assert!(!a.contains("FROM singer"), "skeletons are masked: {a}");
    assert_eq!(a, run(), "canonical digest section is byte-stable");
}

#[test]
fn serve_bench_json_report_has_headline_numbers() {
    let dir = std::env::temp_dir().join("dail_cli_serve_json_test");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("BENCH_serve.json");
    let out = serve_bench_cmd(&["--json", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let js = std::fs::read_to_string(&path).expect("json report written");
    for key in [
        "\"requests\"",
        "\"shed_rate\"",
        "\"throughput_rps\"",
        "\"hit_ratio\"",
        "\"p50\"",
        "\"p99\"",
        "\"ex\"",
    ] {
        assert!(js.contains(key), "missing {key} in:\n{js}");
    }
    // The markdown report and the JSON must tell the same story.
    let md = String::from_utf8_lossy(&out.stdout);
    let requests_row = md
        .lines()
        .find(|l| l.starts_with("| requests |"))
        .expect("requests row");
    let n: String = requests_row
        .chars()
        .filter(|c| c.is_ascii_digit())
        .collect();
    assert!(js.contains(&format!("\"requests\": {n}")), "{js}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slo_report_json_flag_writes_the_same_schema() {
    let dir = std::env::temp_dir().join("dail_cli_slo_json_test");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("BENCH_serve.json");
    let mut c = cli();
    c.args([
        "slo-report",
        "--seed",
        "7",
        "--train",
        "30",
        "--dev",
        "12",
        "--requests",
        "40",
        "--mean-gap-ms",
        "15",
        "--queue",
        "16",
        "--json",
        path.to_str().unwrap(),
    ]);
    let out = c.output().expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let js = std::fs::read_to_string(&path).expect("json report written");
    assert!(js.contains("\"throughput_rps\""), "{js}");
    assert!(js.contains("\"latency_ms\""), "{js}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eval_digests_flag_appends_the_rollup() {
    let out = cli()
        .args([
            "eval",
            "--pipeline",
            "zero",
            "--model",
            "gpt-4",
            "--train",
            "40",
            "--dev",
            "10",
            "--digests",
            "3",
            "--canonical",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("EX:"), "summary still prints: {text}");
    assert!(
        text.contains("## Query digests (top 3 by rows scanned)"),
        "{text}"
    );
}

// --- persistence: persist / recover / warm-start-bench / --store ---------

#[test]
fn persist_then_recover_round_trips() {
    let dir = std::env::temp_dir().join("dail_cli_persist_test");
    let _ = std::fs::remove_dir_all(&dir);
    let out = cli()
        .args([
            "persist",
            "--out",
            dir.to_str().unwrap(),
            "--train",
            "40",
            "--dev",
            "10",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dir.join("pool.emb").exists());
    assert!(dir.read_dir().unwrap().count() > 1, "page stores written");

    let out = cli()
        .args(["recover", dir.to_str().unwrap(), "--verify"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 incomplete, 0 corrupt"), "{text}");
    assert!(text.contains("data-checksum=ok"), "{text}");

    // A resumed persist over a complete store skips every database.
    let out = cli()
        .args([
            "persist",
            "--out",
            dir.to_str().unwrap(),
            "--train",
            "40",
            "--dev",
            "10",
            "--resume",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 databases"), "nothing rewritten: {text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eval_with_store_matches_eval_without() {
    let dir = std::env::temp_dir().join("dail_cli_store_eval_test");
    let _ = std::fs::remove_dir_all(&dir);
    let common = ["--train", "40", "--dev", "10"];
    let out = cli()
        .args(["persist", "--out", dir.to_str().unwrap()])
        .args(common)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let run = |extra: &[&str]| {
        let out = cli()
            .args(["eval", "--pipeline", "dail", "--model", "gpt-4"])
            .args(common)
            .args(extra)
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let generated = run(&[]);
    let from_disk = run(&["--store", dir.to_str().unwrap()]);
    assert_eq!(
        String::from_utf8_lossy(&generated),
        String::from_utf8_lossy(&from_disk),
        "evaluating against disk-loaded databases must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recover_missing_dir_exits_2() {
    let out = cli()
        .args(["recover", "/definitely/not/a/store"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("not a directory"), "{err}");
}

#[test]
fn persist_without_out_exits_2() {
    let out = cli().arg("persist").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn warm_start_bench_without_store_exits_2() {
    let out = cli().arg("warm-start-bench").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn store_flag_with_missing_dir_exits_2() {
    let out = cli()
        .args([
            "eval",
            "--pipeline",
            "zero",
            "--model",
            "gpt-4",
            "--train",
            "40",
            "--dev",
            "10",
            "--store",
            "/definitely/not/a/store",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn exec_diff_corpus_missing_file_exits_2() {
    let out = cli()
        .args(["exec-diff", "--corpus", "/definitely/not/a/corpus.sql"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn exec_diff_replays_committed_corpora() {
    for corpus in ["nulls_nan_zeros.sql", "joins_and_planner.sql"] {
        let path = format!(
            "{}/../../tests/golden/exec_diff/{corpus}",
            env!("CARGO_MANIFEST_DIR")
        );
        let out = cli()
            .args(["exec-diff", "--corpus", &path])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{corpus}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("corpus queries"), "{text}");
        assert!(text.contains("agree bit-for-bit"), "{text}");
    }
}

#[test]
fn crash_injected_persist_recovers_to_identical_store() {
    let dir = std::env::temp_dir().join("dail_cli_crash_test");
    let clean = std::env::temp_dir().join("dail_cli_crash_clean");
    for d in [&dir, &clean] {
        let _ = std::fs::remove_dir_all(d);
    }
    let common = ["--train", "40", "--dev", "10"];

    // Injected crash: the process must die mid-commit, not exit cleanly.
    let out = cli()
        .args(["persist", "--out", dir.to_str().unwrap()])
        .args(common)
        .env("DAIL_CRASH_POINT", "mid-commit@2")
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "crash point did not fire");

    // Recovery reports the torn store without failing.
    let out = cli()
        .args(["recover", dir.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Resume, then demand byte-identical page files vs an uninterrupted run.
    for (target, resume) in [(&dir, true), (&clean, false)] {
        let mut c = cli();
        c.args(["persist", "--out", target.to_str().unwrap()]);
        c.args(common);
        if resume {
            c.arg("--resume");
        }
        let out = c.output().expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let mut names: Vec<String> = dir
        .read_dir()
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.ends_with(".pg"))
        .collect();
    names.sort();
    assert!(!names.is_empty());
    for name in names {
        let a = std::fs::read(dir.join(&name)).unwrap();
        let b = std::fs::read(clean.join(&name)).unwrap();
        assert_eq!(a, b, "{name} differs between recovered and clean persist");
    }
    for d in [&dir, &clean] {
        let _ = std::fs::remove_dir_all(d);
    }
}
