//! Ablation benches for the design choices called out in DESIGN.md:
//! join strategy in the EX executor, selection strategy cost, token-budget
//! truncation, and self-consistency sample count.

use bench::small_benchmark;
use criterion::{criterion_group, criterion_main, Criterion};
use dail_core::{DailSql, PredictCtx, Predictor};
use promptkit::{build_prompt, ExampleSelector, PromptConfig, SelectionStrategy};
use simllm::SimLlm;
use sqlkit::parse_query;
use std::hint::black_box;
use storage::{execute_query_with, ExecOptions, JoinStrategy};
use textkit::{DomainMasker, Tokenizer};

fn ablate_join(c: &mut Criterion) {
    let bench = small_benchmark();
    // A join-heavy query on the largest database.
    let item = bench
        .dev
        .iter()
        .chain(bench.train.iter())
        .find(|e| e.gold_sql.contains("JOIN"))
        .expect("benchmark contains joins");
    let db = bench.db(item);
    let q = parse_query(&item.gold_sql).unwrap();
    let mut g = c.benchmark_group("ablate_join");
    for (name, strat) in [
        ("hash", JoinStrategy::Hash),
        ("nested_loop", JoinStrategy::NestedLoop),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    execute_query_with(
                        db,
                        black_box(&q),
                        ExecOptions {
                            join: strat,
                            ..ExecOptions::default()
                        },
                    )
                    .unwrap(),
                )
            })
        });
    }
    g.finish();
}

fn ablate_selection(c: &mut Criterion) {
    let bench = small_benchmark();
    let selector = ExampleSelector::new(&bench);
    let item = &bench.dev[0];
    let spec = bench.spec(item);
    let masker = DomainMasker::new(spec.domain_terms());
    let masked = masker.mask(&item.question);
    let mut g = c.benchmark_group("ablate_selection");
    for strategy in SelectionStrategy::ALL {
        g.bench_function(strategy.as_str(), |b| {
            b.iter(|| {
                black_box(selector.select(
                    strategy,
                    &item.question,
                    &masked,
                    Some(&item.gold),
                    5,
                    1,
                ))
            })
        });
    }
    g.finish();
}

fn ablate_budget(c: &mut Criterion) {
    let bench = small_benchmark();
    let selector = ExampleSelector::new(&bench);
    let tokenizer = Tokenizer::new();
    let item = &bench.dev[0];
    let mut g = c.benchmark_group("ablate_budget");
    for budget in [256usize, 1024, 8192] {
        let mut cfg = PromptConfig::dail_sql(8);
        cfg.max_tokens = budget;
        g.bench_function(format!("budget_{budget}"), |b| {
            b.iter(|| {
                black_box(build_prompt(
                    &cfg,
                    &bench,
                    &selector,
                    black_box(item),
                    None,
                    false,
                    &tokenizer,
                    1,
                ))
            })
        });
    }
    g.finish();
}

fn ablate_sc(c: &mut Criterion) {
    let bench = small_benchmark();
    let selector = ExampleSelector::new(&bench);
    let tokenizer = Tokenizer::new();
    let ctx = PredictCtx {
        bench: &bench,
        selector: &selector,
        tokenizer: &tokenizer,
        seed: 1,
        realistic: false,
        trace: obskit::TraceContext::disabled(),
    };
    let item = &bench.dev[0];
    let mut g = c.benchmark_group("ablate_sc");
    g.sample_size(10);
    for k in [1usize, 3, 5, 10] {
        let p = DailSql::with_self_consistency(SimLlm::new("gpt-4").unwrap(), k);
        g.bench_function(format!("sc_{k}"), |b| {
            b.iter(|| black_box(p.predict(&ctx, black_box(item))))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablate_join,
    ablate_selection,
    ablate_budget,
    ablate_sc
);
criterion_main!(benches);
