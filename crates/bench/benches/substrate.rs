//! Microbenches for the substrates: SQL parsing, execution, canonicalization,
//! skeleton extraction, tokenization and embedding — the inner loops every
//! experiment runs millions of times.

use bench::small_benchmark;
use criterion::{criterion_group, criterion_main, Criterion};
use sqlkit::{exact_set_match, parse_query, Skeleton};
use std::hint::black_box;
use storage::execute_query;
use textkit::{embed, Tokenizer};

const SQL: &str = "SELECT T1.name, count(*) FROM singer AS T1 JOIN concert AS T2 ON T1.singer_id = T2.singer_id WHERE T2.year > 2015 GROUP BY T1.singer_id ORDER BY count(*) DESC LIMIT 3";

fn substrate(c: &mut Criterion) {
    let bench = small_benchmark();

    c.bench_function("parse_query", |b| {
        b.iter(|| black_box(parse_query(black_box(SQL)).unwrap()))
    });

    let q = parse_query(SQL).unwrap();
    c.bench_function("print_query", |b| b.iter(|| black_box(q.to_string())));

    c.bench_function("skeleton_extract", |b| {
        b.iter(|| black_box(Skeleton::of(black_box(&q))))
    });

    let q2 = parse_query(&SQL.replace("2015", "2016")).unwrap();
    c.bench_function("exact_set_match", |b| {
        b.iter(|| black_box(exact_set_match(black_box(&q), black_box(&q2))))
    });

    // Execute a real gold query on its database.
    let item = &bench.dev[0];
    let db = bench.db(item);
    c.bench_function("execute_gold_query", |b| {
        b.iter(|| black_box(execute_query(db, black_box(&item.gold)).unwrap()))
    });

    let tok = Tokenizer::new();
    let prompt_text = promptkit::render_prompt(
        promptkit::QuestionRepr::CodeRepr,
        &db.schema,
        Some(db),
        &item.question,
        promptkit::ReprOptions::default(),
    );
    c.bench_function("tokenize_prompt", |b| {
        b.iter(|| black_box(tok.count(black_box(&prompt_text))))
    });

    c.bench_function("embed_question", |b| {
        b.iter(|| black_box(embed(black_box(&item.question))))
    });
}

/// The observability acceptance gate: instrumented hot paths with NO global
/// recorder installed must cost the same as before obskit existed. Compare
/// `execute_gold_query` / `parse_query` above (which now carry the disabled
/// check inline) with these recorder-free micro-ops; the `obskit_*` rows
/// bound the per-call overhead itself (one relaxed atomic load).
fn obskit_overhead(c: &mut Criterion) {
    let bench = small_benchmark();
    let item = &bench.dev[0];
    let db = bench.db(item);

    // The disabled fast path, in isolation: enabled() + a no-op recorder call.
    c.bench_function("obskit_disabled_enabled_check", |b| {
        b.iter(|| black_box(obskit::enabled()))
    });
    let off = obskit::Recorder::disabled();
    c.bench_function("obskit_disabled_counter_add", |b| {
        b.iter(|| off.add_counter(black_box("bench.counter"), black_box(1)))
    });
    c.bench_function("obskit_disabled_span", |b| {
        b.iter(|| black_box(off.span(black_box("bench.span")).id()))
    });

    // The instrumented executor with tracing off — the <2% overhead claim.
    c.bench_function("execute_gold_query_noop_recorder", |b| {
        b.iter(|| black_box(execute_query(db, black_box(&item.gold)).unwrap()))
    });

    // Enabled-path costs, for scale (not part of the no-op gate).
    let on = obskit::Recorder::enabled();
    c.bench_function("obskit_enabled_counter_add", |b| {
        b.iter(|| on.add_counter(black_box("bench.counter"), black_box(1)))
    });
    c.bench_function("obskit_enabled_histogram_observe", |b| {
        b.iter(|| on.observe(black_box("bench.hist"), black_box(12345)))
    });
}

criterion_group!(benches, substrate, obskit_overhead);
criterion_main!(benches);
