//! Criterion benches, one group per paper artifact (E1–E10).
//!
//! Each group times the hot path of its experiment on a single dev item —
//! the full regeneration lives in the `run_experiments` binary; these
//! benches track the per-query cost of every pipeline configuration the
//! paper compares.

use bench::small_benchmark;
use criterion::{criterion_group, criterion_main, Criterion};
use dail_core::{C3Style, DailSql, DinSqlStyle, FewShot, PredictCtx, Predictor, ZeroShot};
use promptkit::{
    ExampleSelector, OrganizationStrategy, PromptConfig, QuestionRepr, ReprOptions,
    SelectionStrategy,
};
use simllm::{PromptStyle, SimLlm};
use std::hint::black_box;
use textkit::Tokenizer;

fn bench_experiments(c: &mut Criterion) {
    let bench = small_benchmark();
    let selector = ExampleSelector::new(&bench);
    let tokenizer = Tokenizer::new();
    let ctx = PredictCtx {
        bench: &bench,
        selector: &selector,
        tokenizer: &tokenizer,
        seed: 1,
        realistic: false,
        trace: obskit::TraceContext::disabled(),
    };
    let ctx_realistic = PredictCtx {
        realistic: true,
        ..PredictCtx {
            bench: &bench,
            selector: &selector,
            tokenizer: &tokenizer,
            seed: 1,
            realistic: true,
            trace: obskit::TraceContext::disabled(),
        }
    };
    let item = &bench.dev[0];

    // E1: zero-shot per representation.
    {
        let mut g = c.benchmark_group("e1_zero_shot_repr");
        g.sample_size(20);
        for repr in QuestionRepr::ALL {
            let p = ZeroShot::new(SimLlm::new("gpt-4").unwrap(), repr);
            g.bench_function(repr.as_str(), |b| {
                b.iter(|| black_box(p.predict(&ctx, black_box(item))))
            });
        }
        g.finish();
    }

    // E2: zero-shot on realistic questions.
    {
        let mut g = c.benchmark_group("e2_realistic");
        g.sample_size(20);
        let p = ZeroShot::new(SimLlm::new("gpt-4").unwrap(), QuestionRepr::CodeRepr);
        g.bench_function("CR_P_realistic", |b| {
            b.iter(|| black_box(p.predict(&ctx_realistic, black_box(item))))
        });
        g.finish();
    }

    // E3/E4: representation toggles.
    {
        let mut g = c.benchmark_group("e3_e4_toggles");
        g.sample_size(20);
        for (name, opts) in [
            (
                "with_fk_rule",
                ReprOptions {
                    foreign_keys: true,
                    rule_implication: true,
                    content_rows: 0,
                },
            ),
            (
                "no_fk",
                ReprOptions {
                    foreign_keys: false,
                    rule_implication: true,
                    content_rows: 0,
                },
            ),
            (
                "no_rule",
                ReprOptions {
                    foreign_keys: true,
                    rule_implication: false,
                    content_rows: 0,
                },
            ),
        ] {
            let p = ZeroShot {
                model: SimLlm::new("gpt-4").unwrap(),
                repr: QuestionRepr::CodeRepr,
                opts,
            };
            g.bench_function(name, |b| {
                b.iter(|| black_box(p.predict(&ctx, black_box(item))))
            });
        }
        g.finish();
    }

    // E5: example selection strategies (5-shot prediction).
    {
        let mut g = c.benchmark_group("e5_selection");
        g.sample_size(10);
        for strategy in SelectionStrategy::ALL {
            let cfg = PromptConfig {
                repr: QuestionRepr::CodeRepr,
                opts: ReprOptions::default(),
                selection: strategy,
                organization: OrganizationStrategy::DailPairs,
                shots: 5,
                max_tokens: 8192,
            };
            let p = FewShot::new(SimLlm::new("gpt-4").unwrap(), cfg);
            g.bench_function(strategy.as_str(), |b| {
                b.iter(|| black_box(p.predict(&ctx, black_box(item))))
            });
        }
        g.finish();
    }

    // E6/E7: example organizations (token cost differences dominate).
    {
        let mut g = c.benchmark_group("e6_e7_organization");
        g.sample_size(10);
        for org in OrganizationStrategy::ALL {
            let cfg = PromptConfig {
                repr: QuestionRepr::CodeRepr,
                opts: ReprOptions::default(),
                selection: SelectionStrategy::MaskedQuestionSimilarity,
                organization: org,
                shots: 5,
                max_tokens: 8192,
            };
            let p = FewShot::new(SimLlm::new("gpt-4").unwrap(), cfg);
            g.bench_function(org.as_str(), |b| {
                b.iter(|| black_box(p.predict(&ctx, black_box(item))))
            });
        }
        g.finish();
    }

    // E8: leaderboard pipelines.
    {
        let mut g = c.benchmark_group("e8_leaderboard");
        g.sample_size(10);
        let entries: Vec<(&str, Box<dyn Predictor>)> = vec![
            (
                "dail_sql",
                Box::new(DailSql::new(SimLlm::new("gpt-4").unwrap())),
            ),
            (
                "dail_sql_sc",
                Box::new(DailSql::with_self_consistency(
                    SimLlm::new("gpt-4").unwrap(),
                    5,
                )),
            ),
            (
                "din_style",
                Box::new(DinSqlStyle::new(SimLlm::new("gpt-4").unwrap())),
            ),
            (
                "c3_style",
                Box::new(C3Style::new(SimLlm::new("gpt-3.5-turbo").unwrap())),
            ),
        ];
        for (name, p) in &entries {
            g.bench_function(*name, |b| {
                b.iter(|| black_box(p.predict(&ctx, black_box(item))))
            });
        }
        g.finish();
    }

    // E9: open-source zero-shot inference cost.
    {
        let mut g = c.benchmark_group("e9_open_source");
        g.sample_size(20);
        for model in ["llama-7b", "llama-33b", "vicuna-33b"] {
            let p = ZeroShot::new(SimLlm::new(model).unwrap(), QuestionRepr::CodeRepr);
            g.bench_function(model, |b| {
                b.iter(|| black_box(p.predict(&ctx, black_box(item))))
            });
        }
        g.finish();
    }

    // E10: SFT'ed model inference (matched and mismatched style).
    {
        let mut g = c.benchmark_group("e10_sft");
        g.sample_size(20);
        let tuned = SimLlm::new("llama-13b")
            .unwrap()
            .finetune(PromptStyle::Ddl, 1000);
        let matched = ZeroShot::new(tuned.clone(), QuestionRepr::CodeRepr);
        let mismatched = ZeroShot::new(tuned, QuestionRepr::TextRepr);
        g.bench_function("sft_matched_repr", |b| {
            b.iter(|| black_box(matched.predict(&ctx, black_box(item))))
        });
        g.bench_function("sft_mismatched_repr", |b| {
            b.iter(|| black_box(mismatched.predict(&ctx, black_box(item))))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
