//! Microbenches for the retrievekit selection fast path: the streaming
//! embedder vs the allocating one, the blocked f32 dot kernel vs the f64
//! reference cosine, bounded-heap top-k vs the full-sort oracle, and the
//! end-to-end matrix scan vs the naive per-row layout.

use bench::small_benchmark;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retrievekit::{
    dot_i8, full_sort, quantize_query, top_k, top_k_cosine, EmbeddingMatrix, IvfIndex, IvfParams,
    QuantizedMatrix, TopK,
};
use std::hint::black_box;
use textkit::{embed, embed_into, Embedding, DIM};

const K: usize = 8;
const POOL: usize = 10_000;

fn random_scores(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

fn embedder(c: &mut Criterion) {
    let bench = small_benchmark();
    let q = &bench.dev[0].question;

    c.bench_function("embed_allocating", |b| {
        b.iter(|| black_box(embed(black_box(q))))
    });

    let mut buf = vec![0f32; DIM];
    c.bench_function("embed_into_streaming", |b| {
        b.iter(|| {
            embed_into(black_box(q), &mut buf);
            black_box(buf[0])
        })
    });
}

fn kernel(c: &mut Criterion) {
    let a = embed("how many singers are there in each stadium");
    let b_ = embed("list the names of all concerts ordered by year");
    let mut m = EmbeddingMatrix::with_capacity(DIM, 1);
    m.push_row(&a.0);

    c.bench_function("cosine_f64_reference", |b| {
        b.iter(|| black_box(black_box(&a).cosine(black_box(&b_))))
    });

    c.bench_function("cosine_f32_kernel", |b| {
        b.iter(|| black_box(m.cosine(0, black_box(&b_.0))))
    });
}

fn topk(c: &mut Criterion) {
    let scores = random_scores(POOL, 11);

    c.bench_function("topk_full_sort_10k", |b| {
        b.iter(|| black_box(full_sort(scores.iter().copied(), K)))
    });

    c.bench_function("topk_bounded_heap_10k", |b| {
        b.iter(|| black_box(top_k(scores.iter().copied(), K)))
    });

    // The streaming push in isolation (mostly the reject comparison).
    c.bench_function("topk_push_stream_10k", |b| {
        b.iter(|| {
            let mut heap = TopK::new(K);
            for (i, &s) in scores.iter().enumerate() {
                heap.push(s, i as u32);
            }
            black_box(heap.len())
        })
    });
}

fn end_to_end(c: &mut Criterion) {
    // A synthetic pool with the embedding distribution of real questions:
    // reuse a small question vocabulary so rows collide like benchmarks do.
    let stems = [
        "how many singers are there",
        "list the names of all stadiums",
        "what is the average capacity",
        "count the concerts for each year",
        "which students are older than 20",
        "show the products ordered by price",
    ];
    let mut rng = StdRng::seed_from_u64(3);
    let pool: Vec<String> = (0..POOL)
        .map(|i| {
            format!(
                "{} in region {}",
                stems[rng.gen_range(0..stems.len())],
                i % 97
            )
        })
        .collect();

    let mut matrix = EmbeddingMatrix::with_capacity(DIM, POOL);
    let mut row = vec![0f32; DIM];
    for q in &pool {
        embed_into(q, &mut row);
        matrix.push_row(&row);
    }
    let naive_rows: Vec<Embedding> = pool.iter().map(|q| embed(q)).collect();

    let target = embed("how many stadiums are there in each region");

    c.bench_function("select_naive_f64_fullsort_10k", |b| {
        b.iter(|| {
            let mut scored: Vec<(f64, usize)> = naive_rows
                .iter()
                .enumerate()
                .map(|(i, r)| (r.cosine(black_box(&target)), i))
                .collect();
            scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            scored.truncate(K);
            black_box(scored)
        })
    });

    c.bench_function("select_retrievekit_10k", |b| {
        b.iter(|| black_box(top_k_cosine(&matrix, black_box(&target.0), POOL, K)))
    });
}

fn int8_kernel(c: &mut Criterion) {
    // The int8 dot against the f32 matrix kernel at the embedding width:
    // the quantized kernel trades per-lane precision for i32 accumulation,
    // so its win here is what pays for the rerank in ivf-int8 mode.
    let a = embed("how many singers are there in each stadium");
    let b_ = embed("list the names of all concerts ordered by year");
    let mut m = EmbeddingMatrix::with_capacity(DIM, 1);
    m.push_row(&a.0);
    let quant = QuantizedMatrix::from_matrix(&m);
    let qq = quantize_query(&b_.0);

    c.bench_function("dot_f32_kernel_512", |b| {
        b.iter(|| black_box(m.cosine(0, black_box(&b_.0))))
    });

    c.bench_function("dot_i8_kernel_512", |b| {
        b.iter(|| black_box(dot_i8(quant.row(0), black_box(&qq.q))))
    });
}

fn ivf_probe(c: &mut Criterion) {
    // IVF probe-width sweep on a 10k pool with the near-duplicate question
    // distribution: cost should scale with the probed fraction of the pool
    // while p = n_clusters degenerates to the exact scan.
    let stems = [
        "how many singers are there",
        "list the names of all stadiums",
        "what is the average capacity",
        "count the concerts for each year",
        "which students are older than 20",
        "show the products ordered by price",
    ];
    let mut rng = StdRng::seed_from_u64(5);
    let mut matrix = EmbeddingMatrix::with_capacity(DIM, POOL);
    let mut row = vec![0f32; DIM];
    for i in 0..POOL {
        let q = format!(
            "{} in region {}",
            stems[rng.gen_range(0..stems.len())],
            i % 97
        );
        embed_into(&q, &mut row);
        matrix.push_row(&row);
    }
    let index = IvfIndex::train(&matrix, POOL, &IvfParams::default());
    let target = embed("how many stadiums are there in each region");

    for p in [1usize, 4, 16] {
        c.bench_function(format!("ivf_probe_p{p}_10k"), |b| {
            b.iter(|| {
                black_box(index.search_with_probe(black_box(&matrix), black_box(&target.0), K, p))
            })
        });
    }
}

criterion_group!(
    benches,
    embedder,
    kernel,
    topk,
    end_to_end,
    int8_kernel,
    ivf_probe
);
criterion_main!(benches);
