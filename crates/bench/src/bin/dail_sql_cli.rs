//! `dail_sql_cli` — command-line front door to the library.
//!
//! ```text
//! dail_sql_cli models                             list the simulated model zoo
//! dail_sql_cli generate --out DIR [--seed N]      export a benchmark to files
//! dail_sql_cli ask --question "..." [--model M]   one-off Text-to-SQL on a demo db
//! dail_sql_cli eval [--pipeline P] [--model M]    evaluate a pipeline, print summary
//! ```

use dail_core::{C3Style, DailSql, DinSqlStyle, Predictor, ZeroShot};
use eval::evaluate;
use promptkit::{render_prompt, ExampleSelector, QuestionRepr, ReprOptions};
use simllm::{extract_sql, GenOptions, SimLlm};
use spider_gen::{export_benchmark, Benchmark, BenchmarkConfig};
use std::collections::HashMap;
use std::path::PathBuf;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        usage();
        return;
    };
    let flags = parse_flags(args);
    match cmd.as_str() {
        "models" => models(),
        "generate" => generate(&flags),
        "ask" => ask(&flags),
        "eval" => run_eval(&flags),
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown command: {other}\n");
            usage();
            std::process::exit(2);
        }
    }
}

fn usage() {
    eprintln!(
        "dail_sql_cli — DAIL-SQL reproduction CLI\n\n\
         commands:\n\
         \u{20}\u{20}models                                   list simulated models\n\
         \u{20}\u{20}generate --out DIR [--seed N] [--train N] [--dev N]\n\
         \u{20}\u{20}                                         export a benchmark (SQL dumps + JSONL)\n\
         \u{20}\u{20}ask --question \"...\" [--model M] [--db DB_ID] [--seed N]\n\
         \u{20}\u{20}                                         one-off Text-to-SQL against a generated db\n\
         \u{20}\u{20}eval [--pipeline dail|dail-sc|din|c3|zero] [--model M] [--dev N] [--realistic]\n\
         \u{20}\u{20}                                         evaluate a pipeline and print the summary"
    );
}

fn parse_flags(args: impl Iterator<Item = String>) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if let Some(key) = a.strip_prefix("--") {
            let val = match args.peek() {
                Some(v) if !v.starts_with("--") => args.next().unwrap(),
                _ => "true".to_string(),
            };
            out.insert(key.to_string(), val);
        }
    }
    out
}

fn flag<'a>(flags: &'a HashMap<String, String>, key: &str, default: &'a str) -> &'a str {
    flags.get(key).map(String::as_str).unwrap_or(default)
}

fn models() {
    println!(
        "{:<18} {:>5} {:>6} {:>5} {:>8} {:>10} {:>6}",
        "model", "tier", "align", "icl", "context", "$/1k in", "open"
    );
    for p in simllm::ZOO {
        println!(
            "{:<18} {:>5.2} {:>6.2} {:>5.2} {:>8} {:>10.4} {:>6}",
            p.name, p.tier, p.alignment, p.icl_weight, p.context_window,
            p.price_per_1k_prompt, p.open_source
        );
    }
}

fn bench_from_flags(flags: &HashMap<String, String>) -> Benchmark {
    let cfg = BenchmarkConfig {
        seed: flag(flags, "seed", "2023").parse().expect("--seed must be an integer"),
        train_size: flag(flags, "train", "400").parse().expect("--train must be an integer"),
        dev_size: flag(flags, "dev", "100").parse().expect("--dev must be an integer"),
        dev_domains: 6, synthetic_domains: 0
    };
    Benchmark::generate(cfg)
}

fn generate(flags: &HashMap<String, String>) {
    let Some(out) = flags.get("out") else {
        eprintln!("generate requires --out DIR");
        std::process::exit(2);
    };
    let bench = bench_from_flags(flags);
    let dir = PathBuf::from(out);
    export_benchmark(&bench, &dir).expect("export failed");
    println!(
        "exported {} databases, {} train and {} dev examples to {}",
        bench.databases.len(),
        bench.train.len(),
        bench.dev.len(),
        dir.display()
    );
}

fn ask(flags: &HashMap<String, String>) {
    let Some(question) = flags.get("question") else {
        eprintln!("ask requires --question \"...\"");
        std::process::exit(2);
    };
    let model_name = flag(flags, "model", "gpt-4");
    let Some(model) = SimLlm::new(model_name) else {
        eprintln!("unknown model {model_name}; try `dail_sql_cli models`");
        std::process::exit(2);
    };
    let bench = bench_from_flags(flags);
    let db_id = flag(flags, "db", "");
    let db = if db_id.is_empty() {
        bench.databases.values().next().expect("benchmark has databases")
    } else {
        match bench.databases.get(db_id) {
            Some(db) => db,
            None => {
                eprintln!(
                    "unknown db {db_id}; available: {}",
                    bench.databases.keys().cloned().collect::<Vec<_>>().join(", ")
                );
                std::process::exit(2);
            }
        }
    };
    let seed: u64 = flag(flags, "seed", "1").parse().expect("--seed must be an integer");
    let prompt = render_prompt(
        QuestionRepr::CodeRepr,
        &db.schema,
        Some(db),
        question,
        ReprOptions::default(),
    );
    let out = model.complete(&prompt, &GenOptions { seed, ..Default::default() });
    let sql = extract_sql(&out, prompt.trim_end().ends_with("SELECT"));
    println!("db:  {}", db.schema.db_id);
    println!("sql: {sql}");
    match sqlkit::parse_query(&sql).map(|q| storage::execute_query(db, &q)) {
        Ok(Ok(rs)) => {
            println!("rows ({}):", rs.rows.len());
            for row in rs.rows.iter().take(10) {
                let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                println!("  {}", cells.join(" | "));
            }
        }
        Ok(Err(e)) => println!("execution error: {e}"),
        Err(e) => println!("parse error: {e}"),
    }
}

fn run_eval(flags: &HashMap<String, String>) {
    let model_name = flag(flags, "model", "gpt-4");
    let Some(model) = SimLlm::new(model_name) else {
        eprintln!("unknown model {model_name}; try `dail_sql_cli models`");
        std::process::exit(2);
    };
    let pipeline = flag(flags, "pipeline", "dail");
    let predictor: Box<dyn Predictor + Sync> = match pipeline {
        "dail" => Box::new(DailSql::new(model)),
        "dail-sc" => Box::new(DailSql::with_self_consistency(model, 5)),
        "din" => Box::new(DinSqlStyle::new(model)),
        "c3" => Box::new(C3Style::new(model)),
        "zero" => Box::new(ZeroShot::new(model, QuestionRepr::CodeRepr)),
        other => {
            eprintln!("unknown pipeline {other} (use dail|dail-sc|din|c3|zero)");
            std::process::exit(2);
        }
    };
    let realistic = flags.contains_key("realistic");
    let bench = bench_from_flags(flags);
    let selector = ExampleSelector::new(&bench);
    let r = evaluate(&bench, &selector, predictor.as_ref(), &bench.dev, 2023, realistic);
    println!("pipeline: {}", r.name);
    println!("items:    {}", r.n);
    println!("EX:       {}", r.ex_ci95(2023).render());
    println!("EM:       {:.1}%", r.em_pct());
    println!("valid:    {:.1}%", r.valid_pct());
    println!("tokens:   {:.0} prompt + {:.0} completion per query", r.cost.avg_prompt_tokens(), r.cost.avg_completion_tokens());
    println!("calls:    {:.1} per query", r.cost.avg_api_calls());
    for (h, (c, n)) in &r.ex_by_hardness {
        println!("  {:<7} {:>5.1}%  ({c}/{n})", h.as_str(), 100.0 * *c as f64 / (*n).max(1) as f64);
    }
}
