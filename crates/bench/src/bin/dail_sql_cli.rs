//! `dail_sql_cli` — command-line front door to the library.
//!
//! ```text
//! dail_sql_cli models                             list the simulated model zoo
//! dail_sql_cli generate --out DIR [--seed N]      export a benchmark to files
//! dail_sql_cli ask --question "..." [--model M]   one-off Text-to-SQL on a demo db
//! dail_sql_cli eval [--pipeline P] [--model M]    evaluate a pipeline, print summary
//! dail_sql_cli serve-bench [--seed N] [--requests N] [--workers N]
//!                                                 load-test the serving layer, print report
//! dail_sql_cli run-experiments --experiment ID    run a paper experiment
//! dail_sql_cli profile TRACE.jsonl                render a trace as a breakdown
//! dail_sql_cli profile A.jsonl B.jsonl [--fail-on-regress PCT]
//!                                                 cross-run profile diff / CI gate
//! dail_sql_cli flame TRACE.jsonl [-o OUT.svg]     render a trace as a flamegraph
//! ```
//!
//! `eval` and `run-experiments` accept `--trace FILE.jsonl` to record a
//! full pipeline trace, replayable with the `profile` and `flame`
//! subcommands.
//!
//! Exit codes: 0 success, 1 perf regression beyond the `--fail-on-regress`
//! threshold, 2 usage / unreadable input.

use dail_core::{C3Style, DailSql, DinSqlStyle, Predictor, ZeroShot};
use eval::{evaluate_opts, EvalOptions, ExperimentRunner, Scale};
use promptkit::{render_prompt, ExampleSelector, QuestionRepr, ReprOptions};
use simllm::{extract_sql, GenOptions, SimLlm};
use spider_gen::{export_benchmark, Benchmark, BenchmarkConfig};
use std::collections::HashMap;
use std::path::PathBuf;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        usage();
        std::process::exit(2);
    };
    // `profile`/`flame` take positional paths; everything else is --flag
    // based. `-o` is accepted as shorthand for `--out`.
    let rest: Vec<String> = args
        .map(|a| if a == "-o" { "--out".to_string() } else { a })
        .collect();
    let positional: Vec<&String> = rest.iter().take_while(|a| !a.starts_with("--")).collect();
    let flags = parse_flags(rest.iter().cloned());
    match cmd.as_str() {
        "models" => models(),
        "generate" => generate(&flags),
        "ask" => ask(&flags),
        "eval" => run_eval(&flags),
        "serve-bench" => serve_bench(&flags),
        "run-experiments" => run_experiments(&flags),
        "profile" => profile_trace(&positional, &flags),
        "flame" => flame_trace(&positional, &flags),
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown command: {other}\n");
            usage();
            std::process::exit(2);
        }
    }
}

fn usage() {
    eprintln!(
        "dail_sql_cli — DAIL-SQL reproduction CLI\n\n\
         commands:\n\
         \u{20}\u{20}models                                   list simulated models\n\
         \u{20}\u{20}generate --out DIR [--seed N] [--train N] [--dev N]\n\
         \u{20}\u{20}                                         export a benchmark (SQL dumps + JSONL)\n\
         \u{20}\u{20}ask --question \"...\" [--model M] [--db DB_ID] [--seed N]\n\
         \u{20}\u{20}                                         one-off Text-to-SQL against a generated db\n\
         \u{20}\u{20}eval [--pipeline dail|dail-sc|din|c3|zero] [--model M] [--dev N] [--realistic]\n\
         \u{20}\u{20}     [--threads N] [--trace FILE.jsonl]\n\
         \u{20}\u{20}                                         evaluate a pipeline and print the summary\n\
         \u{20}\u{20}serve-bench [--pipeline P] [--model M] [--seed N] [--requests N] [--workers N]\n\
         \u{20}\u{20}     [--error-rate R] [--spike-rate R] [--spike-ms N] [--corrupt-rate R]\n\
         \u{20}\u{20}     [--queue N] [--cache N] [--retries N] [--deadline-ms N] [--trace FILE.jsonl]\n\
         \u{20}\u{20}                                         drive the fault-injected serving layer\n\
         \u{20}\u{20}                                         with a seeded load, print a markdown\n\
         \u{20}\u{20}                                         report (deterministic given --seed)\n\
         \u{20}\u{20}run-experiments --experiment e1..e10|a1..a6 [--dev-cap N] [--seed N]\n\
         \u{20}\u{20}     [--full-grid] [--trace FILE.jsonl]   run one paper experiment, print its tables\n\
         \u{20}\u{20}profile TRACE.jsonl                      render a recorded trace as a\n\
         \u{20}\u{20}                                         per-stage time/metric breakdown\n\
         \u{20}\u{20}profile BASE.jsonl NEW.jsonl [--fail-on-regress PCT]\n\
         \u{20}\u{20}                                         diff two traces (self-times, counters,\n\
         \u{20}\u{20}                                         histograms); exit 1 if any stage's\n\
         \u{20}\u{20}                                         self-time regressed beyond PCT percent\n\
         \u{20}\u{20}flame TRACE.jsonl [-o OUT.svg] [--folded]\n\
         \u{20}\u{20}                                         render a trace as flamegraph SVG\n\
         \u{20}\u{20}                                         (or folded stacks with --folded)"
    );
}

fn parse_flags(args: impl Iterator<Item = String>) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if let Some(key) = a.strip_prefix("--") {
            let val = match args.peek() {
                Some(v) if !v.starts_with("--") => args.next().unwrap(),
                _ => "true".to_string(),
            };
            out.insert(key.to_string(), val);
        }
    }
    out
}

fn flag<'a>(flags: &'a HashMap<String, String>, key: &str, default: &'a str) -> &'a str {
    flags.get(key).map(String::as_str).unwrap_or(default)
}

/// Parse a numeric flag, exiting with status 2 (not a panic) on bad input.
fn num_flag<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("--{key} must be an integer, got {raw:?}");
            std::process::exit(2);
        }),
    }
}

/// Parse a probability flag (a float in `[0, 1]`), exiting with status 2
/// on bad input.
fn rate_flag(flags: &HashMap<String, String>, key: &str, default: f64) -> f64 {
    match flags.get(key) {
        None => default,
        Some(raw) => match raw.parse::<f64>() {
            Ok(v) if (0.0..=1.0).contains(&v) => v,
            _ => {
                eprintln!("--{key} must be a number in [0, 1], got {raw:?}");
                std::process::exit(2);
            }
        },
    }
}

/// Install a global trace recorder when `--trace FILE` was given.
/// Returns the recorder (enabled or disabled) plus the output path.
fn setup_trace(flags: &HashMap<String, String>) -> (obskit::Recorder, Option<PathBuf>) {
    match flags.get("trace") {
        Some(path) => {
            let rec = obskit::Recorder::enabled();
            obskit::set_global(rec.clone());
            (rec, Some(PathBuf::from(path)))
        }
        None => (obskit::Recorder::disabled(), None),
    }
}

/// Write the trace out (if tracing was requested) and tell the user.
fn finish_trace(rec: &obskit::Recorder, path: Option<PathBuf>) {
    let Some(path) = path else { return };
    match rec.write_jsonl(&path) {
        Ok(()) => eprintln!(
            "trace written to {} ({} events); replay with `dail_sql_cli profile {}`",
            path.display(),
            rec.drain_trace().len(),
            path.display()
        ),
        Err(e) => {
            eprintln!("failed to write trace {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

fn models() {
    println!(
        "{:<18} {:>5} {:>6} {:>5} {:>8} {:>10} {:>6}",
        "model", "tier", "align", "icl", "context", "$/1k in", "open"
    );
    for p in simllm::ZOO {
        println!(
            "{:<18} {:>5.2} {:>6.2} {:>5.2} {:>8} {:>10.4} {:>6}",
            p.name,
            p.tier,
            p.alignment,
            p.icl_weight,
            p.context_window,
            p.price_per_1k_prompt,
            p.open_source
        );
    }
}

fn bench_from_flags(flags: &HashMap<String, String>) -> Benchmark {
    let cfg = BenchmarkConfig {
        seed: num_flag(flags, "seed", 2023u64),
        train_size: num_flag(flags, "train", 400usize),
        dev_size: num_flag(flags, "dev", 100usize),
        dev_domains: 6,
        synthetic_domains: 0,
    };
    Benchmark::generate(cfg)
}

fn generate(flags: &HashMap<String, String>) {
    let Some(out) = flags.get("out") else {
        eprintln!("generate requires --out DIR");
        std::process::exit(2);
    };
    let bench = bench_from_flags(flags);
    let dir = PathBuf::from(out);
    export_benchmark(&bench, &dir).expect("export failed");
    println!(
        "exported {} databases, {} train and {} dev examples to {}",
        bench.databases.len(),
        bench.train.len(),
        bench.dev.len(),
        dir.display()
    );
}

fn ask(flags: &HashMap<String, String>) {
    let Some(question) = flags.get("question") else {
        eprintln!("ask requires --question \"...\"");
        std::process::exit(2);
    };
    let model_name = flag(flags, "model", "gpt-4");
    let Some(model) = SimLlm::new(model_name) else {
        eprintln!("unknown model {model_name}; try `dail_sql_cli models`");
        std::process::exit(2);
    };
    let bench = bench_from_flags(flags);
    let db_id = flag(flags, "db", "");
    let db = if db_id.is_empty() {
        bench
            .databases
            .values()
            .next()
            .expect("benchmark has databases")
    } else {
        match bench.databases.get(db_id) {
            Some(db) => db,
            None => {
                eprintln!(
                    "unknown db {db_id}; available: {}",
                    bench
                        .databases
                        .keys()
                        .cloned()
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(2);
            }
        }
    };
    let seed: u64 = num_flag(flags, "seed", 1u64);
    let prompt = render_prompt(
        QuestionRepr::CodeRepr,
        &db.schema,
        Some(db),
        question,
        ReprOptions::default(),
    );
    let out = model.complete(
        &prompt,
        &GenOptions {
            seed,
            ..Default::default()
        },
    );
    let sql = extract_sql(&out, prompt.trim_end().ends_with("SELECT"));
    println!("db:  {}", db.schema.db_id);
    println!("sql: {sql}");
    match sqlkit::parse_query(&sql).map(|q| storage::execute_query(db, &q)) {
        Ok(Ok(rs)) => {
            println!("rows ({}):", rs.rows.len());
            for row in rs.rows.iter().take(10) {
                let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                println!("  {}", cells.join(" | "));
            }
        }
        Ok(Err(e)) => println!("execution error: {e}"),
        Err(e) => println!("parse error: {e}"),
    }
}

/// Build the predictor named by `--pipeline` / `--model`, exiting with
/// status 2 on unknown names. Shared by `eval` and `serve-bench`.
fn build_predictor(flags: &HashMap<String, String>) -> Box<dyn Predictor + Sync> {
    let model_name = flag(flags, "model", "gpt-4");
    let Some(model) = SimLlm::new(model_name) else {
        eprintln!("unknown model {model_name}; try `dail_sql_cli models`");
        std::process::exit(2);
    };
    match flag(flags, "pipeline", "dail") {
        "dail" => Box::new(DailSql::new(model)),
        "dail-sc" => Box::new(DailSql::with_self_consistency(model, 5)),
        "din" => Box::new(DinSqlStyle::new(model)),
        "c3" => Box::new(C3Style::new(model)),
        "zero" => Box::new(ZeroShot::new(model, QuestionRepr::CodeRepr)),
        other => {
            eprintln!("unknown pipeline {other} (use dail|dail-sc|din|c3|zero)");
            std::process::exit(2);
        }
    }
}

fn run_eval(flags: &HashMap<String, String>) {
    let predictor = build_predictor(flags);
    let realistic = flags.contains_key("realistic");
    let (rec, trace_path) = setup_trace(flags);
    let bench = bench_from_flags(flags);
    let selector = ExampleSelector::new(&bench);
    let threads = flags
        .get("threads")
        .map(|_| num_flag(flags, "threads", 0usize));
    let opts = EvalOptions {
        threads,
        recorder: rec.clone(),
    };
    let r = evaluate_opts(
        &bench,
        &selector,
        predictor.as_ref(),
        &bench.dev,
        2023,
        realistic,
        &opts,
    );
    println!("pipeline: {}", r.name);
    println!("items:    {}", r.n);
    println!("EX:       {}", r.ex_ci95(2023).render());
    println!("EM:       {:.1}%", r.em_pct());
    println!("valid:    {:.1}%", r.valid_pct());
    println!(
        "tokens:   {:.0} prompt + {:.0} completion per query",
        r.cost.avg_prompt_tokens(),
        r.cost.avg_completion_tokens()
    );
    println!("calls:    {:.1} per query", r.cost.avg_api_calls());
    for (h, (c, n)) in &r.ex_by_hardness {
        println!(
            "  {:<7} {:>5.1}%  ({c}/{n})",
            h.as_str(),
            100.0 * *c as f64 / (*n).max(1) as f64
        );
    }
    finish_trace(&rec, trace_path);
}

/// Drive the servekit serving layer with a seeded load against injected
/// faults and print the markdown report. Every reported number is
/// deterministic given `--seed` — including across `--workers` settings —
/// which is what makes the report golden-testable.
fn serve_bench(flags: &HashMap<String, String>) {
    let predictor = build_predictor(flags);
    let pipeline = flag(flags, "pipeline", "dail").to_string();
    let seed: u64 = num_flag(flags, "seed", 7u64);
    let (rec, trace_path) = setup_trace(flags);
    let bench = bench_from_flags(flags);
    let selector = ExampleSelector::new(&bench);
    let tokenizer = textkit::Tokenizer::new();
    let ctx = dail_core::PredictCtx {
        bench: &bench,
        selector: &selector,
        tokenizer: &tokenizer,
        seed,
        realistic: flags.contains_key("realistic"),
    };
    let faults = simllm::FaultConfig {
        seed,
        error_rate: rate_flag(flags, "error-rate", 0.1),
        spike_rate: rate_flag(flags, "spike-rate", 0.05),
        spike_ms: num_flag(flags, "spike-ms", 250u64),
        corrupt_rate: rate_flag(flags, "corrupt-rate", 0.05),
    };
    let cfg = servekit::ServeConfig {
        workers: num_flag(flags, "workers", 4usize),
        queue_capacity: num_flag(flags, "queue", 32usize),
        cache_capacity: num_flag(flags, "cache", 4096usize),
        max_attempts: num_flag(flags, "retries", 3u32) + 1,
        backoff_base_ms: num_flag(flags, "backoff-ms", 25u64),
        deadline_ms: num_flag(flags, "deadline-ms", 2000u64),
        time_scale: 0.0,
        // The pipeline fixes its own representation and shot count, so its
        // name stands in for both in the cache key.
        repr: pipeline,
        shots: 0,
        faults,
    };
    let load = servekit::LoadConfig {
        seed,
        requests: num_flag(flags, "requests", 120usize),
        mean_gap_ms: num_flag(flags, "mean-gap-ms", 30u64),
        dup_rate: rate_flag(flags, "dup-rate", 0.35),
    };
    let reqs = servekit::generate(&load, bench.dev.len());
    let out = servekit::serve(predictor.as_ref(), &ctx, &bench.dev, &reqs, &cfg);

    let (mut ex_correct, mut ex_scored) = (0u64, 0u64);
    for (req, outcome) in reqs.iter().zip(&out.outcomes) {
        if let servekit::Outcome::Ok { sql, .. } = outcome {
            let item = &bench.dev[req.item_idx];
            ex_scored += 1;
            ex_correct += u64::from(eval::score_item(bench.db(item), item, sql).ex);
        }
    }
    let s = &out.stats;
    let report = servekit::ReportInput {
        seed,
        predictor: predictor.name(),
        error_rate: faults.error_rate,
        spike_rate: faults.spike_rate,
        spike_ms: faults.spike_ms,
        corrupt_rate: faults.corrupt_rate,
        submitted: s.submitted,
        admitted: s.admitted,
        shed: s.shed,
        ok: s.ok,
        failed: s.failed,
        deadline_exceeded: s.deadline_exceeded,
        retries: s.retries,
        panics: s.panics,
        cache_served: s.cache.served,
        cache_misses: s.cache.misses,
        cache_evictions: s.cache.evictions,
        latencies_ms: s.total_ms.clone(),
        makespan_ms: s.makespan_ms,
        ex_correct,
        ex_scored,
    };
    print!("{}", servekit::render(&report));
    finish_trace(&rec, trace_path);
}

fn run_experiments(flags: &HashMap<String, String>) {
    let Some(id) = flags.get("experiment") else {
        eprintln!(
            "run-experiments requires --experiment ID (one of {} / {})",
            ExperimentRunner::ALL_IDS.join(", "),
            ExperimentRunner::ABLATION_IDS.join(", ")
        );
        std::process::exit(2);
    };
    let known = ExperimentRunner::ALL_IDS.contains(&id.as_str())
        || ExperimentRunner::ABLATION_IDS.contains(&id.as_str());
    if !known {
        eprintln!(
            "unknown experiment {id}; known ids: {} / {}",
            ExperimentRunner::ALL_IDS.join(", "),
            ExperimentRunner::ABLATION_IDS.join(", ")
        );
        std::process::exit(2);
    }
    let (rec, trace_path) = setup_trace(flags);
    let scale = Scale {
        dev_cap: num_flag(flags, "dev-cap", 24usize),
        full_grid: flags.contains_key("full-grid"),
    };
    let seed = num_flag(flags, "seed", 2023u64);
    let bench = bench_from_flags(flags);
    let runner = ExperimentRunner::new(&bench, scale, seed).with_recorder(rec.clone());
    for table in runner.run_experiment(id) {
        println!("{}", table.to_markdown());
    }
    finish_trace(&rec, trace_path);
}

/// Load a trace leniently: unreadable files and traces with no intact
/// events exit 2; damaged lines (a crashed run's truncated tail, stray
/// garbage) are skipped with a warning so partial traces still render.
fn load_trace(path: &str) -> Vec<obskit::Event> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let (events, warnings) = obskit::parse_jsonl_lossy(&text);
    if events.is_empty() && !warnings.is_empty() {
        eprintln!("invalid trace {path}: {}", warnings[0]);
        std::process::exit(2);
    }
    for w in &warnings {
        eprintln!("warning: {path}: skipped {w}");
    }
    events
}

fn profile_trace(positional: &[&String], flags: &HashMap<String, String>) {
    match positional {
        [] => {
            eprintln!(
                "profile requires a trace file: dail_sql_cli profile TRACE.jsonl \
                 (or two files to diff them)"
            );
            std::process::exit(2);
        }
        [path] => {
            let events = load_trace(path);
            print!("{}", obskit::Profile::from_events(&events).to_markdown());
        }
        [base_path, new_path] => {
            let base = obskit::Profile::from_events(&load_trace(base_path));
            let new = obskit::Profile::from_events(&load_trace(new_path));
            let diff = obskit::ProfileDiff::between(&base, &new);
            print!("{}", diff.to_markdown());
            if let Some(raw) = flags.get("fail-on-regress") {
                let threshold: f64 = match raw.parse() {
                    Ok(t) if t >= 0.0 => t,
                    _ => {
                        eprintln!(
                            "--fail-on-regress must be a non-negative percentage, got {raw:?}"
                        );
                        std::process::exit(2);
                    }
                };
                let regressed = diff.regressions(threshold);
                if !regressed.is_empty() {
                    for (stage, pct) in &regressed {
                        eprintln!("REGRESSION: stage {stage} self-time +{pct:.1}% (threshold {threshold}%)");
                    }
                    std::process::exit(1);
                }
                eprintln!("perf gate OK: no stage regressed beyond {threshold}%");
            }
        }
        more => {
            eprintln!("profile takes one or two trace files, got {}", more.len());
            std::process::exit(2);
        }
    }
}

fn flame_trace(positional: &[&String], flags: &HashMap<String, String>) {
    let [path] = positional else {
        eprintln!("flame requires a trace file: dail_sql_cli flame TRACE.jsonl [-o OUT.svg]");
        std::process::exit(2);
    };
    let flame = obskit::Flame::from_events(&load_trace(path));
    if flags.contains_key("folded") {
        print!("{}", flame.folded());
        return;
    }
    let svg = flame.to_svg();
    match flags.get("out") {
        Some(out) => {
            if let Err(e) = std::fs::write(out, &svg) {
                eprintln!("cannot write {out}: {e}");
                std::process::exit(2);
            }
            eprintln!(
                "flamegraph written to {out} (wall {}, {} root frames)",
                obskit::fmt_ns(flame.wall_ns()),
                flame.root.children.len()
            );
        }
        None => print!("{svg}"),
    }
}
