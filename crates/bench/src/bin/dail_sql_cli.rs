//! `dail_sql_cli` — command-line front door to the library.
//!
//! ```text
//! dail_sql_cli models                             list the simulated model zoo
//! dail_sql_cli generate --out DIR [--seed N]      export a benchmark to files
//! dail_sql_cli ask --question "..." [--model M]   one-off Text-to-SQL on a demo db
//! dail_sql_cli eval [--pipeline P] [--model M]    evaluate a pipeline, print summary
//! dail_sql_cli serve-bench [--seed N] [--requests N] [--workers N]
//!                                                 load-test the serving layer, print report
//! dail_sql_cli slo-report [serve-bench flags] [--slo-latency-ms N] [--burn-alert B]
//!                                                 serve the same load, print an SLO /
//!                                                 burn-rate report
//! dail_sql_cli metrics TRACE.jsonl                render a trace's counters, gauges and
//!                                                 histograms as Prometheus text exposition
//! dail_sql_cli dashboard TRACE.jsonl [--window N] [--tenant T] [--json FILE]
//!                                                 render the trace's windowed time-series
//!                                                 as a markdown dashboard
//! dail_sql_cli select-bench --pool N --queries M --seed S
//!                                                 benchmark example-selection retrieval,
//!                                                 print a deterministic markdown report
//! dail_sql_cli run-experiments --experiment ID    run a paper experiment
//! dail_sql_cli profile TRACE.jsonl                render a trace as a breakdown
//! dail_sql_cli profile A.jsonl B.jsonl [--fail-on-regress PCT]
//!                                                 cross-run profile diff / CI gate
//! dail_sql_cli flame TRACE.jsonl [-o OUT.svg]     render a trace as a flamegraph
//! ```
//!
//! `eval` and `run-experiments` accept `--trace FILE.jsonl` to record a
//! full pipeline trace, replayable with the `profile` and `flame`
//! subcommands.
//!
//! Exit codes: 0 success, 1 perf regression beyond the `--fail-on-regress`
//! threshold, 2 usage / unreadable input.

use dail_core::{C3Style, DailSql, DinSqlStyle, Predictor, ZeroShot};
use eval::{evaluate_opts, EvalOptions, ExperimentRunner, Scale};
use promptkit::{render_prompt, ExampleSelector, QuestionRepr, ReprOptions};
use simllm::{extract_sql, GenOptions, SimLlm};
use spider_gen::{export_benchmark, Benchmark, BenchmarkConfig};
use std::collections::HashMap;
use std::path::PathBuf;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        usage();
        std::process::exit(2);
    };
    // `profile`/`flame` take positional paths; everything else is --flag
    // based. `-o` is accepted as shorthand for `--out`.
    let rest: Vec<String> = args
        .map(|a| if a == "-o" { "--out".to_string() } else { a })
        .collect();
    let positional: Vec<&String> = rest.iter().take_while(|a| !a.starts_with("--")).collect();
    let flags = parse_flags(rest.iter().cloned());
    match cmd.as_str() {
        "models" => models(),
        "generate" => generate(&flags),
        "ask" => ask(&flags),
        "eval" => run_eval(&flags),
        "explain" => explain_cmd(&positional, &flags),
        "stats" => stats_cmd(&positional, &flags),
        "persist" => persist_cmd(&flags),
        "recover" => recover_cmd(&positional, &flags),
        "warm-start-bench" => warm_start_bench(&flags),
        "serve-bench" => serve_bench(&flags),
        "slo-report" => slo_report(&flags),
        "select-bench" => select_bench(&flags),
        "run-experiments" => run_experiments(&flags),
        "exec-diff" => exec_diff(&flags),
        "exec-bench" => exec_bench(&flags),
        "profile" => profile_trace(&positional, &flags),
        "flame" => flame_trace(&positional, &flags),
        "metrics" => metrics_trace(&positional),
        "dashboard" => dashboard_cmd(&positional, &flags),
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown command: {other}\n");
            usage();
            std::process::exit(2);
        }
    }
}

fn usage() {
    eprintln!(
        "dail_sql_cli — DAIL-SQL reproduction CLI\n\n\
         commands:\n\
         \u{20}\u{20}models                                   list simulated models\n\
         \u{20}\u{20}generate --out DIR [--seed N] [--train N] [--dev N]\n\
         \u{20}\u{20}                                         export a benchmark (SQL dumps + JSONL)\n\
         \u{20}\u{20}ask --question \"...\" [--model M] [--db DB_ID] [--seed N]\n\
         \u{20}\u{20}                                         one-off Text-to-SQL against a generated db\n\
         \u{20}\u{20}eval [--pipeline dail|dail-sc|din|c3|zero] [--model M] [--dev N] [--realistic]\n\
         \u{20}\u{20}     [--threads N] [--trace FILE.jsonl] [--digests N] [--canonical] [--store DIR]\n\
         \u{20}\u{20}                                         evaluate a pipeline and print the summary;\n\
         \u{20}\u{20}                                         --digests appends a query-digest rollup\n\
         \u{20}\u{20}explain DB_ID \"SQL\" [--analyze] [--canonical] [--seed N]\n\
         \u{20}\u{20}                                         print the operator plan tree for a query\n\
         \u{20}\u{20}                                         (--analyze executes it and adds actual\n\
         \u{20}\u{20}                                         rows / invocations / self-times;\n\
         \u{20}\u{20}                                         --canonical zeroes times for diffing)\n\
         \u{20}\u{20}stats DB_ID [--out FILE] [--roundtrip] [--seed N]\n\
         \u{20}\u{20}                                         per-table / per-column statistics as\n\
         \u{20}\u{20}                                         JSONL; --roundtrip re-parses the output\n\
         \u{20}\u{20}                                         and exits 1 unless byte-identical\n\
         \u{20}\u{20}persist --out DIR [--resume] [--seed N] [--train N] [--dev N]\n\
         \u{20}\u{20}                                         materialize every benchmark database to\n\
         \u{20}\u{20}                                         WAL-backed page stores plus the example\n\
         \u{20}\u{20}                                         pool snapshot; --resume skips stores\n\
         \u{20}\u{20}                                         already marked complete (crash recovery:\n\
         \u{20}\u{20}                                         DAIL_CRASH_POINT=\"site@n\" aborts\n\
         \u{20}\u{20}                                         mid-commit for the kill-and-recover gate)\n\
         \u{20}\u{20}recover DIR [--verify]                   replay WALs and report per-store state;\n\
         \u{20}\u{20}                                         --verify fully loads complete stores and\n\
         \u{20}\u{20}                                         checksums the pool snapshot's data blocks\n\
         \u{20}\u{20}warm-start-bench --store DIR [--json FILE] [--seed N] [--train N]\n\
         \u{20}\u{20}                                         time cold selector build vs warm snapshot\n\
         \u{20}\u{20}                                         load (must be bit-identical); --json\n\
         \u{20}\u{20}                                         writes {{cold_ms,warm_ms,speedup}}\n\
         \u{20}\u{20}serve-bench [--pipeline P] [--model M] [--seed N] [--requests N] [--workers N]\n\
         \u{20}\u{20}     [--error-rate R] [--spike-rate R] [--spike-ms N] [--corrupt-rate R]\n\
         \u{20}\u{20}     [--queue N] [--cache N] [--retries N] [--deadline-ms N] [--trace FILE.jsonl]\n\
         \u{20}\u{20}     [--json FILE] [--digests N] [--canonical] [--store DIR]\n\
         \u{20}\u{20}                                         drive the fault-injected serving layer\n\
         \u{20}\u{20}                                         with a seeded load, print a markdown\n\
         \u{20}\u{20}                                         report (deterministic given --seed);\n\
         \u{20}\u{20}                                         DAIL_TRACE_SAMPLE=R head-samples\n\
         \u{20}\u{20}                                         request traces at rate R\n\
         \u{20}\u{20}slo-report [serve-bench flags] [--slo-latency-ms N] [--slo-latency-objective R]\n\
         \u{20}\u{20}     [--slo-ex-objective R] [--slo-short-ms N] [--slo-long-ms N] [--burn-alert B]\n\
         \u{20}\u{20}     [--json FILE]\n\
         \u{20}\u{20}                                         serve the same seeded load and print a\n\
         \u{20}\u{20}                                         deterministic SLO / burn-rate report\n\
         \u{20}\u{20}metrics TRACE.jsonl                      render a recorded trace's metrics as\n\
         \u{20}\u{20}                                         Prometheus text exposition\n\
         \u{20}\u{20}dashboard TRACE.jsonl [--window N] [--tenant T] [--json FILE]\n\
         \u{20}\u{20}                                         render the trace's windowed time-series\n\
         \u{20}\u{20}                                         (rates, p50/p99, sparklines, exemplars)\n\
         \u{20}\u{20}                                         as a deterministic markdown dashboard;\n\
         \u{20}\u{20}                                         --window sets the trailing stats window\n\
         \u{20}\u{20}                                         (default 8), --tenant filters series\n\
         \u{20}\u{20}select-bench [--pool N] [--queries M] [--seed S] [--k K] [--json FILE]\n\
         \u{20}\u{20}     [--no-timing]                       score a synthetic pool with the\n\
         \u{20}\u{20}                                         retrievekit fast path vs the naive\n\
         \u{20}\u{20}                                         reference; print a markdown report\n\
         \u{20}\u{20}                                         (byte-identical across DAIL_THREADS\n\
         \u{20}\u{20}                                         with --no-timing)\n\
         \u{20}\u{20}select-bench --pool-rows N[,N...] [--queries M] [--seed S] [--k K]\n\
         \u{20}\u{20}     [--json FILE] [--no-timing]         ANN sweep instead: per pool size,\n\
         \u{20}\u{20}                                         exact scan vs ivf and ivf-int8\n\
         \u{20}\u{20}                                         retrieval with recall@k, training\n\
         \u{20}\u{20}                                         cost, and throughput per point\n\
         \u{20}\u{20}exec-diff [--train N] [--dev N] [--seed N] [--corpus FILE.sql]\n\
         \u{20}\u{20}                                         run every gold query through the\n\
         \u{20}\u{20}                                         columnar engine AND the reference\n\
         \u{20}\u{20}                                         interpreter (both join strategies);\n\
         \u{20}\u{20}                                         exit 1 unless results are bit-identical;\n\
         \u{20}\u{20}                                         --corpus replays one SQL-per-line file\n\
         \u{20}\u{20}                                         on the fixed regression database instead\n\
         \u{20}\u{20}exec-bench [--rows N] [--trace FILE.jsonl]\n\
         \u{20}\u{20}                                         run a fixed scan/filter/join/aggregate\n\
         \u{20}\u{20}                                         workload on a synthetic table through\n\
         \u{20}\u{20}                                         the engine DAIL_EXEC selects\n\
         \u{20}\u{20}                                         (columnar|oracle), recording\n\
         \u{20}\u{20}                                         storage.exec spans for `profile`\n\
         \u{20}\u{20}run-experiments --experiment e1..e10|a1..a6 [--dev-cap N] [--seed N]\n\
         \u{20}\u{20}     [--full-grid] [--trace FILE.jsonl]   run one paper experiment, print its tables\n\
         \u{20}\u{20}profile TRACE.jsonl                      render a recorded trace as a\n\
         \u{20}\u{20}                                         per-stage time/metric breakdown\n\
         \u{20}\u{20}profile BASE.jsonl NEW.jsonl [--fail-on-regress PCT]\n\
         \u{20}\u{20}                                         diff two traces (self-times, counters,\n\
         \u{20}\u{20}                                         histograms); exit 1 if any stage's\n\
         \u{20}\u{20}                                         self-time regressed beyond PCT percent\n\
         \u{20}\u{20}flame TRACE.jsonl [-o OUT.svg] [--folded]\n\
         \u{20}\u{20}                                         render a trace as flamegraph SVG\n\
         \u{20}\u{20}                                         (or folded stacks with --folded)"
    );
}

fn parse_flags(args: impl Iterator<Item = String>) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if let Some(key) = a.strip_prefix("--") {
            let val = match args.peek() {
                Some(v) if !v.starts_with("--") => args.next().unwrap(),
                _ => "true".to_string(),
            };
            out.insert(key.to_string(), val);
        }
    }
    out
}

fn flag<'a>(flags: &'a HashMap<String, String>, key: &str, default: &'a str) -> &'a str {
    flags.get(key).map(String::as_str).unwrap_or(default)
}

/// Parse a numeric flag, exiting with status 2 (not a panic) on bad input.
fn num_flag<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("--{key} must be a number, got {raw:?}");
            std::process::exit(2);
        }),
    }
}

/// Parse a probability flag (a float in `[0, 1]`), exiting with status 2
/// on bad input.
fn rate_flag(flags: &HashMap<String, String>, key: &str, default: f64) -> f64 {
    match flags.get(key) {
        None => default,
        Some(raw) => match raw.parse::<f64>() {
            Ok(v) if (0.0..=1.0).contains(&v) => v,
            _ => {
                eprintln!("--{key} must be a number in [0, 1], got {raw:?}");
                std::process::exit(2);
            }
        },
    }
}

/// Install a global trace recorder when `--trace FILE` was given.
/// Returns the recorder (enabled or disabled) plus the output path.
///
/// Tracing also installs the global [`obskit::tsdb`] store (windowed
/// labelled series; drained into the trace by [`finish_trace`]) unless
/// `DAIL_TSDB=0`. `DAIL_TSDB_STEP_MS` and `DAIL_TSDB_MAX_SERIES`
/// override the window step and the hard cardinality bound.
fn setup_trace(flags: &HashMap<String, String>) -> (obskit::Recorder, Option<PathBuf>) {
    match flags.get("trace") {
        Some(path) => {
            let rec = obskit::Recorder::enabled();
            obskit::set_global(rec.clone());
            if std::env::var("DAIL_TSDB").as_deref() != Ok("0") {
                let env_num = |key: &str, default: u64| {
                    std::env::var(key)
                        .ok()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(default)
                };
                let defaults = obskit::tsdb::TsdbConfig::default();
                obskit::tsdb::install(obskit::tsdb::Tsdb::new(obskit::tsdb::TsdbConfig {
                    step_ms: env_num("DAIL_TSDB_STEP_MS", defaults.step_ms).max(1),
                    max_series: env_num("DAIL_TSDB_MAX_SERIES", defaults.max_series as u64).max(1)
                        as usize,
                    ..defaults
                }));
            }
            (rec, Some(PathBuf::from(path)))
        }
        None => (obskit::Recorder::disabled(), None),
    }
}

/// Write the trace out (if tracing was requested) and tell the user.
fn finish_trace(rec: &obskit::Recorder, path: Option<PathBuf>) {
    let Some(path) = path else { return };
    obskit::tsdb::with(|t| t.drain_into(rec));
    match rec.write_jsonl(&path) {
        Ok(()) => eprintln!(
            "trace written to {} ({} events); replay with `dail_sql_cli profile {}`",
            path.display(),
            rec.drain_trace().len(),
            path.display()
        ),
        Err(e) => {
            eprintln!("failed to write trace {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

fn models() {
    println!(
        "{:<18} {:>5} {:>6} {:>5} {:>8} {:>10} {:>6}",
        "model", "tier", "align", "icl", "context", "$/1k in", "open"
    );
    for p in simllm::ZOO {
        println!(
            "{:<18} {:>5.2} {:>6.2} {:>5.2} {:>8} {:>10.4} {:>6}",
            p.name,
            p.tier,
            p.alignment,
            p.icl_weight,
            p.context_window,
            p.price_per_1k_prompt,
            p.open_source
        );
    }
}

/// `--digests [N]`: `None` when absent, `Some(top_n)` when present
/// (bare `--digests` defaults to the top 10).
fn digests_top_n(flags: &HashMap<String, String>) -> Option<usize> {
    match flags.get("digests") {
        None => None,
        Some(v) if v == "true" => Some(10),
        Some(v) => match v.parse() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("--digests must be a number, got {v:?}");
                std::process::exit(2);
            }
        },
    }
}

/// `DAIL_ANALYZE` env toggle: route serve-bench EX scoring through the
/// analyzed executor (per-operator accounting on) without changing any
/// printed number — the overhead-ceiling gate runs under this.
fn analyze_from_env() -> bool {
    std::env::var("DAIL_ANALYZE")
        .map(|v| !matches!(v.trim(), "" | "0" | "false"))
        .unwrap_or(false)
}

/// Look up a database by id, exiting with status 2 (and the available ids)
/// when unknown. Shared by `explain` and `stats`.
fn db_by_id<'a>(bench: &'a Benchmark, db_id: &str) -> &'a storage::Database {
    match bench.databases.get(db_id) {
        Some(db) => db,
        None => {
            eprintln!(
                "unknown db {db_id}; available: {}",
                bench
                    .databases
                    .keys()
                    .cloned()
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            std::process::exit(2);
        }
    }
}

/// `explain`: print the operator plan tree for one query, optionally
/// executing it (`--analyze`) to fill in actual rows / invocations /
/// self-times. `--canonical` zeroes the time fields so output is
/// byte-stable for goldens and cross-thread-count diffing.
fn explain_cmd(positional: &[&String], flags: &HashMap<String, String>) {
    let [db_id, sql] = positional else {
        eprintln!("explain requires: dail_sql_cli explain DB_ID \"SQL\" [--analyze] [--canonical]");
        std::process::exit(2);
    };
    let bench = bench_from_flags(flags);
    let db = db_by_id(&bench, db_id);
    let q = match sqlkit::parse_query(sql) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("parse error: {e}");
            std::process::exit(2);
        }
    };
    let stats = storage::collect(db);
    let canonical = flags.contains_key("canonical");
    if flags.contains_key("analyze") {
        match storage::execute_query_analyzed(db, &q, storage::ExecOptions::default(), Some(&stats))
        {
            Ok(an) => print!("{}", an.plan.render(true, canonical)),
            Err(e) => {
                eprintln!("execution error: {e}");
                std::process::exit(1);
            }
        }
    } else {
        let plan = storage::explain_query(db, &q, storage::ExecOptions::default(), Some(&stats));
        print!("{}", plan.render(false, canonical));
    }
}

/// `stats`: collect per-table / per-column statistics for one database and
/// emit them as JSONL. `--roundtrip` re-parses the emitted text and exits 1
/// unless re-serialization is byte-identical (the format's invariant).
fn stats_cmd(positional: &[&String], flags: &HashMap<String, String>) {
    let [db_id] = positional else {
        eprintln!("stats requires: dail_sql_cli stats DB_ID [--out FILE] [--roundtrip]");
        std::process::exit(2);
    };
    let bench = bench_from_flags(flags);
    let db = db_by_id(&bench, db_id);
    let stats = storage::collect(db);
    let jsonl = stats.to_jsonl();
    if flags.contains_key("roundtrip") {
        match storage::DbStats::from_jsonl(&jsonl) {
            Ok(back) if back.to_jsonl() == jsonl => {
                eprintln!(
                    "round-trip OK: {} tables, {} bytes",
                    stats.tables.len(),
                    jsonl.len()
                );
            }
            Ok(_) => {
                eprintln!("FATAL: stats JSONL round-trip is not byte-identical");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("FATAL: emitted stats JSONL does not parse back: {e}");
                std::process::exit(1);
            }
        }
    }
    match flags.get("out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &jsonl) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("stats written to {path} ({} tables)", stats.tables.len());
        }
        None => print!("{jsonl}"),
    }
}

/// Bit-exact result equality: stricter than `PartialEq` (NaN payloads and
/// `-0.0` vs `0.0` both count) — the standard the differential gate holds
/// the two engines to.
fn results_bit_eq(a: &storage::ResultSet, b: &storage::ResultSet) -> bool {
    use storage::Value;
    fn cell(a: &Value, b: &Value) -> bool {
        match (a, b) {
            (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
            _ => a == b,
        }
    }
    a.columns == b.columns
        && a.rows.len() == b.rows.len()
        && a.rows
            .iter()
            .zip(&b.rows)
            .all(|(r, s)| r.len() == s.len() && r.iter().zip(s).all(|(x, y)| cell(x, y)))
}

/// Run one SQL string through both engines under both join strategies;
/// `Err` carries the divergence report.
fn diff_one(db: &storage::Database, sql: &str) -> Result<(), String> {
    use storage::{
        execute_query_oracle_with, execute_query_with, Engine, ExecOptions, JoinStrategy,
    };
    let q = sqlkit::parse_query(sql).map_err(|e| format!("failed to parse ({e}): {sql}"))?;
    for join in [JoinStrategy::Hash, JoinStrategy::NestedLoop] {
        let opts = ExecOptions {
            join,
            engine: Engine::Columnar,
        };
        let oracle = execute_query_oracle_with(db, &q, opts);
        let columnar = execute_query_with(db, &q, opts);
        let agree = match (&oracle, &columnar) {
            (Ok(a), Ok(b)) => results_bit_eq(a, b),
            (Err(a), Err(b)) => a == b,
            _ => false,
        };
        if !agree {
            return Err(format!(
                "ENGINE DIVERGENCE ({join:?}) on {sql}\n  oracle:   {oracle:?}\n  columnar: {columnar:?}"
            ));
        }
    }
    Ok(())
}

/// The fixed regression database for `--corpus` replays — a CLI mirror of
/// `regression_db()` in `crates/storage/tests/exec_differential.rs` (keep
/// the two in lockstep): every adversarial corner the differential suite
/// shrinks onto, with `tag` deliberately left empty.
fn diff_regression_db() -> storage::Database {
    use storage::schema::{ColType, ColumnDef, DbSchema, ForeignKey, TableSchema};
    use storage::Value;
    const BIG: i64 = 9_007_199_254_740_992; // 2^53
    let schema = DbSchema {
        db_id: "diff".into(),
        tables: vec![
            TableSchema {
                name: "person".into(),
                columns: vec![
                    ColumnDef::new("id", ColType::Int),
                    ColumnDef::new("grp", ColType::Int),
                    ColumnDef::new("score", ColType::Float),
                    ColumnDef::new("name", ColType::Text),
                ],
                primary_key: vec![0],
            },
            TableSchema {
                name: "visit".into(),
                columns: vec![
                    ColumnDef::new("vid", ColType::Int),
                    ColumnDef::new("person_id", ColType::Int),
                    ColumnDef::new("amount", ColType::Float),
                ],
                primary_key: vec![0],
            },
            TableSchema {
                name: "tag".into(),
                columns: vec![
                    ColumnDef::new("tid", ColType::Int),
                    ColumnDef::new("label", ColType::Text),
                ],
                primary_key: vec![0],
            },
        ],
        foreign_keys: vec![ForeignKey {
            from_table: "visit".into(),
            from_column: "person_id".into(),
            to_table: "person".into(),
            to_column: "id".into(),
        }],
    };
    let mut db = storage::Database::new(schema);
    let people: Vec<(i64, Value, Value, Value)> = vec![
        (0, Value::Int(1), Value::Float(0.0), Value::Str("a".into())),
        (
            1,
            Value::Int(1),
            Value::Float(-0.0),
            Value::Str("ab".into()),
        ),
        (
            2,
            Value::Int(2),
            Value::Float(f64::NAN),
            Value::Str("b".into()),
        ),
        (3, Value::Null, Value::Null, Value::Null),
        (
            4,
            Value::Int(BIG),
            Value::Float(1.0),
            Value::Str(String::new()),
        ),
        (
            5,
            Value::Int(BIG + 1),
            Value::Float(1.0 + f64::EPSILON),
            Value::Str("ac".into()),
        ),
        (6, Value::Int(3), Value::Float(0.5), Value::Str("a".into())),
        (7, Value::Int(3), Value::Float(2.0), Value::Null),
    ];
    for (id, grp, score, name) in people {
        db.insert("person", vec![Value::Int(id), grp, score, name])
            .expect("regression row inserts");
    }
    let visits: Vec<(i64, Value, Value)> = vec![
        (0, Value::Int(1), Value::Float(0.0)),
        (1, Value::Int(1), Value::Float(-0.0)),
        (2, Value::Int(2), Value::Float(f64::NAN)),
        (3, Value::Null, Value::Float(1.0)),
        (4, Value::Int(6), Value::Null),
        (5, Value::Int(99), Value::Float(0.5)),
    ];
    for (vid, pid, amount) in visits {
        db.insert("visit", vec![Value::Int(vid), pid, amount])
            .expect("regression row inserts");
    }
    db
}

/// `exec-diff`: the differential oracle gate over the benchmark's gold
/// queries. Every gold query runs through the columnar engine and the
/// reference interpreter under both join strategies; any non-bit-identical
/// result (or mismatched error) exits 1. `--corpus FILE` instead replays a
/// one-SQL-per-line file (`#` comments and blank lines skipped) against
/// the fixed regression database; a missing or unreadable file exits 2.
fn exec_diff(flags: &HashMap<String, String>) {
    if let Some(path) = flags.get("corpus") {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read corpus {path}: {e}");
                std::process::exit(2);
            }
        };
        let db = diff_regression_db();
        let mut n = 0usize;
        for line in text.lines() {
            let sql = line.trim();
            if sql.is_empty() || sql.starts_with('#') {
                continue;
            }
            if let Err(msg) = diff_one(&db, sql) {
                eprintln!("{path}: {msg}");
                std::process::exit(1);
            }
            n += 1;
        }
        println!(
            "exec-diff: {n} corpus queries x 2 join strategies — columnar engine and \
             reference interpreter agree bit-for-bit"
        );
        return;
    }
    let bench = bench_from_flags(flags);
    let mut n = 0usize;
    for item in bench.train.iter().chain(bench.dev.iter()) {
        let db = bench.db(item);
        if let Err(msg) = diff_one(db, &item.gold_sql) {
            eprintln!("{msg}");
            std::process::exit(1);
        }
        n += 1;
    }
    println!(
        "exec-diff: {n} gold queries x 2 join strategies — columnar engine and \
         reference interpreter agree bit-for-bit"
    );
}

/// `exec-bench`: a fixed scan/filter/join/aggregate workload on a synthetic
/// star schema (`--rows` fact rows), run through whichever engine
/// `DAIL_EXEC` selects. The analyzed executor emits `storage.exec` spans,
/// so two traced runs (columnar vs oracle) can be diffed with `profile` —
/// that is the CI step-change gate. Result row counts go to stdout (the
/// engines must agree on them); timing goes to stderr and the trace only.
fn exec_bench(flags: &HashMap<String, String>) {
    use storage::schema::{ColType, ColumnDef, DbSchema, TableSchema};
    use storage::{Engine, Value};
    let rows: usize = num_flag(flags, "rows", 50_000usize);
    let (rec, trace_path) = setup_trace(flags);
    let schema = DbSchema {
        db_id: "exec_bench".into(),
        tables: vec![
            TableSchema {
                name: "fact".into(),
                columns: vec![
                    ColumnDef::new("id", ColType::Int),
                    ColumnDef::new("k", ColType::Int),
                    ColumnDef::new("v", ColType::Float),
                    ColumnDef::new("tag", ColType::Text),
                ],
                primary_key: vec![0],
            },
            TableSchema {
                name: "dim".into(),
                columns: vec![
                    ColumnDef::new("k", ColType::Int),
                    ColumnDef::new("label", ColType::Text),
                ],
                primary_key: vec![0],
            },
        ],
        foreign_keys: vec![],
    };
    let mut db = storage::Database::new(schema);
    for i in 0..rows {
        db.insert(
            "fact",
            vec![
                Value::Int(i as i64),
                Value::Int((i % 97) as i64),
                Value::Float((i % 1000) as f64 / 10.0),
                Value::Str(format!("t{}", i % 7)),
            ],
        )
        .unwrap();
    }
    for k in 0..97i64 {
        db.insert("dim", vec![Value::Int(k), Value::Str(format!("label{k}"))])
            .unwrap();
    }
    let queries = [
        ("point", "SELECT count(*) FROM fact WHERE id = 12345"),
        (
            "range",
            "SELECT count(*), sum(v) FROM fact WHERE id BETWEEN 1000 AND 2000",
        ),
        (
            "filter",
            "SELECT count(*) FROM fact WHERE k = 13 AND v > 50.0",
        ),
        ("like", "SELECT count(*) FROM fact WHERE tag LIKE 't1%'"),
        (
            "join",
            "SELECT count(*) FROM fact AS F JOIN dim AS D ON F.k = D.k WHERE F.v < 25.0",
        ),
        (
            "group",
            "SELECT D.label, count(*), sum(F.v) FROM fact AS F JOIN dim AS D ON F.k = D.k \
             GROUP BY D.label ORDER BY D.label ASC LIMIT 5",
        ),
    ];
    let engine = match Engine::default() {
        Engine::Columnar => "columnar",
        Engine::Oracle => "oracle",
    };
    println!("# exec-bench: {rows} fact rows, engine {engine}");
    let t0 = std::time::Instant::now();
    for (name, sql) in queries {
        let q = sqlkit::parse_query(sql).expect("workload SQL parses");
        match storage::execute_query_analyzed(&db, &q, storage::ExecOptions::default(), None) {
            Ok(an) => println!("{name}: {} rows", an.result.rows.len()),
            Err(e) => {
                eprintln!("exec-bench query {name} failed: {e}");
                std::process::exit(1);
            }
        }
    }
    eprintln!("exec-bench wall time: {:?}", t0.elapsed());
    finish_trace(&rec, trace_path);
}

fn bench_from_flags(flags: &HashMap<String, String>) -> Benchmark {
    let cfg = BenchmarkConfig {
        seed: num_flag(flags, "seed", 2023u64),
        train_size: num_flag(flags, "train", 400usize),
        dev_size: num_flag(flags, "dev", 100usize),
        dev_domains: 6,
        synthetic_domains: 0,
    };
    let mut bench = Benchmark::generate(cfg);
    if let Some(dir) = flags.get("store") {
        apply_store(&mut bench, std::path::Path::new(dir));
    }
    bench
}

/// `--store DIR`: replace every generated database with the one persisted
/// in `DIR` (written by `persist`). Loads are validated against the WAL /
/// checksum machinery, so a benchmark served this way runs on exactly the
/// bytes that survived a restart. Missing or unreadable stores exit 2.
fn apply_store(bench: &mut Benchmark, dir: &std::path::Path) {
    if !dir.is_dir() {
        eprintln!("--store {}: not a directory", dir.display());
        std::process::exit(2);
    }
    let ids: Vec<String> = bench.databases.keys().cloned().collect();
    for id in ids {
        let path = dir.join(format!("{id}.pg"));
        match storage::load_database(&path) {
            Ok((db, _)) => {
                bench.databases.insert(id, db);
            }
            Err(e) => {
                eprintln!("cannot load store {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
}

/// Path of the example-pool snapshot inside a store directory.
fn pool_snapshot_path(dir: &std::path::Path) -> PathBuf {
    dir.join("pool.emb")
}

/// `persist`: materialize every benchmark database into a WAL-backed page
/// store under `--out DIR` (one `<db_id>.pg` file each), then write the
/// example-pool embedding snapshot. `--resume` skips stores already marked
/// complete, which is how a run interrupted mid-commit (by a crash, or by
/// the `DAIL_CRASH_POINT` injector) finishes the job after `recover`.
fn persist_cmd(flags: &HashMap<String, String>) {
    let Some(out) = flags.get("out") else {
        eprintln!("persist requires --out DIR");
        std::process::exit(2);
    };
    let dir = PathBuf::from(out);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(2);
    }
    let resume = flags.contains_key("resume");
    let bench = bench_from_flags(flags);
    let (mut written, mut skipped) = (0usize, 0usize);
    for (id, db) in &bench.databases {
        let path = dir.join(format!("{id}.pg"));
        if resume && matches!(storage::recover_store(&path), Ok(info) if info.complete) {
            skipped += 1;
            continue;
        }
        if let Err(e) = storage::persist_database(db, &path) {
            eprintln!("persist {}: {e}", path.display());
            std::process::exit(1);
        }
        written += 1;
    }
    let selector = ExampleSelector::new(&bench);
    if let Err(e) = selector.save_snapshot(&pool_snapshot_path(&dir)) {
        eprintln!("persist pool snapshot: {e}");
        std::process::exit(1);
    }
    println!(
        "persisted {written} databases ({skipped} already complete) and a {}-example \
         pool snapshot to {}",
        bench.train.len(),
        dir.display()
    );
}

/// `recover`: open every page store in `DIR`, replaying committed WAL
/// tails and discarding torn ones, and report the per-store verdict.
/// `--verify` additionally loads every complete store row by row and
/// checksums the pool snapshot's f32 data blocks. Exit codes: 2 when `DIR`
/// is missing, 1 when any store is corrupt, 0 otherwise (incomplete
/// stores are reported, not fatal — `persist --resume` finishes them).
fn recover_cmd(positional: &[&String], flags: &HashMap<String, String>) {
    let [dir] = positional else {
        eprintln!("recover requires a store directory: dail_sql_cli recover DIR [--verify]");
        std::process::exit(2);
    };
    let dir = PathBuf::from(dir);
    if !dir.is_dir() {
        eprintln!("cannot recover {}: not a directory", dir.display());
        std::process::exit(2);
    }
    let verify = flags.contains_key("verify");
    let mut stores: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "pg"))
            .collect(),
        Err(e) => {
            eprintln!("cannot read {}: {e}", dir.display());
            std::process::exit(2);
        }
    };
    stores.sort();
    let mut corrupt = 0usize;
    let mut incomplete = 0usize;
    for path in &stores {
        match storage::recover_store(path) {
            Ok(info) => {
                let rows: u64 = info.tables.iter().map(|(_, n)| n).sum();
                println!(
                    "{}: {} seq={} pages={} tables={} rows={} replayed={}{}",
                    info.db_id,
                    if info.complete {
                        "complete"
                    } else {
                        "INCOMPLETE"
                    },
                    info.commit_seq,
                    info.n_pages,
                    info.tables.len(),
                    rows,
                    info.replayed_commits,
                    if info.discarded_tail {
                        " discarded-torn-tail"
                    } else {
                        ""
                    }
                );
                if !info.complete {
                    incomplete += 1;
                } else if verify {
                    if let Err(e) = storage::load_database(path) {
                        println!("{}: VERIFY FAILED: {e}", info.db_id);
                        corrupt += 1;
                    }
                }
            }
            Err(e @ storage::StoreError::Incomplete(_)) => {
                println!("{}: INCOMPLETE: {e}", path.display());
                incomplete += 1;
            }
            Err(e) => {
                println!("{}: CORRUPT: {e}", path.display());
                corrupt += 1;
            }
        }
    }
    let snap = pool_snapshot_path(&dir);
    if snap.is_file() {
        match retrievekit::load_snapshot(&snap, verify) {
            Ok(s) => println!(
                "pool.emb: ok matrices={} rows={}{}",
                s.matrices.len(),
                s.matrices.first().map(|m| m.len()).unwrap_or(0),
                if verify { " data-checksum=ok" } else { "" }
            ),
            Err(e) => {
                println!("pool.emb: CORRUPT: {e}");
                corrupt += 1;
            }
        }
    }
    println!(
        "recover: {} stores, {incomplete} incomplete, {corrupt} corrupt",
        stores.len()
    );
    if corrupt > 0 {
        std::process::exit(1);
    }
}

/// `warm-start-bench`: prove the snapshot warm path reproduces the cold
/// selector bit for bit, then time both. The cold path embeds and masks
/// every training question and walks every gold AST; the warm path reads
/// one file. `--json FILE` records `{cold_ms, warm_ms, speedup}` for the
/// CI floor in `scripts/check.sh`.
fn warm_start_bench(flags: &HashMap<String, String>) {
    let Some(store) = flags.get("store") else {
        eprintln!("warm-start-bench requires --store DIR");
        std::process::exit(2);
    };
    let dir = PathBuf::from(store);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(2);
    }
    let snap = pool_snapshot_path(&dir);
    // The benchmark itself is generated outside both timed regions: it is
    // shared input, not part of either path's cost. The default pool is
    // larger than eval's (2000 vs 400 examples): the warm path's cost is
    // mostly fixed (one file read), so a serving-sized pool is where the
    // cold/warm gap is representative.
    let cfg = BenchmarkConfig {
        seed: num_flag(flags, "seed", 2023u64),
        train_size: num_flag(flags, "train", 2000usize),
        dev_size: num_flag(flags, "dev", 100usize),
        dev_domains: 6,
        synthetic_domains: 0,
    };
    let bench = Benchmark::generate(cfg);

    // Min-of-N timing on both sides: the first iteration of either path
    // pays one-off page-fault and allocator costs that say nothing about
    // the path itself, and the minimum is the standard noise-robust
    // estimator for deterministic workloads.
    const ITERS: usize = 5;
    let mut cold_ms = f64::INFINITY;
    let mut cold = None;
    for _ in 0..ITERS {
        let t0 = std::time::Instant::now();
        let s = ExampleSelector::new(&bench);
        cold_ms = cold_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        cold = Some(s);
    }
    let cold = cold.expect("at least one cold build");
    if let Err(e) = cold.save_snapshot(&snap) {
        eprintln!("cannot write {}: {e}", snap.display());
        std::process::exit(1);
    }

    let mut warm_ms = f64::INFINITY;
    let mut warm = None;
    for _ in 0..ITERS {
        let t0 = std::time::Instant::now();
        let s = match ExampleSelector::load_snapshot(&bench, &snap, false) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("warm load failed: {e}");
                std::process::exit(1);
            }
        };
        warm_ms = warm_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        warm = Some(s);
    }
    let warm = warm.expect("at least one warm load");

    // Equivalence is part of the benchmark's contract: a warm start that
    // selects differently is a bug, not a speedup.
    let draft = sqlkit::parse_query("SELECT count(*) FROM t").expect("draft parses");
    for strat in promptkit::SelectionStrategy::ALL {
        let pick = |s: &ExampleSelector| -> Vec<usize> {
            s.select(
                strat,
                "How many gadgets are there?",
                "how many <mask> are there",
                Some(&draft),
                8,
                7,
            )
            .iter()
            .map(|e| e.id)
            .collect()
        };
        if pick(&cold) != pick(&warm) {
            eprintln!("FATAL: warm selector diverges from cold on {strat:?}");
            std::process::exit(1);
        }
    }

    let speedup = cold_ms / warm_ms.max(1e-9);
    println!("# warm-start-bench\n");
    println!("| metric | value |");
    println!("|---|---|");
    println!("| pool | {} |", bench.train.len());
    println!("| dim | {} |", textkit::DIM);
    println!("| cold build | {cold_ms:.2} ms |");
    println!("| warm load | {warm_ms:.2} ms |");
    println!("| speedup | {speedup:.1}x |");
    println!("| selections | identical |");
    if let Some(path) = flags.get("json") {
        let json = format!(
            "{{\"pool\":{},\"dim\":{},\"cold_ms\":{cold_ms:.3},\"warm_ms\":{warm_ms:.3},\
             \"speedup\":{speedup:.2}}}\n",
            bench.train.len(),
            textkit::DIM
        );
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("warm-start numbers written to {path}");
    }
}

fn generate(flags: &HashMap<String, String>) {
    let Some(out) = flags.get("out") else {
        eprintln!("generate requires --out DIR");
        std::process::exit(2);
    };
    let bench = bench_from_flags(flags);
    let dir = PathBuf::from(out);
    export_benchmark(&bench, &dir).expect("export failed");
    println!(
        "exported {} databases, {} train and {} dev examples to {}",
        bench.databases.len(),
        bench.train.len(),
        bench.dev.len(),
        dir.display()
    );
}

fn ask(flags: &HashMap<String, String>) {
    let Some(question) = flags.get("question") else {
        eprintln!("ask requires --question \"...\"");
        std::process::exit(2);
    };
    let model_name = flag(flags, "model", "gpt-4");
    let Some(model) = SimLlm::new(model_name) else {
        eprintln!("unknown model {model_name}; try `dail_sql_cli models`");
        std::process::exit(2);
    };
    let bench = bench_from_flags(flags);
    let db_id = flag(flags, "db", "");
    let db = if db_id.is_empty() {
        bench
            .databases
            .values()
            .next()
            .expect("benchmark has databases")
    } else {
        match bench.databases.get(db_id) {
            Some(db) => db,
            None => {
                eprintln!(
                    "unknown db {db_id}; available: {}",
                    bench
                        .databases
                        .keys()
                        .cloned()
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(2);
            }
        }
    };
    let seed: u64 = num_flag(flags, "seed", 1u64);
    let prompt = render_prompt(
        QuestionRepr::CodeRepr,
        &db.schema,
        Some(db),
        question,
        ReprOptions::default(),
    );
    let out = model.complete(
        &prompt,
        &GenOptions {
            seed,
            ..Default::default()
        },
    );
    let sql = extract_sql(&out, prompt.trim_end().ends_with("SELECT"));
    println!("db:  {}", db.schema.db_id);
    println!("sql: {sql}");
    match sqlkit::parse_query(&sql).map(|q| storage::execute_query(db, &q)) {
        Ok(Ok(rs)) => {
            println!("rows ({}):", rs.rows.len());
            for row in rs.rows.iter().take(10) {
                let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                println!("  {}", cells.join(" | "));
            }
        }
        Ok(Err(e)) => println!("execution error: {e}"),
        Err(e) => println!("parse error: {e}"),
    }
}

/// Build the predictor named by `--pipeline` / `--model`, exiting with
/// status 2 on unknown names. Shared by `eval` and `serve-bench`.
fn build_predictor(flags: &HashMap<String, String>) -> Box<dyn Predictor + Sync> {
    let model_name = flag(flags, "model", "gpt-4");
    let Some(model) = SimLlm::new(model_name) else {
        eprintln!("unknown model {model_name}; try `dail_sql_cli models`");
        std::process::exit(2);
    };
    match flag(flags, "pipeline", "dail") {
        "dail" => Box::new(DailSql::new(model)),
        "dail-sc" => Box::new(DailSql::with_self_consistency(model, 5)),
        "din" => Box::new(DinSqlStyle::new(model)),
        "c3" => Box::new(C3Style::new(model)),
        "zero" => Box::new(ZeroShot::new(model, QuestionRepr::CodeRepr)),
        other => {
            eprintln!("unknown pipeline {other} (use dail|dail-sc|din|c3|zero)");
            std::process::exit(2);
        }
    }
}

fn run_eval(flags: &HashMap<String, String>) {
    let predictor = build_predictor(flags);
    let realistic = flags.contains_key("realistic");
    let (rec, trace_path) = setup_trace(flags);
    let bench = bench_from_flags(flags);
    let selector = ExampleSelector::new(&bench);
    let threads = flags
        .get("threads")
        .map(|_| num_flag(flags, "threads", 0usize));
    let digests_n = digests_top_n(flags);
    let opts = EvalOptions {
        threads,
        recorder: rec.clone(),
        digests: digests_n.is_some(),
    };
    let r = evaluate_opts(
        &bench,
        &selector,
        predictor.as_ref(),
        &bench.dev,
        2023,
        realistic,
        &opts,
    );
    println!("pipeline: {}", r.name);
    println!("items:    {}", r.n);
    println!("EX:       {}", r.ex_ci95(2023).render());
    println!("EM:       {:.1}%", r.em_pct());
    println!("valid:    {:.1}%", r.valid_pct());
    println!(
        "tokens:   {:.0} prompt + {:.0} completion per query",
        r.cost.avg_prompt_tokens(),
        r.cost.avg_completion_tokens()
    );
    println!("calls:    {:.1} per query", r.cost.avg_api_calls());
    for (h, (c, n)) in &r.ex_by_hardness {
        println!(
            "  {:<7} {:>5.1}%  ({c}/{n})",
            h.as_str(),
            100.0 * *c as f64 / (*n).max(1) as f64
        );
    }
    if let (Some(n), Some(acc)) = (digests_n, &r.digests) {
        println!();
        print!("{}", acc.render_top(n, flags.contains_key("canonical")));
    }
    finish_trace(&rec, trace_path);
}

/// Head-sampling rate for request traces, from `DAIL_TRACE_SAMPLE`
/// (default 1.0 — trace every request when tracing is on). Unparsable
/// values warn and fall back rather than abort: sampling is an
/// observability knob, never a reason to refuse to serve.
fn trace_sample_from_env() -> f64 {
    match std::env::var("DAIL_TRACE_SAMPLE") {
        Err(_) => 1.0,
        Ok(raw) => match raw.parse::<f64>() {
            Ok(v) if (0.0..=1.0).contains(&v) => v,
            _ => {
                eprintln!(
                    "warning: DAIL_TRACE_SAMPLE must be a number in [0, 1], got {raw:?}; using 1.0"
                );
                1.0
            }
        },
    }
}

/// One finished serve-bench run, owned (no borrows into the benchmark),
/// shared by `serve-bench` and `slo-report`.
struct ServeRun {
    seed: u64,
    predictor_name: String,
    faults: simllm::FaultConfig,
    reqs: Vec<servekit::ServeReq>,
    outcomes: Vec<servekit::Outcome>,
    stats: servekit::ServeStats,
    /// Per-request EX verdict: `Some` for scored OK responses.
    ex: Vec<Option<bool>>,
    /// Query-digest rollup over scored responses; `Some` only when the
    /// analyzed scoring path was active (`--digests` or `DAIL_ANALYZE`).
    digests: Option<eval::DigestAccumulator>,
    rec: obskit::Recorder,
    trace_path: Option<PathBuf>,
}

/// Drive the servekit serving layer with a seeded load against injected
/// faults. Every number in the result is deterministic given `--seed` —
/// including across `--workers` settings — which is what makes the
/// reports golden-testable. EX scoring runs under each request's trace
/// context, so traced runs show execution/comparison spans inside the
/// request tree.
fn run_serve(flags: &HashMap<String, String>) -> ServeRun {
    let predictor = build_predictor(flags);
    let pipeline = flag(flags, "pipeline", "dail").to_string();
    let seed: u64 = num_flag(flags, "seed", 7u64);
    let (rec, trace_path) = setup_trace(flags);
    let bench = bench_from_flags(flags);
    let selector = ExampleSelector::new(&bench);
    let tokenizer = textkit::Tokenizer::new();
    let ctx = dail_core::PredictCtx {
        bench: &bench,
        selector: &selector,
        tokenizer: &tokenizer,
        seed,
        realistic: flags.contains_key("realistic"),
        trace: obskit::TraceContext::disabled(),
    };
    let faults = simllm::FaultConfig {
        seed,
        error_rate: rate_flag(flags, "error-rate", 0.1),
        spike_rate: rate_flag(flags, "spike-rate", 0.05),
        spike_ms: num_flag(flags, "spike-ms", 250u64),
        corrupt_rate: rate_flag(flags, "corrupt-rate", 0.05),
    };
    let cfg = servekit::ServeConfig {
        workers: num_flag(flags, "workers", 4usize),
        queue_capacity: num_flag(flags, "queue", 32usize),
        cache_capacity: num_flag(flags, "cache", 4096usize),
        max_attempts: num_flag(flags, "retries", 3u32) + 1,
        backoff_base_ms: num_flag(flags, "backoff-ms", 25u64),
        deadline_ms: num_flag(flags, "deadline-ms", 2000u64),
        time_scale: 0.0,
        // The pipeline fixes its own representation and shot count, so its
        // name stands in for both in the cache key.
        repr: pipeline,
        shots: 0,
        faults,
        trace_sample: trace_sample_from_env(),
    };
    let load = servekit::LoadConfig {
        seed,
        requests: num_flag(flags, "requests", 120usize),
        mean_gap_ms: num_flag(flags, "mean-gap-ms", 30u64),
        dup_rate: rate_flag(flags, "dup-rate", 0.35),
    };
    let reqs = servekit::generate(&load, bench.dev.len());
    let out = servekit::serve(predictor.as_ref(), &ctx, &bench.dev, &reqs, &cfg);

    // Scoring path: the analyzed executor (per-operator accounting and
    // digest rollup) is opt-in via `--digests` or `DAIL_ANALYZE=1`; scores
    // are identical either way, so every printed number is unchanged.
    let analyze = digests_top_n(flags).is_some() || analyze_from_env();
    let mut digests = analyze.then(eval::DigestAccumulator::new);
    let mut ex: Vec<Option<bool>> = Vec::with_capacity(reqs.len());
    for (i, (req, outcome)) in reqs.iter().zip(&out.outcomes).enumerate() {
        if let servekit::Outcome::Ok {
            sql, latency_ms, ..
        } = outcome
        {
            let item = &bench.dev[req.item_idx];
            let score = match &mut digests {
                Some(acc) => {
                    let (score, observed) = eval::score_item_observed(bench.db(item), item, sql);
                    if let Some((q, obs)) = observed {
                        acc.record(&q, obs, Some(score.ex));
                    }
                    score
                }
                None => eval::score_item_traced(bench.db(item), item, sql, out.traces[i]),
            };
            if obskit::tsdb::installed() {
                let tenant = format!("t{}", req.tenant);
                obskit::tsdb::counter(
                    "eval.ex_verdicts",
                    &[
                        ("db", item.db_id.as_str()),
                        ("tenant", &tenant),
                        ("verdict", if score.ex { "correct" } else { "wrong" }),
                    ],
                    req.arrival_ms + latency_ms,
                    1,
                );
            }
            ex.push(Some(score.ex));
        } else {
            ex.push(None);
        }
    }
    ServeRun {
        seed,
        predictor_name: predictor.name(),
        faults,
        reqs,
        outcomes: out.outcomes,
        stats: out.stats,
        ex,
        digests,
        rec,
        trace_path,
    }
}

/// Assemble the [`servekit::ReportInput`] for a finished run (shared by
/// the markdown report, the `--json` emitter and `slo-report --json`).
fn serve_report_input(run: &ServeRun) -> servekit::ReportInput {
    let ex_scored = run.ex.iter().flatten().count() as u64;
    let ex_correct = run.ex.iter().flatten().filter(|&&v| v).count() as u64;
    let s = &run.stats;
    servekit::ReportInput {
        seed: run.seed,
        predictor: run.predictor_name.clone(),
        error_rate: run.faults.error_rate,
        spike_rate: run.faults.spike_rate,
        spike_ms: run.faults.spike_ms,
        corrupt_rate: run.faults.corrupt_rate,
        submitted: s.submitted,
        admitted: s.admitted,
        shed: s.shed,
        ok: s.ok,
        failed: s.failed,
        deadline_exceeded: s.deadline_exceeded,
        retries: s.retries,
        panics: s.panics,
        cache_served: s.cache.served,
        cache_misses: s.cache.misses,
        cache_evictions: s.cache.evictions,
        latencies_ms: s.total_ms.clone(),
        makespan_ms: s.makespan_ms,
        ex_correct,
        ex_scored,
    }
}

/// Write the JSON report when `--json FILE` was given.
fn write_json_report(flags: &HashMap<String, String>, report: &servekit::ReportInput) {
    let Some(path) = flags.get("json") else {
        return;
    };
    if let Err(e) = std::fs::write(path, servekit::render_json(report)) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    }
    eprintln!("json report written to {path}");
}

/// `serve-bench`: run the seeded load and print the markdown report.
/// `--digests N` appends a query-digest rollup section; `--json FILE`
/// additionally writes a machine-readable report.
fn serve_bench(flags: &HashMap<String, String>) {
    let run = run_serve(flags);
    let report = serve_report_input(&run);
    print!("{}", servekit::render(&report));
    if let (Some(n), Some(acc)) = (digests_top_n(flags), &run.digests) {
        println!();
        print!("{}", acc.render_top(n, flags.contains_key("canonical")));
    }
    write_json_report(flags, &report);
    finish_trace(&run.rec, run.trace_path);
}

/// `slo-report`: run the same seeded load as `serve-bench` and print the
/// SLO / burn-rate report. Deterministic: every number runs on the
/// serving layer's virtual clock.
fn slo_report(flags: &HashMap<String, String>) {
    let cfg = servekit::SloConfig {
        latency_threshold_ms: num_flag(flags, "slo-latency-ms", 300u64),
        latency_objective: rate_flag(flags, "slo-latency-objective", 0.95),
        ex_objective: rate_flag(flags, "slo-ex-objective", 0.50),
        short_window_ms: num_flag(flags, "slo-short-ms", 2_000u64),
        long_window_ms: num_flag(flags, "slo-long-ms", 10_000u64),
        burn_alert: num_flag(flags, "burn-alert", 2.0f64),
    };
    let run = run_serve(flags);
    let outcomes: Vec<servekit::RequestOutcome> = run
        .reqs
        .iter()
        .zip(&run.outcomes)
        .zip(&run.ex)
        .map(|((req, outcome), ex)| match outcome {
            servekit::Outcome::Ok { latency_ms, .. } => servekit::RequestOutcome {
                t_ms: req.arrival_ms + latency_ms,
                served_ok: true,
                latency_ms: *latency_ms,
                ex: *ex,
            },
            servekit::Outcome::Overloaded => servekit::RequestOutcome {
                t_ms: req.arrival_ms,
                served_ok: false,
                latency_ms: 0,
                ex: None,
            },
            servekit::Outcome::DeadlineExceeded { latency_ms, .. }
            | servekit::Outcome::Failed { latency_ms, .. } => servekit::RequestOutcome {
                t_ms: req.arrival_ms + latency_ms,
                served_ok: false,
                latency_ms: *latency_ms,
                ex: None,
            },
        })
        .collect();
    print!("{}", servekit::render_slo_report(&cfg, &outcomes));
    write_json_report(flags, &serve_report_input(&run));
    finish_trace(&run.rec, run.trace_path);
}

/// `metrics`: render a recorded trace's counters, gauges and histograms
/// as Prometheus text exposition on stdout.
fn metrics_trace(positional: &[&String]) {
    let [path] = positional else {
        eprintln!("metrics requires a trace file: dail_sql_cli metrics TRACE.jsonl");
        std::process::exit(2);
    };
    print!("{}", obskit::expo::render_events(&load_trace(path)));
}

/// `dashboard`: rebuild the windowed time-series store a traced run
/// drained into its JSONL and render it as markdown. Every number
/// derives from drain-time `tsdb.*` events on the virtual clock, so the
/// output is byte-identical across runs and thread counts.
fn dashboard_cmd(positional: &[&String], flags: &HashMap<String, String>) {
    let [path] = positional else {
        eprintln!("dashboard requires a trace file: dail_sql_cli dashboard TRACE.jsonl");
        std::process::exit(2);
    };
    let events = load_trace(path);
    let tsdb = obskit::tsdb::Tsdb::from_events(&events);
    if tsdb.series_count() == 0 {
        eprintln!("no tsdb series in {path} (recorded with DAIL_TSDB=0 or by an older build?)");
        std::process::exit(2);
    }
    let window: u64 = num_flag(flags, "window", 8u64).max(1);
    let tenant = flags.get("tenant").map(String::as_str);
    print!("{}", render_dashboard(&tsdb, window, tenant));
    if let Some(json_path) = flags.get("json") {
        if let Err(e) = std::fs::write(json_path, dashboard_json(&tsdb, window, tenant)) {
            eprintln!("cannot write {json_path}: {e}");
            std::process::exit(2);
        }
        eprintln!("json dashboard written to {json_path}");
    }
}

/// How many trailing windows a sparkline covers.
const SPARK_WINDOWS: u64 = 24;

/// Sparkline over the last [`SPARK_WINDOWS`] windows ending at `latest`:
/// `·` for an empty window, otherwise one of eight block heights scaled
/// against the series' own maximum in the shown range.
fn sparkline(series: &obskit::tsdb::Series, latest: u64) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let lo = (latest + 1).saturating_sub(SPARK_WINDOWS);
    let mut counts = vec![0u64; (latest - lo + 1) as usize];
    for w in series.windows() {
        if w.win >= lo && w.win <= latest {
            counts[(w.win - lo) as usize] = w.count;
        }
    }
    let max = counts.iter().copied().max().unwrap_or(0);
    counts
        .iter()
        .map(|&c| {
            if c == 0 {
                '·'
            } else {
                // 1..=max scales to block 0..=7, top value always full.
                BLOCKS[((c * 8).div_ceil(max.max(1)).max(1) - 1).min(7) as usize]
            }
        })
        .collect()
}

/// Rows the dashboard shows: top-k series ranked by a deliberately
/// time-free key (total observations over all retained windows, then
/// name) so the ranking never flaps with the clock.
fn dashboard_rows<'a>(
    tsdb: &'a obskit::tsdb::Tsdb,
    tenant: Option<&str>,
) -> Vec<&'a obskit::tsdb::Series> {
    let mut rows: Vec<&obskit::tsdb::Series> = tsdb
        .series()
        .filter(|s| tenant.is_none_or(|t| s.label("tenant") == Some(t)))
        .collect();
    rows.sort_by(|a, b| b.total().cmp(&a.total()).then(a.name().cmp(b.name())));
    rows.truncate(20);
    rows
}

fn render_dashboard(tsdb: &obskit::tsdb::Tsdb, window: u64, tenant: Option<&str>) -> String {
    use std::fmt::Write as _;
    let cfg = tsdb.config();
    let latest = tsdb.latest_window().unwrap_or(0);
    let earliest = tsdb.earliest_window().unwrap_or(latest);
    let mut out = String::new();
    out.push_str("# tsdb dashboard\n\n");
    out.push_str("| param | value |\n|---|---|\n");
    let _ = writeln!(out, "| step | {} ms |", cfg.step_ms);
    let _ = writeln!(out, "| series | {} |", tsdb.series_count());
    let _ = writeln!(
        out,
        "| windows | {}..{} (span {} ms) |",
        earliest,
        latest,
        (latest - earliest + 1) * cfg.step_ms
    );
    let _ = writeln!(
        out,
        "| stats window | last {} windows ({} ms) |",
        window,
        window * cfg.step_ms
    );
    if let Some(t) = tenant {
        let _ = writeln!(out, "| tenant filter | {t} |");
    }
    let _ = writeln!(out, "| overflow | {} |", tsdb.overflow());
    let _ = writeln!(out, "| dropped late | {} |", tsdb.dropped_late());
    out.push('\n');
    out.push_str("## top series (by total over all retained windows)\n\n");
    let _ = writeln!(
        out,
        "| series | total | rate/s | p50 | p99 | last {SPARK_WINDOWS} windows | exemplar |"
    );
    out.push_str("|---|---|---|---|---|---|---|\n");
    for s in dashboard_rows(tsdb, tenant) {
        let rate =
            s.windowed_count(window, latest) as f64 / (window as f64 * cfg.step_ms as f64 / 1000.0);
        let (p50, p99) = if s.is_hist() {
            let h = s.merged(window, latest);
            if h.count() > 0 {
                (h.p50().to_string(), h.p99().to_string())
            } else {
                ("-".to_string(), "-".to_string())
            }
        } else {
            ("-".to_string(), "-".to_string())
        };
        let ex = s
            .exemplar(window, latest)
            .or_else(|| s.best_exemplar())
            .map(|e| format!("req={} ({})", e.request_id, e.value))
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "| `{}` | {} | {rate:.2} | {p50} | {p99} | {} | {ex} |",
            s.name(),
            s.total(),
            sparkline(s, latest)
        );
    }
    out
}

fn dashboard_json(tsdb: &obskit::tsdb::Tsdb, window: u64, tenant: Option<&str>) -> String {
    use spider_gen::export::json_escape;
    use std::fmt::Write as _;
    let cfg = tsdb.config();
    let latest = tsdb.latest_window().unwrap_or(0);
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"step_ms\":{},\"series\":{},\"window\":{},\"overflow\":{},\"dropped_late\":{},\"rows\":[",
        cfg.step_ms,
        tsdb.series_count(),
        window,
        tsdb.overflow(),
        tsdb.dropped_late()
    );
    for (i, s) in dashboard_rows(tsdb, tenant).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let rate =
            s.windowed_count(window, latest) as f64 / (window as f64 * cfg.step_ms as f64 / 1000.0);
        let _ = write!(
            out,
            "{{\"series\":\"{}\",\"total\":{},\"rate_per_s\":{rate:.4}",
            json_escape(s.name()),
            s.total()
        );
        if s.is_hist() {
            let h = s.merged(window, latest);
            if h.count() > 0 {
                let _ = write!(out, ",\"p50\":{},\"p99\":{}", h.p50(), h.p99());
            }
        }
        if let Some(e) = s.exemplar(window, latest).or_else(|| s.best_exemplar()) {
            let _ = write!(
                out,
                ",\"exemplar\":{{\"request_id\":{},\"value\":{}}}",
                e.request_id, e.value
            );
        }
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

// ---- select-bench: retrieval fast path vs naive reference ----

/// Vocabulary for the synthetic question pool. Questions share openers,
/// nouns and qualifiers the way real benchmark questions do, so embeddings
/// collide and near-tie exactly where the top-k tie-breaking matters.
const SB_OPENERS: &[&str] = &[
    "how many",
    "list the",
    "what is the",
    "show the",
    "count the",
    "which",
    "find the",
    "return the",
];
const SB_NOUNS: &[&str] = &[
    "singers",
    "stadiums",
    "concerts",
    "albums",
    "students",
    "courses",
    "flights",
    "airports",
    "orders",
    "products",
    "employees",
    "departments",
    "matches",
    "teams",
    "players",
    "books",
    "authors",
    "cities",
    "countries",
    "rivers",
    "hospitals",
    "patients",
    "doctors",
    "visits",
];
const SB_QUALS: &[&str] = &[
    "are there",
    "with the highest capacity",
    "grouped by city",
    "ordered by name",
    "for each year",
    "above the average age",
    "in each region",
    "sorted by total sales",
    "younger than 30",
    "with more than 5 entries",
];

fn sb_question(rng: &mut rand::rngs::StdRng) -> String {
    use rand::seq::SliceRandom;
    format!(
        "{} {} {}",
        SB_OPENERS.choose(rng).unwrap(),
        SB_NOUNS.choose(rng).unwrap(),
        SB_QUALS.choose(rng).unwrap(),
    )
}

/// Fold a selection's indices into a running FNV-1a checksum, so the
/// report carries a compact fingerprint of *which* examples were picked.
fn sb_checksum(mut h: u64, picks: &[(f32, u32)]) -> u64 {
    for &(_, idx) in picks {
        for b in idx.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// The committed naive reference: one allocated embedding per row, `f64`
/// iterator cosine, full stable sort — the exact shape of the selector
/// before retrievekit. `select-bench` times the fast path against this
/// and `scripts/check.sh` gates the speedup.
fn sb_naive_select(
    rows: &[textkit::Embedding],
    n: usize,
    query: &textkit::Embedding,
    k: usize,
) -> Vec<(f64, usize)> {
    let mut scored: Vec<(f64, usize)> = rows[..n]
        .iter()
        .enumerate()
        .map(|(i, r)| (r.cosine(query), i))
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    scored.truncate(k);
    scored
}

/// Benchmark retrievekit's selection fast path against the naive
/// reference on a seeded synthetic pool. Every selection is hard-checked
/// against the full-sort oracle (exit 1 on any mismatch); with
/// `--no-timing` the report contains no wall-clock numbers and is
/// byte-identical across machines and `DAIL_THREADS` settings.
fn select_bench(flags: &HashMap<String, String>) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use retrievekit::{full_sort, top_k_cosine, EmbeddingMatrix};
    use std::fmt::Write as _;
    use textkit::{embed, embed_into, DIM};

    if flags.contains_key("pool-rows") {
        // The ANN sweep is a separate report: it measures approximate
        // retrieval against the exact scan, while this legacy path gates
        // the exact fast path against the committed naive reference and
        // must stay byte-identical to pre-IVF builds.
        return select_bench_sweep(flags);
    }

    let pool_n: usize = num_flag(flags, "pool", 10_000usize).max(1);
    let queries_n: usize = num_flag(flags, "queries", 50usize).max(1);
    let k: usize = num_flag(flags, "k", 8usize).max(1);
    let seed: u64 = num_flag(flags, "seed", 2023u64);
    let timing = !flags.contains_key("no-timing");
    let json_path = flags.get("json");
    if json_path.is_some() && !timing {
        eprintln!("--json needs wall-clock numbers; drop --no-timing");
        std::process::exit(2);
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let pool: Vec<String> = (0..pool_n).map(|_| sb_question(&mut rng)).collect();
    let targets: Vec<String> = (0..queries_n).map(|_| sb_question(&mut rng)).collect();

    // Build both index shapes once, outside any timed region.
    let mut matrix = EmbeddingMatrix::with_capacity(DIM, pool_n);
    let mut row = vec![0f32; DIM];
    for q in &pool {
        embed_into(q, &mut row);
        matrix.push_row(&row);
    }
    let naive_rows: Vec<textkit::Embedding> = pool.iter().map(|q| embed(q)).collect();

    // Correctness sweep: the fast path must equal the full-sort oracle on
    // every query (hard gate), and we report its agreement with the f64
    // naive reference (informational — `f32` accumulation is allowed to
    // diverge below 1e-5, which in practice never reorders a selection).
    let mut checksum = 0xcbf29ce484222325u64;
    let mut naive_agree = 0usize;
    let mut qbuf = vec![0f32; DIM];
    for (qi, t) in targets.iter().enumerate() {
        embed_into(t, &mut qbuf);
        let fast = top_k_cosine(&matrix, &qbuf, pool_n, k);
        let oracle = full_sort((0..pool_n).map(|i| matrix.cosine(i, &qbuf)), k);
        if fast != oracle {
            eprintln!("FATAL: query {qi} fast path disagrees with full-sort oracle");
            eprintln!("  fast:   {fast:?}");
            eprintln!("  oracle: {oracle:?}");
            std::process::exit(1);
        }
        let naive = sb_naive_select(&naive_rows, pool_n, &embed(t), k);
        if fast
            .iter()
            .map(|&(_, i)| i as usize)
            .eq(naive.iter().map(|&(_, i)| i))
        {
            naive_agree += 1;
        }
        checksum = sb_checksum(checksum, &fast);
    }

    // Throughput trajectory over pool-size prefixes (the full pool last —
    // its point is the headline speedup the CI floor gates on).
    struct Point {
        rows: usize,
        fast_qps: f64,
        naive_qps: f64,
    }
    let mut points: Vec<Point> = Vec::new();
    if timing {
        for denom in [8usize, 4, 2, 1] {
            let rows = (pool_n / denom).max(1);
            let t0 = std::time::Instant::now();
            for t in &targets {
                embed_into(t, &mut qbuf);
                std::hint::black_box(top_k_cosine(&matrix, &qbuf, rows, k));
            }
            let fast_s = t0.elapsed().as_secs_f64();
            let t0 = std::time::Instant::now();
            for t in &targets {
                std::hint::black_box(sb_naive_select(&naive_rows, rows, &embed(t), k));
            }
            let naive_s = t0.elapsed().as_secs_f64();
            points.push(Point {
                rows,
                fast_qps: queries_n as f64 / fast_s.max(1e-9),
                naive_qps: queries_n as f64 / naive_s.max(1e-9),
            });
        }
    }
    let speedup = points.last().map(|p| p.fast_qps / p.naive_qps.max(1e-9));

    let mut md = String::new();
    let _ = writeln!(md, "# select-bench report\n");
    let _ = writeln!(md, "| param | value |");
    let _ = writeln!(md, "|---|---|");
    let _ = writeln!(md, "| pool | {pool_n} |");
    let _ = writeln!(md, "| queries | {queries_n} |");
    let _ = writeln!(md, "| k | {k} |");
    let _ = writeln!(md, "| seed | {seed} |");
    let _ = writeln!(md, "| dim | {DIM} |");
    let _ = writeln!(md);
    let _ = writeln!(md, "## selection equivalence\n");
    let _ = writeln!(md, "| check | result |");
    let _ = writeln!(md, "|---|---|");
    let _ = writeln!(
        md,
        "| full-sort oracle | {queries_n}/{queries_n} identical |"
    );
    let _ = writeln!(
        md,
        "| naive f64 reference | {naive_agree}/{queries_n} identical |"
    );
    let _ = writeln!(md, "| selection checksum | {checksum:#018x} |");
    let _ = writeln!(md);
    let _ = writeln!(md, "## throughput\n");
    let _ = writeln!(md, "| pool rows | naive q/s | fast q/s | speedup |");
    let _ = writeln!(md, "|---|---|---|---|");
    if timing {
        for p in &points {
            let _ = writeln!(
                md,
                "| {} | {:.1} | {:.1} | {:.2}x |",
                p.rows,
                p.naive_qps,
                p.fast_qps,
                p.fast_qps / p.naive_qps.max(1e-9)
            );
        }
    } else {
        for denom in [8usize, 4, 2, 1] {
            let _ = writeln!(md, "| {} | - | - | - |", (pool_n / denom).max(1));
        }
    }
    print!("{md}");

    if let Some(path) = json_path {
        let speedup = speedup.expect("timing enabled when --json is set");
        let mut json = String::new();
        let _ = write!(
            json,
            "{{\"pool\":{pool_n},\"queries\":{queries_n},\"k\":{k},\"seed\":{seed},\
             \"checksum\":\"{checksum:#018x}\",\"speedup_vs_naive\":{speedup:.3},\"points\":["
        );
        for (i, p) in points.iter().enumerate() {
            if i > 0 {
                let _ = write!(json, ",");
            }
            let _ = write!(
                json,
                "{{\"pool\":{},\"naive_qps\":{:.1},\"fast_qps\":{:.1}}}",
                p.rows, p.naive_qps, p.fast_qps
            );
        }
        let _ = writeln!(json, "]}}");
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("throughput points written to {path}");
    }
}

/// Question generator for the ANN sweep. The legacy `sb_question`
/// vocabulary yields only 8×24×10 = 1,920 distinct strings, so a
/// million-row pool would hold ~520 exact copies of every question and
/// recall@k would be trivially 1.0. Suffixing one of 97 regions multiplies
/// the distinct count to ~186k while keeping the distribution realistic
/// for ANN: questions sharing a base differ only in the region trigrams,
/// giving dense near-duplicate neighborhoods instead of orthogonal rows.
fn sb_question_region(rng: &mut rand::rngs::StdRng) -> String {
    use rand::Rng;
    let base = sb_question(rng);
    format!("{base} in region {}", rng.gen_range(0u32..97))
}

/// ANN retrieval sweep (`select-bench --pool-rows N[,N...]`): for each
/// pool size, measure the exact sharded scan, then IVF (f32) and IVF+int8
/// retrieval — recall@k against the exact oracle, training cost, and
/// throughput. `scripts/check.sh` gates recall ≥ 0.99 and a ≥5× speedup
/// at the 1M-row point from the `--json` output. With `--no-timing` the
/// report carries no wall-clock numbers and is byte-identical across
/// machines and `DAIL_THREADS` settings (the determinism gate).
fn select_bench_sweep(flags: &HashMap<String, String>) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use retrievekit::{top_k_cosine, EmbeddingMatrix, IvfIndex, IvfParams, QuantizedMatrix};
    use std::fmt::Write as _;
    use textkit::{embed_into, DIM};

    let raw_sizes = flags.get("pool-rows").expect("dispatch checked the flag");
    let mut sizes: Vec<usize> = Vec::new();
    for part in raw_sizes.split(',') {
        match part.trim().parse::<usize>() {
            Ok(n) if n > 0 => sizes.push(n),
            _ => {
                eprintln!("--pool-rows wants positive integers (comma-separated), got {part:?}");
                std::process::exit(2);
            }
        }
    }
    let queries_n: usize = num_flag(flags, "queries", 20usize).max(1);
    let k: usize = num_flag(flags, "k", 8usize).max(1);
    let seed: u64 = num_flag(flags, "seed", 2023u64);
    let timing = !flags.contains_key("no-timing");
    let json_path = flags.get("json");
    if json_path.is_some() && !timing {
        eprintln!("--json needs wall-clock numbers; drop --no-timing");
        std::process::exit(2);
    }

    let max_n = *sizes.iter().max().expect("sizes is non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    eprintln!("building {max_n}-row pool...");
    let mut matrix = EmbeddingMatrix::with_capacity(DIM, max_n);
    let mut row = vec![0f32; DIM];
    for _ in 0..max_n {
        embed_into(&sb_question_region(&mut rng), &mut row);
        matrix.push_row(&row);
    }
    let targets: Vec<String> = (0..queries_n)
        .map(|_| sb_question_region(&mut rng))
        .collect();
    let mut target_rows = vec![0f32; queries_n * DIM];
    for (t, chunk) in targets.iter().zip(target_rows.chunks_exact_mut(DIM)) {
        embed_into(t, chunk);
    }
    // int8 mirror of the full pool; a size-n prefix scan only ever touches
    // rows < n, so one quantization pass serves every sweep point.
    let quant = QuantizedMatrix::from_matrix(&matrix);

    struct Point {
        pool: usize,
        mode: &'static str,
        clusters: Option<usize>,
        probe: Option<usize>,
        recall: Option<f64>,
        train_ms: Option<f64>,
        qps: Option<f64>,
        speedup: Option<f64>,
        checksum: u64,
    }
    let mut points: Vec<Point> = Vec::new();

    for &n in &sizes {
        let k_eff = k.min(n);
        eprintln!("pool {n}: exact baseline...");
        let t0 = std::time::Instant::now();
        let exact: Vec<Vec<(f32, u32)>> = target_rows
            .chunks_exact(DIM)
            .map(|q| top_k_cosine(&matrix, q, n, k))
            .collect();
        let exact_s = t0.elapsed().as_secs_f64();
        let exact_qps = queries_n as f64 / exact_s.max(1e-9);
        let mut checksum = 0xcbf29ce484222325u64;
        for picks in &exact {
            checksum = sb_checksum(checksum, picks);
        }
        points.push(Point {
            pool: n,
            mode: "exact",
            clusters: None,
            probe: None,
            recall: None,
            train_ms: None,
            qps: timing.then_some(exact_qps),
            speedup: None,
            checksum,
        });

        eprintln!("pool {n}: training ivf index...");
        let t0 = std::time::Instant::now();
        let index = IvfIndex::train(&matrix, n, &IvfParams::default());
        let train_ms = t0.elapsed().as_secs_f64() * 1e3;

        for mode in ["ivf", "ivf-int8"] {
            let t0 = std::time::Instant::now();
            let approx: Vec<Vec<(f32, u32)>> = target_rows
                .chunks_exact(DIM)
                .map(|q| {
                    if mode == "ivf" {
                        index.search(&matrix, q, k)
                    } else {
                        index.search_quantized(&matrix, &quant, q, k)
                    }
                })
                .collect();
            let approx_s = t0.elapsed().as_secs_f64();
            let qps = queries_n as f64 / approx_s.max(1e-9);
            let mut hit = 0usize;
            let mut checksum = 0xcbf29ce484222325u64;
            for (got, want) in approx.iter().zip(&exact) {
                hit += got
                    .iter()
                    .filter(|(_, id)| want.iter().any(|&(_, w)| w == *id))
                    .count();
                checksum = sb_checksum(checksum, got);
            }
            let recall = hit as f64 / (queries_n * k_eff) as f64;
            points.push(Point {
                pool: n,
                mode,
                clusters: Some(index.n_clusters()),
                probe: Some(index.n_probe()),
                recall: Some(recall),
                train_ms: timing.then_some(train_ms),
                qps: timing.then_some(qps),
                speedup: timing.then_some(qps / exact_qps.max(1e-9)),
                checksum,
            });
        }
    }

    let opt = |v: Option<f64>, fmt: fn(f64) -> String| match v {
        Some(x) => fmt(x),
        None => "-".to_string(),
    };
    let mut md = String::new();
    let _ = writeln!(md, "# select-bench report (ANN sweep)\n");
    let _ = writeln!(md, "| param | value |");
    let _ = writeln!(md, "|---|---|");
    let _ = writeln!(md, "| pool rows | {raw_sizes} |");
    let _ = writeln!(md, "| queries | {queries_n} |");
    let _ = writeln!(md, "| k | {k} |");
    let _ = writeln!(md, "| seed | {seed} |");
    let _ = writeln!(md, "| dim | {DIM} |");
    let _ = writeln!(md);
    let _ = writeln!(md, "## ann trajectory\n");
    let _ = writeln!(
        md,
        "| pool rows | mode | clusters | probe | recall@k | train ms | q/s | speedup vs exact |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|---|---|---|");
    for p in &points {
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} | {} | {} | {} | {} |",
            p.pool,
            p.mode,
            p.clusters.map_or("-".into(), |c: usize| c.to_string()),
            p.probe.map_or("-".into(), |c: usize| c.to_string()),
            p.recall
                .map_or("1.0000 (oracle)".into(), |r| format!("{r:.4}")),
            opt(p.train_ms, |x| format!("{x:.1}")),
            opt(p.qps, |x| format!("{x:.1}")),
            opt(p.speedup, |x| format!("{x:.2}x")),
        );
    }
    let _ = writeln!(md);
    let _ = writeln!(md, "## selection checksums\n");
    let _ = writeln!(md, "| pool rows | mode | checksum |");
    let _ = writeln!(md, "|---|---|---|");
    for p in &points {
        let _ = writeln!(md, "| {} | {} | {:#018x} |", p.pool, p.mode, p.checksum);
    }
    print!("{md}");

    if let Some(path) = json_path {
        // One point per line so shell gates can grep a mode's fields
        // without a JSON parser.
        let mut json = String::new();
        let _ = writeln!(
            json,
            "{{\"queries\":{queries_n},\"k\":{k},\"seed\":{seed},\"dim\":{DIM},\"points\":["
        );
        for (i, p) in points.iter().enumerate() {
            let sep = if i + 1 == points.len() { "" } else { "," };
            let mut line = format!("{{\"pool\":{},\"mode\":\"{}\"", p.pool, p.mode);
            if let Some(r) = p.recall {
                let _ = write!(line, ",\"recall_at_k\":{r:.4}");
            }
            if let Some(t) = p.train_ms {
                let _ = write!(line, ",\"train_ms\":{t:.1}");
            }
            if let Some(q) = p.qps {
                let _ = write!(line, ",\"qps\":{q:.1}");
            }
            if let Some(s) = p.speedup {
                let _ = write!(line, ",\"speedup_vs_exact\":{s:.3}");
            }
            let _ = write!(line, ",\"checksum\":\"{:#018x}\"}}", p.checksum);
            let _ = writeln!(json, "{line}{sep}");
        }
        let _ = writeln!(json, "]}}");
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("ann sweep points written to {path}");
    }
}

fn run_experiments(flags: &HashMap<String, String>) {
    let Some(id) = flags.get("experiment") else {
        eprintln!(
            "run-experiments requires --experiment ID (one of {} / {})",
            ExperimentRunner::ALL_IDS.join(", "),
            ExperimentRunner::ABLATION_IDS.join(", ")
        );
        std::process::exit(2);
    };
    let known = ExperimentRunner::ALL_IDS.contains(&id.as_str())
        || ExperimentRunner::ABLATION_IDS.contains(&id.as_str());
    if !known {
        eprintln!(
            "unknown experiment {id}; known ids: {} / {}",
            ExperimentRunner::ALL_IDS.join(", "),
            ExperimentRunner::ABLATION_IDS.join(", ")
        );
        std::process::exit(2);
    }
    let (rec, trace_path) = setup_trace(flags);
    let scale = Scale {
        dev_cap: num_flag(flags, "dev-cap", 24usize),
        full_grid: flags.contains_key("full-grid"),
    };
    let seed = num_flag(flags, "seed", 2023u64);
    let bench = bench_from_flags(flags);
    let runner = ExperimentRunner::new(&bench, scale, seed).with_recorder(rec.clone());
    for table in runner.run_experiment(id) {
        println!("{}", table.to_markdown());
    }
    finish_trace(&rec, trace_path);
}

/// Load a trace leniently: unreadable files and traces with no intact
/// events exit 2; damaged lines (a crashed run's truncated tail, stray
/// garbage) are skipped with a warning so partial traces still render.
fn load_trace(path: &str) -> Vec<obskit::Event> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let (events, warnings) = obskit::parse_jsonl_lossy(&text);
    // A damaged trace still parses to the synthetic skipped-lines counter;
    // only a trace with no *real* events at all is unusable.
    let has_real_events = events.iter().any(|e| {
        !matches!(e, obskit::Event::Counter { name, .. } if name == obskit::SKIPPED_LINES_COUNTER)
    });
    if !has_real_events && !warnings.is_empty() {
        eprintln!("invalid trace {path}: {}", warnings[0]);
        std::process::exit(2);
    }
    for w in &warnings {
        eprintln!("warning: {path}: skipped {w}");
    }
    if !warnings.is_empty() {
        eprintln!(
            "warning: {path}: {} line(s) skipped (counted as {})",
            warnings.len(),
            obskit::SKIPPED_LINES_COUNTER
        );
    }
    events
}

fn profile_trace(positional: &[&String], flags: &HashMap<String, String>) {
    match positional {
        [] => {
            eprintln!(
                "profile requires a trace file: dail_sql_cli profile TRACE.jsonl \
                 (or two files to diff them)"
            );
            std::process::exit(2);
        }
        [path] => {
            let events = load_trace(path);
            print!("{}", obskit::Profile::from_events(&events).to_markdown());
        }
        [base_path, new_path] => {
            let base = obskit::Profile::from_events(&load_trace(base_path));
            let new = obskit::Profile::from_events(&load_trace(new_path));
            let diff = obskit::ProfileDiff::between(&base, &new);
            print!("{}", diff.to_markdown());
            if let Some(raw) = flags.get("fail-on-regress") {
                let threshold: f64 = match raw.parse() {
                    Ok(t) if t >= 0.0 => t,
                    _ => {
                        eprintln!(
                            "--fail-on-regress must be a non-negative percentage, got {raw:?}"
                        );
                        std::process::exit(2);
                    }
                };
                let regressed = diff.regressions(threshold);
                if !regressed.is_empty() {
                    for (stage, pct) in &regressed {
                        eprintln!("REGRESSION: stage {stage} self-time +{pct:.1}% (threshold {threshold}%)");
                    }
                    std::process::exit(1);
                }
                eprintln!("perf gate OK: no stage regressed beyond {threshold}%");
            }
        }
        more => {
            eprintln!("profile takes one or two trace files, got {}", more.len());
            std::process::exit(2);
        }
    }
}

fn flame_trace(positional: &[&String], flags: &HashMap<String, String>) {
    let [path] = positional else {
        eprintln!("flame requires a trace file: dail_sql_cli flame TRACE.jsonl [-o OUT.svg]");
        std::process::exit(2);
    };
    let flame = obskit::Flame::from_events(&load_trace(path));
    if flags.contains_key("folded") {
        print!("{}", flame.folded());
        return;
    }
    let svg = flame.to_svg();
    match flags.get("out") {
        Some(out) => {
            if let Err(e) = std::fs::write(out, &svg) {
                eprintln!("cannot write {out}: {e}");
                std::process::exit(2);
            }
            eprintln!(
                "flamegraph written to {out} (wall {}, {} root frames)",
                obskit::fmt_ns(flame.wall_ns()),
                flame.root.children.len()
            );
        }
        None => print!("{svg}"),
    }
}
