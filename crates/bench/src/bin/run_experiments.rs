//! Regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p bench --bin run_experiments            # all, full scale
//! cargo run --release -p bench --bin run_experiments -- --quick # reduced grid
//! cargo run --release -p bench --bin run_experiments -- e1 e8   # selected ids
//! ```
//!
//! Reports land in `results/<id>.md` and `results/<id>.tsv`, and are echoed
//! to stdout.

use eval::{ExperimentRunner, Scale};
use std::path::Path;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();
    let ids: Vec<&str> = if ids.is_empty() {
        ExperimentRunner::ALL_IDS
            .into_iter()
            .chain(ExperimentRunner::ABLATION_IDS)
            .collect()
    } else {
        ids.iter().map(String::as_str).collect()
    };

    let scale = if quick {
        Scale {
            dev_cap: 60,
            full_grid: false,
        }
    } else {
        Scale::full()
    };

    eprintln!("generating benchmark ...");
    let t0 = Instant::now();
    let bench = if quick {
        spider_gen::Benchmark::generate(spider_gen::BenchmarkConfig {
            seed: 2023,
            train_size: 400,
            dev_size: 80,
            dev_domains: 6,
            synthetic_domains: 0,
        })
    } else {
        bench::paper_benchmark()
    };
    eprintln!(
        "benchmark ready in {:.1}s: {} train / {} dev examples over {} databases",
        t0.elapsed().as_secs_f64(),
        bench.train.len(),
        bench.dev.len(),
        bench.databases.len()
    );

    let runner = ExperimentRunner::new(&bench, scale, 2023);
    let outdir = Path::new("results");
    for id in ids {
        let t = Instant::now();
        eprintln!("running {id} ...");
        for table in runner.run_experiment(id) {
            println!("{}", table.to_markdown());
            table.save(outdir).expect("write results/");
        }
        eprintln!("{id} done in {:.1}s", t.elapsed().as_secs_f64());
    }
    eprintln!("reports written to {}", outdir.display());
}
