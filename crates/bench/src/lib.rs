//! # bench — benchmark harness for the DAIL-SQL reproduction
//!
//! Hosts the `run_experiments` binary (regenerates every table/figure of the
//! paper into `results/`) and the Criterion benches (one per experiment hot
//! path plus the ablations called out in DESIGN.md).

#![warn(missing_docs)]

use spider_gen::{Benchmark, BenchmarkConfig};

/// The benchmark configuration used for paper-scale experiment runs.
pub fn paper_config() -> BenchmarkConfig {
    BenchmarkConfig {
        seed: 2023,
        train_size: 1200,
        dev_size: 300,
        dev_domains: 6,
        synthetic_domains: 0,
    }
}

/// A smaller configuration for Criterion benches (kept light so `cargo
/// bench` finishes quickly while still exercising the full pipeline).
pub fn bench_config() -> BenchmarkConfig {
    BenchmarkConfig {
        seed: 7,
        train_size: 200,
        dev_size: 40,
        dev_domains: 4,
        synthetic_domains: 0,
    }
}

/// Generate the paper-scale benchmark.
pub fn paper_benchmark() -> Benchmark {
    Benchmark::generate(paper_config())
}

/// Generate the bench-scale benchmark.
pub fn small_benchmark() -> Benchmark {
    Benchmark::generate(bench_config())
}

#[cfg(test)]
mod tests {
    #[test]
    fn configs_are_distinct_scales() {
        assert!(super::paper_config().train_size > super::bench_config().train_size);
    }
}
