//! Property test: every event survives a JSONL serialize → parse round trip.

use obskit::{parse_jsonl, parse_jsonl_line, Event};
use proptest::prelude::*;

fn name_strat() -> impl Strategy<Value = String> {
    "[a-z0-9_.%]{1,24}"
}

fn event_strat() -> BoxedStrategy<Event> {
    let span_start = (
        any::<u64>(),
        proptest::option::of(any::<u64>()),
        name_strat(),
        any::<u64>(),
    )
        .prop_map(|(id, parent, name, t_ns)| Event::SpanStart {
            id,
            parent,
            name,
            t_ns,
        });
    let span_end = (any::<u64>(), name_strat(), any::<u64>())
        .prop_map(|(id, name, dur_ns)| Event::SpanEnd { id, name, dur_ns });
    let counter =
        (name_strat(), any::<u64>()).prop_map(|(name, value)| Event::Counter { name, value });
    let gauge =
        (name_strat(), -1.0e12f64..1.0e12).prop_map(|(name, value)| Event::Gauge { name, value });
    let histogram = (
        name_strat(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec((0u32..65, any::<u64>()), 0..8),
    )
        .prop_map(|(name, count, sum, min, max, buckets)| Event::Histogram {
            name,
            count,
            sum,
            min,
            max,
            buckets,
        });
    let meta = (
        name_strat(),
        proptest::collection::vec(("[ -~]{0,16}", "[ -~]{0,16}"), 0..5),
    )
        .prop_map(|(name, fields)| Event::Meta { name, fields });
    prop_oneof![span_start, span_end, counter, gauge, histogram, meta].boxed()
}

proptest! {
    #[test]
    fn single_event_round_trips(ev in event_strat()) {
        let line = obskit::to_json_line(&ev);
        let back = parse_jsonl_line(&line).expect("parse back");
        prop_assert_eq!(ev, back);
    }

    #[test]
    fn documents_round_trip(evs in proptest::collection::vec(event_strat(), 0..16)) {
        let text: String = evs.iter().map(|e| obskit::to_json_line(e) + "\n").collect();
        let back = parse_jsonl(&text).expect("parse back");
        prop_assert_eq!(evs, back);
    }
}
