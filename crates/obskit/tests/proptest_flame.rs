//! Property tests for the flamegraph renderer and the lossy trace reader.
//!
//! Random well-nested span forests (each span's duration is its self time
//! plus the sum of its children's durations) must satisfy the renderer's
//! core conservation law: every nanosecond of wall-clock is attributed to
//! exactly one frame's self time, so folded stacks sum to the wall-clock,
//! the SVG root advertises the same width, and per-stage self times agree
//! with [`obskit::Profile`] exactly. The lossy reader must drop precisely
//! the corrupted lines, never panic.

use obskit::{canonical_jsonl, parse_jsonl_lossy, Event, Flame, FlameNode, Profile};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A span subtree: name index into a small pool (so sibling merges happen
/// often), explicit self time, and child subtrees.
#[derive(Debug, Clone)]
struct TreeSpec {
    name_idx: usize,
    self_ns: u64,
    children: Vec<TreeSpec>,
}

const NAMES: [&str; 6] = ["run", "evaluate", "item", "predict", "score", "encode"];

fn tree() -> BoxedStrategy<TreeSpec> {
    (0usize..NAMES.len(), 1u64..1_000_000)
        .prop_map(|(name_idx, self_ns)| TreeSpec {
            name_idx,
            self_ns,
            children: Vec::new(),
        })
        .prop_recursive(3, 16, 3, |inner| {
            (
                0usize..NAMES.len(),
                0u64..1_000_000,
                proptest::collection::vec(inner, 1..4),
            )
                .prop_map(|(name_idx, self_ns, children)| TreeSpec {
                    name_idx,
                    self_ns,
                    children,
                })
        })
}

fn forest() -> impl Strategy<Value = Vec<TreeSpec>> {
    proptest::collection::vec(tree(), 1..4)
}

/// Emit a well-nested event stream for one subtree; returns its duration.
fn emit(spec: &TreeSpec, parent: Option<u64>, next_id: &mut u64, out: &mut Vec<Event>) -> u64 {
    *next_id += 1;
    let id = *next_id;
    out.push(Event::SpanStart {
        id,
        parent,
        name: NAMES[spec.name_idx].to_string(),
        t_ns: 0,
    });
    let mut dur = spec.self_ns;
    for child in &spec.children {
        dur += emit(child, Some(id), next_id, out);
    }
    out.push(Event::SpanEnd {
        id,
        name: NAMES[spec.name_idx].to_string(),
        dur_ns: dur,
    });
    dur
}

fn events_for(forest: &[TreeSpec]) -> (Vec<Event>, u64) {
    let mut events = Vec::new();
    let mut next_id = 0;
    let mut wall = 0;
    for tree in forest {
        wall += emit(tree, None, &mut next_id, &mut events);
    }
    (events, wall)
}

/// Sum each frame name's self time across the whole flame tree.
fn flame_self_by_name(node: &FlameNode, out: &mut BTreeMap<String, u64>) {
    for (name, child) in &node.children {
        *out.entry(name.clone()).or_insert(0) += child.self_ns();
        flame_self_by_name(child, out);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Folded self-times and the SVG root width both equal the wall-clock.
    #[test]
    fn every_nanosecond_lands_in_exactly_one_frame(f in forest()) {
        let (events, wall) = events_for(&f);
        let flame = Flame::from_events(&events);
        prop_assert_eq!(flame.wall_ns(), wall);
        prop_assert_eq!(Profile::from_events(&events).wall_ns, wall);
        let folded_sum: u64 = flame
            .folded()
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        prop_assert_eq!(folded_sum, wall, "folded:\n{}", flame.folded());
        let root = format!("data-name=\"all\" data-ns=\"{wall}\"");
        prop_assert!(flame.to_svg().contains(&root), "missing root frame of width {wall}");
    }

    /// Per-stage self times agree between the flame tree (which keeps one
    /// node per stack) and the profile (which aggregates by name alone).
    #[test]
    fn flame_and_profile_attribute_identical_self_times(f in forest()) {
        let (events, _) = events_for(&f);
        let flame = Flame::from_events(&events);
        let profile = Profile::from_events(&events);
        let mut by_name = BTreeMap::new();
        flame_self_by_name(&flame.root, &mut by_name);
        let profile_by_name: BTreeMap<String, u64> = profile
            .stages
            .iter()
            .map(|(name, s)| (name.clone(), s.self_ns))
            .collect();
        prop_assert_eq!(by_name, profile_by_name);
    }

    /// Corrupting one line loses exactly that event: everything else still
    /// parses, and the single warning names the corrupted line.
    #[test]
    fn lossy_parse_drops_only_the_corrupted_line(f in forest(), pick in 0u64..1_000_000) {
        let (events, _) = events_for(&f);
        let text = canonical_jsonl(&events);
        let lines: Vec<&str> = text.lines().collect();
        let k = (pick as usize) % lines.len();
        let corrupted: String = lines
            .iter()
            .enumerate()
            .map(|(i, l)| {
                // Chop the victim line mid-object so it cannot be valid JSON.
                if i == k { &l[..l.len() / 2] } else { l }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let (parsed, warnings) = parse_jsonl_lossy(&corrupted);
        let mut expected = events.clone();
        expected.remove(k);
        // The lossy parser reports the skip as a trailing synthetic counter.
        expected.push(obskit::Event::Counter {
            name: obskit::SKIPPED_LINES_COUNTER.into(),
            value: 1,
        });
        // Event equality ignores timestamps, so the zeroed canonical times
        // do not get in the way of the comparison.
        prop_assert_eq!(parsed, expected);
        prop_assert_eq!(warnings.len(), 1, "{warnings:?}");
        prop_assert!(warnings[0].starts_with(&format!("line {}:", k + 1)), "{warnings:?}");
    }
}
