//! # obskit — zero-dependency tracing and metrics for the DAIL-SQL pipeline
//!
//! The paper this workspace reproduces is a *measurement* study: it compares
//! question representations, example-selection and organization strategies
//! on accuracy **and** token/call cost. This crate is the telemetry
//! substrate that turns the reproduction's aggregate numbers into
//! explanations — per-stage wall-clock, token and failure attribution.
//!
//! Pieces:
//!
//! * [`Span`] — RAII timers with parent/child nesting (thread-local stack).
//! * [`Recorder`] — thread-safe event sink; serializes traces to JSONL.
//! * Named counters, gauges and log-scale latency [`Histogram`]s.
//! * [`Profile`] — replays an event stream into a per-stage markdown
//!   breakdown table (same visual style as `eval::report::Table`).
//! * [`ProfileDiff`] — cross-run comparison of two profiles (per-stage
//!   self-times, counters, histograms) with a CI regression gate.
//! * [`Flame`] — folds a span trace into merged stacks and renders
//!   folded-stack text or a self-contained `flamegraph.svg`.
//! * [`TraceContext`] — request-scoped context (request id, parent span
//!   and a deterministic head-sampling decision) for explicit
//!   cross-thread span parenting; one connected tree per served request.
//! * [`expo`] — Prometheus text exposition of the counters/gauges/log₂
//!   histograms (and labelled [`tsdb`] series with `# exemplar` lines),
//!   plus a validating mini-parser for tests.
//! * [`tsdb`] — windowed time series: labelled series with a hard
//!   cardinality bound, fixed-step ring-buffer windows (rates, windowed
//!   quantiles), and per-window exemplars linking back to sampled
//!   request traces. All on the virtual clock.
//! * A process-global recorder ([`set_global`]/[`global`]) so deep layers
//!   (`simllm`, `storage`, `promptkit`, …) can emit metrics without
//!   threading a handle through every signature. The disabled path is a
//!   single relaxed atomic load ([`enabled`]).
//!
//! Determinism: event *ordering* is stable for a fixed workload (workers
//! buffer into local recorders that are absorbed in item order), and
//! [`Event`] equality excludes timestamps, so traces can be compared in
//! tests.

#![warn(missing_docs)]

mod event;
pub mod expo;
mod flame;
mod hist;
mod jsonl;
mod profile;
mod recorder;
pub mod trace;
pub mod tsdb;

pub use event::Event;
pub use flame::{Flame, FlameNode};
pub use hist::{bucket_high, bucket_index, bucket_low, Histogram, BUCKETS};
pub use jsonl::{
    canonical_jsonl, parse_jsonl, parse_jsonl_line, parse_jsonl_lossy, to_json_line,
    SKIPPED_LINES_COUNTER,
};
pub use profile::{fmt_ns, fmt_ns_delta, Profile, ProfileDiff, StageDelta, StageStats};
pub use recorder::{MetricsSnapshot, Recorder, Span};
pub use trace::TraceContext;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static GLOBAL: OnceLock<Recorder> = OnceLock::new();
static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);

/// Install `recorder` as the process-global recorder.
///
/// Returns `false` (and leaves the existing recorder in place) if a global
/// recorder was already installed. Deep pipeline layers reach this recorder
/// through [`global`]; they should gate any work on [`enabled`] first.
pub fn set_global(recorder: Recorder) -> bool {
    let enabled = recorder.is_enabled();
    let installed = GLOBAL.set(recorder).is_ok();
    if installed && enabled {
        GLOBAL_ENABLED.store(true, Ordering::Relaxed);
    }
    installed
}

/// The process-global recorder (a disabled no-op recorder if none was set).
pub fn global() -> &'static Recorder {
    static DISABLED: OnceLock<Recorder> = OnceLock::new();
    GLOBAL
        .get()
        .unwrap_or_else(|| DISABLED.get_or_init(Recorder::disabled))
}

/// Fast check: is an enabled global recorder installed?
///
/// One relaxed atomic load — cheap enough for the hottest loops.
#[inline]
pub fn enabled() -> bool {
    GLOBAL_ENABLED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_defaults_to_disabled() {
        // Note: other tests in this binary may install a global recorder;
        // this test only asserts the *fallback* is a no-op sink.
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.add_counter("x", 1);
        assert!(r.events().is_empty());
    }
}
