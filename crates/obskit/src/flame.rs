//! Flamegraph rendering: fold a span trace into merged stacks and draw a
//! self-contained SVG.
//!
//! A trace's spans form a forest (parent ids + durations). [`Flame`] merges
//! spans with the same stack of names into *frames* and hangs the whole
//! forest under a synthetic `all` root, so the root frame's width is the
//! trace wall-clock. Widths obey the same accounting invariant as
//! [`crate::Profile`]: a frame's width is its self-time plus the widths of
//! its children, so the self-times of all frames sum exactly to the root
//! width. When a child's measured duration overflows its parent's (clock
//! jitter on very short spans), the parent's width is stretched to cover
//! its children rather than letting widths go negative.
//!
//! Two renderers:
//!
//! * [`Flame::folded`] — classic folded-stack text (`a;b;c <self_ns>`, one
//!   line per frame, sorted), consumable by external flamegraph tooling and
//!   easy to diff in golden tests.
//! * [`Flame::to_svg`] — a dependency-free icicle SVG with hover titles.
//!   Every `<rect>` carries `data-name` and `data-ns` attributes so tests
//!   (and scripts) can check widths without a pixel renderer.

use crate::event::Event;
use crate::profile::fmt_ns;
use std::collections::BTreeMap;
use std::fmt::Write as _;

// SVG layout constants.
const CHART_W: f64 = 1200.0;
const PAD: f64 = 10.0;
const TITLE_H: f64 = 24.0;
const FRAME_H: f64 = 17.0;
const MIN_PX: f64 = 0.1;

/// One merged frame: every span sharing the same stack of names.
#[derive(Debug, Clone, Default)]
pub struct FlameNode {
    /// Sum of the durations of the spans merged into this frame, ns.
    pub total_ns: u64,
    /// Frame width: `max(total_ns, sum of child widths)`, ns.
    pub width_ns: u64,
    /// Number of spans merged into this frame.
    pub count: u64,
    /// Child frames, keyed by stage name.
    pub children: BTreeMap<String, FlameNode>,
}

impl FlameNode {
    /// Width not covered by children — the frame's self-time.
    pub fn self_ns(&self) -> u64 {
        let kids: u64 = self.children.values().map(|c| c.width_ns).sum();
        self.width_ns.saturating_sub(kids)
    }

    fn finalize(&mut self) {
        let mut kids = 0u64;
        for child in self.children.values_mut() {
            child.finalize();
            kids += child.width_ns;
        }
        self.width_ns = self.total_ns.max(kids);
    }

    fn depth(&self) -> usize {
        1 + self
            .children
            .values()
            .map(FlameNode::depth)
            .max()
            .unwrap_or(0)
    }
}

/// A merged flame tree built from a span trace.
#[derive(Debug, Clone, Default)]
pub struct Flame {
    /// Synthetic root (`all`) covering every root span in the trace.
    pub root: FlameNode,
}

struct SpanRec {
    name: String,
    parent: Option<u64>,
    dur_ns: u64,
    children: Vec<u64>,
}

impl Flame {
    /// Build a flame tree from a trace. Non-span events are ignored;
    /// unclosed spans are dropped (matching [`crate::Profile`]); spans whose
    /// parent never closed become roots.
    pub fn from_events(events: &[Event]) -> Flame {
        // id → (name, parent) for open spans.
        let mut open: BTreeMap<u64, (String, Option<u64>)> = BTreeMap::new();
        // Closed spans, insertion keyed by id; `order` keeps close order so
        // root discovery below is deterministic for duplicate ids.
        let mut closed: BTreeMap<u64, SpanRec> = BTreeMap::new();
        for ev in events {
            match ev {
                Event::SpanStart {
                    id, parent, name, ..
                } => {
                    open.insert(*id, (name.clone(), *parent));
                }
                Event::SpanEnd { id, name, dur_ns } => {
                    let (name, parent) = open.remove(id).unwrap_or_else(|| (name.clone(), None));
                    closed.insert(
                        *id,
                        SpanRec {
                            name,
                            parent,
                            dur_ns: *dur_ns,
                            children: Vec::new(),
                        },
                    );
                }
                _ => {}
            }
        }
        // Link children to parents; a span with no closed parent is a root.
        let ids: Vec<u64> = closed.keys().copied().collect();
        let mut roots: Vec<u64> = Vec::new();
        for id in ids {
            let parent = closed[&id].parent.filter(|p| *p != id);
            match parent.filter(|p| closed.contains_key(p)) {
                Some(p) => closed.get_mut(&p).expect("checked above").children.push(id),
                None => roots.push(id),
            }
        }
        let mut root = FlameNode::default();
        absorb(&roots, &closed, &mut root.children);
        root.finalize();
        Flame { root }
    }

    /// Root frame width = trace wall-clock, ns.
    pub fn wall_ns(&self) -> u64 {
        self.root.width_ns
    }

    /// Folded-stack text: one `stack;of;names <self_ns>` line per frame
    /// with nonzero self-time (childless frames are kept even at zero so
    /// the tree shape survives), sorted by stack for determinism. The
    /// synthetic `all` root is omitted, as external flamegraph tools add
    /// their own.
    pub fn folded(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        let mut stack: Vec<&str> = Vec::new();
        fn walk<'a>(node: &'a FlameNode, stack: &mut Vec<&'a str>, lines: &mut Vec<String>) {
            for (name, child) in &node.children {
                stack.push(name);
                let self_ns = child.self_ns();
                if self_ns > 0 || child.children.is_empty() {
                    lines.push(format!("{} {}", stack.join(";"), self_ns));
                }
                walk(child, stack, lines);
                stack.pop();
            }
        }
        walk(&self.root, &mut stack, &mut lines);
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Render a self-contained icicle SVG (root on top). Frames narrower
    /// than a tenth of a pixel are culled along with their subtrees.
    pub fn to_svg(&self) -> String {
        let wall = self.wall_ns().max(1);
        let depth = self.root.depth();
        let height = PAD * 2.0 + TITLE_H + depth as f64 * FRAME_H;
        let inner_w = CHART_W - PAD * 2.0;
        let px_per_ns = inner_w / wall as f64;

        let mut s = String::with_capacity(4096);
        let _ = writeln!(
            s,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{CHART_W}\" height=\"{height}\" \
             viewBox=\"0 0 {CHART_W} {height}\" font-family=\"monospace\" font-size=\"11\">"
        );
        s.push_str(
            "<style>rect{stroke:#ffffff;stroke-width:0.4}text{fill:#1a1a1a}\
             .bg{fill:#fdf6ec;stroke:none}.title{font-size:13px;font-weight:bold}</style>\n",
        );
        let _ = writeln!(
            s,
            "<rect class=\"bg\" width=\"{CHART_W}\" height=\"{height}\"/>"
        );
        let _ = writeln!(
            s,
            "<text class=\"title\" x=\"{PAD}\" y=\"{}\">obskit flamegraph — wall {} over {} root frame(s)</text>",
            PAD + 14.0,
            fmt_ns(self.wall_ns()),
            self.root.children.len()
        );

        struct Ctx {
            px_per_ns: f64,
            wall: u64,
            top: f64,
        }
        fn frame(s: &mut String, ctx: &Ctx, name: &str, node: &FlameNode, x_ns: u64, level: usize) {
            let w_px = node.width_ns as f64 * ctx.px_per_ns;
            if w_px < MIN_PX {
                return;
            }
            let x = PAD + x_ns as f64 * ctx.px_per_ns;
            let y = ctx.top + level as f64 * FRAME_H;
            let pct = 100.0 * node.width_ns as f64 / ctx.wall as f64;
            let esc = xml_escape(name);
            let _ = writeln!(s, "<g>");
            let _ = writeln!(
                s,
                "<title>{esc} ({}, {pct:.1}% of wall, {} span(s))</title>",
                fmt_ns(node.width_ns),
                node.count.max(1)
            );
            let _ = writeln!(
                s,
                "<rect x=\"{x:.2}\" y=\"{y:.1}\" width=\"{w_px:.2}\" height=\"{}\" rx=\"1\" \
                 fill=\"{}\" data-name=\"{esc}\" data-ns=\"{}\"/>",
                FRAME_H - 1.0,
                color_for(name),
                node.width_ns
            );
            if w_px >= name.len() as f64 * 6.8 + 6.0 {
                let _ = writeln!(
                    s,
                    "<text x=\"{:.2}\" y=\"{:.1}\">{esc}</text>",
                    x + 3.0,
                    y + 12.0
                );
            }
            let _ = writeln!(s, "</g>");
            let mut child_x = x_ns;
            for (child_name, child) in &node.children {
                frame(s, ctx, child_name, child, child_x, level + 1);
                child_x += child.width_ns;
            }
        }
        let ctx = Ctx {
            px_per_ns,
            wall,
            top: PAD + TITLE_H,
        };
        frame(&mut s, &ctx, "all", &self.root, 0, 0);
        s.push_str("</svg>\n");
        s
    }
}

fn absorb(ids: &[u64], closed: &BTreeMap<u64, SpanRec>, out: &mut BTreeMap<String, FlameNode>) {
    for id in ids {
        let rec = &closed[id];
        let node = out.entry(rec.name.clone()).or_default();
        node.total_ns += rec.dur_ns;
        node.count += 1;
        absorb(&rec.children, closed, &mut node.children);
    }
}

/// Escape a frame name for use in XML attribute/text positions.
fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Deterministic warm fill color for a frame name (FNV-1a over the bytes,
/// folded into a small hue/lightness spread around flame orange).
fn color_for(name: &str) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    let hue = 14 + (h % 38); // 14..52: red-orange to amber
    let light = 55 + ((h >> 8) % 14); // 55..69%
    format!("hsl({hue}, 86%, {light}%)")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>, name: &str, dur: u64) -> [Event; 2] {
        [
            Event::SpanStart {
                id,
                parent,
                name: name.into(),
                t_ns: 0,
            },
            Event::SpanEnd {
                id,
                name: name.into(),
                dur_ns: dur,
            },
        ]
    }

    fn nested_trace() -> Vec<Event> {
        // run(100) -> predict(60) -> decode(45); run -> score(10)
        vec![
            Event::SpanStart {
                id: 1,
                parent: None,
                name: "run".into(),
                t_ns: 0,
            },
            Event::SpanStart {
                id: 2,
                parent: Some(1),
                name: "predict".into(),
                t_ns: 1,
            },
            Event::SpanStart {
                id: 3,
                parent: Some(2),
                name: "decode".into(),
                t_ns: 2,
            },
            Event::SpanEnd {
                id: 3,
                name: "decode".into(),
                dur_ns: 45,
            },
            Event::SpanEnd {
                id: 2,
                name: "predict".into(),
                dur_ns: 60,
            },
            Event::SpanStart {
                id: 4,
                parent: Some(1),
                name: "score".into(),
                t_ns: 70,
            },
            Event::SpanEnd {
                id: 4,
                name: "score".into(),
                dur_ns: 10,
            },
            Event::SpanEnd {
                id: 1,
                name: "run".into(),
                dur_ns: 100,
            },
        ]
    }

    #[test]
    fn folded_self_times_sum_to_wall() {
        let f = Flame::from_events(&nested_trace());
        assert_eq!(f.wall_ns(), 100);
        let folded = f.folded();
        let total: u64 = folded
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, 100, "{folded}");
        assert!(folded.contains("run;predict;decode 45"), "{folded}");
        assert!(folded.contains("run;predict 15"), "{folded}");
        assert!(folded.contains("run;score 10"), "{folded}");
        assert!(folded.contains("run 30"), "{folded}");
    }

    #[test]
    fn sibling_spans_with_same_name_merge() {
        let mut ev: Vec<Event> = Vec::new();
        ev.extend(span(1, None, "run", 100));
        // Two items under nothing (roots) merge into one frame.
        ev.extend(span(2, None, "run", 50));
        let f = Flame::from_events(&ev);
        assert_eq!(f.root.children.len(), 1);
        assert_eq!(f.root.children["run"].total_ns, 150);
        assert_eq!(f.root.children["run"].count, 2);
        assert_eq!(f.wall_ns(), 150);
    }

    #[test]
    fn child_overflow_stretches_parent_width() {
        // Parent measured 10ns but child measured 25ns: the parent's frame
        // is widened so widths still sum and nothing goes negative.
        let ev = vec![
            Event::SpanStart {
                id: 1,
                parent: None,
                name: "p".into(),
                t_ns: 0,
            },
            Event::SpanStart {
                id: 2,
                parent: Some(1),
                name: "c".into(),
                t_ns: 1,
            },
            Event::SpanEnd {
                id: 2,
                name: "c".into(),
                dur_ns: 25,
            },
            Event::SpanEnd {
                id: 1,
                name: "p".into(),
                dur_ns: 10,
            },
        ];
        let f = Flame::from_events(&ev);
        assert_eq!(f.wall_ns(), 25);
        assert_eq!(f.root.children["p"].width_ns, 25);
        assert_eq!(f.root.children["p"].self_ns(), 0);
    }

    #[test]
    fn unclosed_spans_and_metrics_are_ignored() {
        let mut ev = nested_trace();
        ev.push(Event::SpanStart {
            id: 99,
            parent: None,
            name: "zombie".into(),
            t_ns: 0,
        });
        ev.push(Event::Counter {
            name: "c".into(),
            value: 1,
        });
        let f = Flame::from_events(&ev);
        assert!(!f.folded().contains("zombie"));
        assert_eq!(f.wall_ns(), 100);
    }

    #[test]
    fn orphaned_child_becomes_root() {
        // Parent id 7 never closes; the child still renders as a root frame.
        let ev = vec![
            Event::SpanStart {
                id: 2,
                parent: Some(7),
                name: "lost".into(),
                t_ns: 0,
            },
            Event::SpanEnd {
                id: 2,
                name: "lost".into(),
                dur_ns: 5,
            },
        ];
        let f = Flame::from_events(&ev);
        assert_eq!(f.folded(), "lost 5\n");
        assert_eq!(f.wall_ns(), 5);
    }

    #[test]
    fn svg_root_frame_width_equals_wall() {
        let f = Flame::from_events(&nested_trace());
        let svg = f.to_svg();
        assert!(svg.starts_with("<svg"), "{svg}");
        assert!(svg.trim_end().ends_with("</svg>"));
        let root_attr = format!("data-name=\"all\" data-ns=\"{}\"", f.wall_ns());
        assert!(svg.contains(&root_attr), "{svg}");
        assert!(svg.contains("data-name=\"decode\" data-ns=\"45\""), "{svg}");
    }

    #[test]
    fn svg_escapes_names() {
        let mut ev: Vec<Event> = Vec::new();
        ev.extend(span(1, None, "a<b>&\"c\"", 10));
        let svg = Flame::from_events(&ev).to_svg();
        assert!(svg.contains("a&lt;b&gt;&amp;&quot;c&quot;"), "{svg}");
        assert!(!svg.contains("a<b>"), "{svg}");
    }

    #[test]
    fn empty_trace_renders_empty() {
        let f = Flame::from_events(&[]);
        assert_eq!(f.folded(), "");
        assert_eq!(f.wall_ns(), 0);
        assert!(f.to_svg().contains("</svg>"));
    }

    #[test]
    fn colors_are_deterministic_and_warm() {
        assert_eq!(color_for("predict"), color_for("predict"));
        assert_ne!(color_for("predict"), color_for("score"));
        assert!(color_for("x").starts_with("hsl("));
    }
}
