//! Trace events.
//!
//! Equality on [`Event`] deliberately excludes timestamps and durations so
//! traces of the same workload compare equal across runs and machines —
//! the property the deterministic-trace tests rely on.

/// One element of a trace.
#[derive(Debug, Clone)]
pub enum Event {
    /// A span opened.
    SpanStart {
        /// Span id, unique within one recorder.
        id: u64,
        /// Enclosing span, if any.
        parent: Option<u64>,
        /// Stage name (e.g. `"predict"`).
        name: String,
        /// Nanoseconds since the recorder's epoch. Excluded from equality.
        t_ns: u64,
    },
    /// A span closed.
    SpanEnd {
        /// Span id matching the corresponding [`Event::SpanStart`].
        id: u64,
        /// Stage name, repeated for streaming consumers.
        name: String,
        /// Span duration in nanoseconds. Excluded from equality.
        dur_ns: u64,
    },
    /// Final value of a named monotonic counter.
    Counter {
        /// Counter name (e.g. `"storage.rows_scanned"`).
        name: String,
        /// Accumulated value.
        value: u64,
    },
    /// Final value of a named gauge.
    Gauge {
        /// Gauge name.
        name: String,
        /// Last value set.
        value: f64,
    },
    /// Summary of a named log-scale histogram.
    Histogram {
        /// Histogram name (e.g. `"simllm.decode_ns"`).
        name: String,
        /// Observation count.
        count: u64,
        /// Sum of observations.
        sum: u64,
        /// Minimum observation.
        min: u64,
        /// Maximum observation.
        max: u64,
        /// Occupied power-of-two buckets as `(index, count)` pairs.
        buckets: Vec<(u32, u64)>,
    },
    /// Free-form key/value annotation (e.g. a run manifest).
    Meta {
        /// Annotation name (e.g. `"experiment.e1"`).
        name: String,
        /// Ordered key/value pairs.
        fields: Vec<(String, String)>,
    },
}

impl Event {
    /// The event's name field, whatever its kind.
    pub fn name(&self) -> &str {
        match self {
            Event::SpanStart { name, .. }
            | Event::SpanEnd { name, .. }
            | Event::Counter { name, .. }
            | Event::Gauge { name, .. }
            | Event::Histogram { name, .. }
            | Event::Meta { name, .. } => name,
        }
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        use Event::*;
        match (self, other) {
            // Timestamps and durations are excluded on span events.
            (
                SpanStart {
                    id: a,
                    parent: pa,
                    name: na,
                    ..
                },
                SpanStart {
                    id: b,
                    parent: pb,
                    name: nb,
                    ..
                },
            ) => a == b && pa == pb && na == nb,
            (
                SpanEnd {
                    id: a, name: na, ..
                },
                SpanEnd {
                    id: b, name: nb, ..
                },
            ) => a == b && na == nb,
            (
                Counter {
                    name: na,
                    value: va,
                },
                Counter {
                    name: nb,
                    value: vb,
                },
            ) => na == nb && va == vb,
            (
                Gauge {
                    name: na,
                    value: va,
                },
                Gauge {
                    name: nb,
                    value: vb,
                },
            ) => na == nb && va.to_bits() == vb.to_bits(),
            (
                Histogram {
                    name: na,
                    count: ca,
                    sum: sa,
                    min: mina,
                    max: maxa,
                    buckets: ba,
                },
                Histogram {
                    name: nb,
                    count: cb,
                    sum: sb,
                    min: minb,
                    max: maxb,
                    buckets: bb,
                },
            ) => na == nb && ca == cb && sa == sb && mina == minb && maxa == maxb && ba == bb,
            (
                Meta {
                    name: na,
                    fields: fa,
                },
                Meta {
                    name: nb,
                    fields: fb,
                },
            ) => na == nb && fa == fb,
            _ => false,
        }
    }
}

impl Eq for Event {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_ignores_timestamps() {
        let a = Event::SpanStart {
            id: 1,
            parent: None,
            name: "x".into(),
            t_ns: 10,
        };
        let b = Event::SpanStart {
            id: 1,
            parent: None,
            name: "x".into(),
            t_ns: 99,
        };
        assert_eq!(a, b);
        let a = Event::SpanEnd {
            id: 1,
            name: "x".into(),
            dur_ns: 5,
        };
        let b = Event::SpanEnd {
            id: 1,
            name: "x".into(),
            dur_ns: 7_000,
        };
        assert_eq!(a, b);
    }

    #[test]
    fn equality_respects_identity_fields() {
        let a = Event::SpanStart {
            id: 1,
            parent: None,
            name: "x".into(),
            t_ns: 0,
        };
        let b = Event::SpanStart {
            id: 2,
            parent: None,
            name: "x".into(),
            t_ns: 0,
        };
        assert_ne!(a, b);
        let c = Event::Counter {
            name: "n".into(),
            value: 1,
        };
        let d = Event::Counter {
            name: "n".into(),
            value: 2,
        };
        assert_ne!(c, d);
        assert_ne!(a, c);
    }
}
