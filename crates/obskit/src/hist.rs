//! Log-scale (power-of-two bucket) histogram for latency-style values.

/// Number of buckets: one per possible `bit_width` of a `u64`, plus one
/// for zero. Bucket `i` (for `i >= 1`) covers `[2^(i-1), 2^i - 1]`.
pub const BUCKETS: usize = 65;

/// A fixed-size log₂ histogram over `u64` observations.
///
/// Bucketing is by bit width: `0` lands in bucket 0, `1` in bucket 1,
/// `2..=3` in bucket 2, …, `u64::MAX` in bucket 64. This gives ~2× relative
/// resolution over the full range with no allocation on the record path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index of a value: its bit width.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_low(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

/// Inclusive upper bound of bucket `i`.
pub fn bucket_high(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Minimum observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Maximum observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`), with *bucket-upper-bound*
    /// semantics: the estimate is the inclusive upper bound of the log₂
    /// bucket containing the `q`-th observation (nearest-rank, 1-based
    /// `ceil(q·count)`), clamped into `[min, max]` so it never leaves the
    /// observed range. The estimate therefore never under-reports: the
    /// true quantile is ≤ the returned value, and within 2× of it (one
    /// power-of-two bucket). Exact when every observation in the target
    /// bucket equals the clamp bound (e.g. single-value histograms).
    ///
    /// Edge semantics (pinned by unit tests): returns 0 when empty,
    /// whatever `q`; `q` outside `[0, 1]` is clamped; `q = 0.0` reports
    /// the minimum's bucket (rank 1) and `q = 1.0` the maximum's; a NaN
    /// `q` is rejected — it behaves as `q = 0.0` instead of poisoning
    /// the rank arithmetic.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q };
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_high(i).min(self.max).max(self.min());
            }
        }
        self.max
    }

    /// Median estimate: `quantile(0.50)` (bucket-upper-bound semantics).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate: `quantile(0.90)`.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate: `quantile(0.99)`.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Occupied buckets as `(index, count)` pairs, ascending.
    pub fn occupied(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i as u32, n))
            .collect()
    }

    /// Rebuild a histogram from an `(index, count)` list plus summary
    /// stats (the inverse of [`Histogram::occupied`], used by trace replay).
    pub fn from_parts(count: u64, sum: u64, min: u64, max: u64, occupied: &[(u32, u64)]) -> Self {
        let mut h = Histogram {
            buckets: [0; BUCKETS],
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max,
        };
        for &(i, n) in occupied {
            h.buckets[(i as usize).min(BUCKETS - 1)] += n;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lands_in_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.occupied(), vec![(0, 1)]);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn u64_max_lands_in_top_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.occupied(), vec![(64, 1)]);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn bucket_boundaries_are_exact() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_low(i)), i);
            assert_eq!(bucket_index(bucket_high(i)), i);
        }
    }

    #[test]
    fn saturating_sum_never_wraps() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn stats_and_quantiles_track_data() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1100);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 220.0).abs() < 1e-9);
        // Median falls in the bucket holding 20..=30.
        let q50 = h.quantile(0.5);
        assert!((16..=63).contains(&q50), "{q50}");
    }

    #[test]
    fn quantiles_at_bucket_boundaries() {
        // All mass on the boundary values themselves: estimates are exact
        // because of the [min, max] clamp.
        for v in [0u64, 1, 2, 4, 1 << 32, u64::MAX] {
            let mut h = Histogram::new();
            h.record(v);
            assert_eq!(h.p50(), v, "single value {v}");
            assert_eq!(h.p90(), v);
            assert_eq!(h.p99(), v);
        }
        // Two buckets: p50 reports the lower bucket's upper bound, p99
        // the upper bucket's (clamped to max).
        let mut h = Histogram::new();
        h.record(4);
        h.record(1024);
        assert_eq!(h.p50(), 7); // bucket [4, 7], upper bound 7
        assert_eq!(h.p99(), 1024); // bucket [1024, 2047] clamped to max
                                   // Upper-bound semantics: estimate never under-reports the true
                                   // quantile and stays within one power-of-two bucket of it.
        let mut h = Histogram::new();
        for v in [3u64, 5, 9, 17, 33] {
            h.record(v);
        }
        assert_eq!(h.p50(), 15); // rank 3 → 9, bucket [8, 15]
        assert!(h.p50() >= 9 && h.p50() < 2 * 9);
        assert_eq!(h.p99(), 33); // rank 5 → 33, bucket [32, 63] clamped to max
    }

    #[test]
    fn quantile_rank_edges() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.quantile(0.0), 0); // rank clamps to 1 → first bucket
        assert_eq!(h.p50(), 0);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.p99(), u64::MAX);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [1u64, 5, 9] {
            a.record(v);
            all.record(v);
        }
        for v in [0u64, 1 << 40] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn round_trips_through_parts() {
        let mut h = Histogram::new();
        for v in [0u64, 3, 700, u64::MAX] {
            h.record(v);
        }
        let back = Histogram::from_parts(h.count(), h.sum(), h.min(), h.max(), &h.occupied());
        assert_eq!(h, back);
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
        assert!(h.occupied().is_empty());
    }

    #[test]
    fn empty_histogram_quantile_is_zero_for_every_q() {
        let h = Histogram::new();
        for q in [f64::NAN, -1.0, 0.0, 0.5, 1.0, 2.0] {
            assert_eq!(h.quantile(q), 0, "q = {q}");
        }
    }

    #[test]
    fn single_bucket_quantile_is_exact_for_every_q() {
        // All observations share one bucket and equal the clamp bound, so
        // every quantile — including out-of-range and NaN q — is exact.
        let mut h = Histogram::new();
        for _ in 0..3 {
            h.record(42);
        }
        for q in [0.0, 0.5, 0.99, 1.0, -3.0, 7.0, f64::NAN] {
            assert_eq!(h.quantile(q), 42, "q = {q}");
        }
    }

    #[test]
    fn out_of_range_q_clamps_to_min_and_max() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(1 << 20);
        assert_eq!(h.quantile(-0.5), h.quantile(0.0));
        assert_eq!(h.quantile(1.5), h.quantile(1.0));
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 1 << 20);
    }

    #[test]
    fn nan_q_is_rejected_as_rank_one() {
        let mut h = Histogram::new();
        h.record(2);
        h.record(4096);
        let got = h.quantile(f64::NAN);
        assert_eq!(got, h.quantile(0.0));
        assert_eq!(got, 3); // upper bound of bucket [2, 3] holding the minimum
    }
}
