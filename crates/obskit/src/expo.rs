//! Prometheus text exposition for obskit metrics.
//!
//! Renders a [`MetricsSnapshot`] (or the metric-summary events of a
//! recorded trace) in the Prometheus text exposition format: one
//! `# TYPE` line per family, counter/gauge samples, and
//! `_bucket`/`_sum`/`_count` series derived from the log₂
//! [`Histogram`]s. Bucket upper bounds are the histogram's power-of-two
//! bucket bounds, emitted cumulatively and terminated with `+Inf`, as
//! the format requires.
//!
//! Output is deterministic: families render in sorted name order (the
//! snapshot maps are `BTreeMap`s) and label sets are written in a fixed
//! order, so expositions of the same metrics are byte-identical — which
//! is what lets `scripts/check.sh` golden-gate them.
//!
//! Traces that carry windowed [`crate::tsdb`] series additionally render
//! OpenMetrics-style *labelled* families — one sample per label set for
//! counters, per-label-set `_bucket`/`_sum`/`_count` series for
//! histograms — plus `# exemplar` comment lines tying a histogram label
//! set to the request id of its largest sampled observation.
//!
//! Label values are escaped per the Prometheus text format (`\\`, `\"`,
//! `\n`); see [`escape_label_value`].
//!
//! [`parse`] is a small validating parser for the same format, used by
//! tests to prove CLI output is well-formed (names, label syntax and
//! escapes, family/sample agreement, per-label-set cumulative
//! non-decreasing buckets ending in `+Inf`, `_count` == `+Inf` bucket,
//! well-formed exemplar lines).

use crate::event::Event;
use crate::hist::{bucket_high, Histogram};
use crate::recorder::MetricsSnapshot;
use crate::tsdb::Tsdb;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Sanitize a metric name into the Prometheus charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): dots and other invalid characters
/// become underscores, and a leading digit is prefixed with one.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a label value per the Prometheus text format: backslash,
/// double-quote and newline become `\\`, `\"` and `\n`. Everything else
/// passes through unchanged.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Format a sample value: integers without a fractional part, floats in
/// Rust's shortest round-trip form, non-finite values in Prometheus
/// spelling (`NaN`, `+Inf`, `-Inf`).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if v.fract() == 0.0 && v.abs() < 9.007_199_254_740_992e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn render_histogram(out: &mut String, name: &str, h: &Histogram) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (i, n) in h.occupied() {
        cumulative += n;
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"{}\"}} {cumulative}",
            bucket_high(i as usize)
        );
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
    let _ = writeln!(out, "{name}_sum {}", h.sum());
    let _ = writeln!(out, "{name}_count {}", h.count());
}

/// Render a metrics snapshot in Prometheus text exposition format.
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let name = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snap.gauges {
        let name = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", fmt_value(*value));
    }
    for (name, h) in &snap.histograms {
        render_histogram(&mut out, &sanitize_name(name), h);
    }
    out
}

/// `{k="v",...}` suffix for a rendered label set (empty when unlabelled).
fn labels_suffix(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", crate::tsdb::render_label_set(labels))
    }
}

/// Render the windowed series of a [`Tsdb`] as labelled OpenMetrics-style
/// families: one sample per label set for counter metrics, per-label-set
/// `_bucket`/`_sum`/`_count` series (merged across retained windows) for
/// histogram metrics, plus a `# exemplar` line per histogram label set
/// carrying the request id of its largest sampled observation. `used`
/// holds already-declared family names; colliding metric names get `_`
/// appended until unique, so the exposition never redeclares a family.
fn render_tsdb(out: &mut String, db: &Tsdb, used: &mut BTreeMap<String, ()>) {
    let mut by_metric: BTreeMap<&str, Vec<&crate::tsdb::Series>> = BTreeMap::new();
    for s in db.series() {
        by_metric.entry(s.metric()).or_default().push(s);
    }
    for (metric, group) in by_metric {
        let mut fam = sanitize_name(metric);
        while used.insert(fam.clone(), ()).is_some() {
            fam.push('_');
        }
        let is_hist = group[0].is_hist();
        if is_hist {
            let _ = writeln!(out, "# TYPE {fam} histogram");
        } else {
            let _ = writeln!(out, "# TYPE {fam} counter");
        }
        for s in group {
            if s.is_hist() != is_hist {
                continue; // a metric never mixes kinds via the tsdb API
            }
            if !is_hist {
                let _ = writeln!(out, "{fam}{} {}", labels_suffix(s.labels()), s.total());
                continue;
            }
            let mut h = Histogram::new();
            for w in s.windows() {
                if let Some(wh) = w.hist {
                    h.merge(wh);
                }
            }
            let ls = crate::tsdb::render_label_set(s.labels());
            let sep = if ls.is_empty() { "" } else { "," };
            let mut cumulative = 0u64;
            for (i, n) in h.occupied() {
                cumulative += n;
                let _ = writeln!(
                    out,
                    "{fam}_bucket{{{ls}{sep}le=\"{}\"}} {cumulative}",
                    bucket_high(i as usize)
                );
            }
            let _ = writeln!(out, "{fam}_bucket{{{ls}{sep}le=\"+Inf\"}} {}", h.count());
            if let Some(e) = s.best_exemplar() {
                let _ = writeln!(
                    out,
                    "# exemplar {fam}{{{ls}{sep}request_id=\"{}\"}} {}",
                    e.request_id, e.value
                );
            }
            let _ = writeln!(out, "{fam}_sum{} {}", labels_suffix(s.labels()), h.sum());
            let _ = writeln!(
                out,
                "{fam}_count{} {}",
                labels_suffix(s.labels()),
                h.count()
            );
        }
    }
}

/// Fold the metric-summary events of a trace into a snapshot and render
/// it. Counter events with the same name are summed, gauges keep the
/// last value, histograms are merged. Span and meta events are ignored —
/// except `tsdb.*` meta events, whose windowed series render as labelled
/// families (with `# exemplar` lines) after the plain ones.
pub fn render_events(events: &[Event]) -> String {
    let mut snap = MetricsSnapshot::default();
    for ev in events {
        match ev {
            Event::Counter { name, value } => {
                *snap.counters.entry(name.clone()).or_insert(0) += value;
            }
            Event::Gauge { name, value } => {
                snap.gauges.insert(name.clone(), *value);
            }
            Event::Histogram {
                name,
                count,
                sum,
                min,
                max,
                buckets,
            } => {
                let h = Histogram::from_parts(*count, *sum, *min, *max, buckets);
                snap.histograms.entry(name.clone()).or_default().merge(&h);
            }
            _ => {}
        }
    }
    let mut out = render(&snap);
    let db = Tsdb::from_events(events);
    if db.series_count() > 0 {
        let mut used: BTreeMap<String, ()> = BTreeMap::new();
        for name in snap
            .counters
            .keys()
            .chain(snap.gauges.keys())
            .chain(snap.histograms.keys())
        {
            used.insert(sanitize_name(name), ());
        }
        render_tsdb(&mut out, &db, &mut used);
    }
    out
}

/// Kind of a metric family, from its `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyKind {
    /// Monotonic counter.
    Counter,
    /// Point-in-time gauge.
    Gauge,
    /// Cumulative-bucket histogram.
    Histogram,
}

/// One sample line of an exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full sample name (may carry a `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// A parsed metric family: its `# TYPE` declaration plus samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    /// Family name.
    pub name: String,
    /// Declared kind.
    pub kind: FamilyKind,
    /// Samples belonging to this family.
    pub samples: Vec<Sample>,
    /// Parsed `# exemplar` lines of this (histogram) family; each
    /// carries a `request_id` label alongside the series labels.
    pub exemplars: Vec<Sample>,
}

fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => s.parse().ok(),
    }
}

/// Scan one quoted label value starting just *after* the opening quote,
/// resolving `\\`/`\"`/`\n` escapes. Returns the unescaped value and
/// the remainder after the closing quote. Any other backslash sequence
/// is rejected — an unescaped backslash is not a valid label value.
fn scan_label_value(rest: &str) -> Result<(String, &str), String> {
    let mut value = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((value, &rest[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '\\')) => value.push('\\'),
                Some((_, '"')) => value.push('"'),
                Some((_, 'n')) => value.push('\n'),
                Some((_, other)) => return Err(format!("invalid escape \\{other} in label value")),
                None => return Err("unterminated escape in label value".to_string()),
            },
            other => value.push(other),
        }
    }
    Err(format!("unterminated label value: {rest:?}"))
}

fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = s;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest:?}"))?;
        let key = &rest[..eq];
        if !valid_name(key) {
            return Err(format!("bad label name {key:?}"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("label value must be quoted: {rest:?}"));
        }
        let (value, after) = scan_label_value(&rest[1..])?;
        labels.push((key.to_string(), value));
        rest = after;
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        } else if !rest.is_empty() {
            return Err(format!("junk after label value: {rest:?}"));
        }
    }
    Ok(labels)
}

/// Parse a `k="v",...` label set (escape-aware) into pairs. Public for
/// [`crate::tsdb`]'s serialized-label round trip and for tests.
pub fn parse_label_set(s: &str) -> Result<Vec<(String, String)>, String> {
    parse_labels(s)
}

/// Canonical grouping key of a label set: sorted, rendered, optionally
/// dropping one label name (`le` for buckets, `request_id` for
/// exemplars).
fn label_group_key(labels: &[(String, String)], drop: &str) -> String {
    let mut ls: Vec<(String, String)> = labels.iter().filter(|(k, _)| k != drop).cloned().collect();
    ls.sort();
    crate::tsdb::render_label_set(&ls)
}

/// Validate one histogram family, grouping its samples by label set
/// (minus `le`): each label set must carry a complete cumulative bucket
/// series ending in `+Inf` plus matching `_sum`/`_count`, and each
/// exemplar must name an existing label set.
fn check_histogram(fam: &Family) -> Result<(), String> {
    let name = &fam.name;
    #[derive(Default)]
    struct Group {
        buckets: Vec<(f64, f64)>,
        count: Option<f64>,
        sum: Option<f64>,
    }
    let mut groups: BTreeMap<String, Group> = BTreeMap::new();
    for s in &fam.samples {
        if s.name == format!("{name}_bucket") {
            let le = s
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .ok_or_else(|| format!("{name}: bucket sample without le label"))?;
            let bound = parse_value(&le.1)
                .ok_or_else(|| format!("{name}: unparsable le bound {:?}", le.1))?;
            groups
                .entry(label_group_key(&s.labels, "le"))
                .or_default()
                .buckets
                .push((bound, s.value));
        } else if s.name == format!("{name}_count") {
            groups
                .entry(label_group_key(&s.labels, "le"))
                .or_default()
                .count = Some(s.value);
        } else if s.name == format!("{name}_sum") {
            groups
                .entry(label_group_key(&s.labels, "le"))
                .or_default()
                .sum = Some(s.value);
        }
    }
    for (key, g) in &groups {
        let ctx = if key.is_empty() {
            name.to_string()
        } else {
            format!("{name}{{{key}}}")
        };
        if g.buckets.is_empty() {
            return Err(format!("{ctx}: histogram without buckets"));
        }
        for w in g.buckets.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(format!("{ctx}: le bounds not increasing"));
            }
            if w[1].1 < w[0].1 {
                return Err(format!("{ctx}: bucket counts not cumulative"));
            }
        }
        let last = g.buckets.last().unwrap();
        if !last.0.is_infinite() {
            return Err(format!("{ctx}: last bucket must be +Inf"));
        }
        let count = g.count.ok_or_else(|| format!("{ctx}: missing _count"))?;
        g.sum.ok_or_else(|| format!("{ctx}: missing _sum"))?;
        if count != last.1 {
            return Err(format!("{ctx}: _count != +Inf bucket"));
        }
    }
    for e in &fam.exemplars {
        let key = label_group_key(&e.labels, "request_id");
        if !groups.contains_key(&key) {
            return Err(format!(
                "{name}: exemplar names unknown label set {{{key}}}"
            ));
        }
    }
    Ok(())
}

/// Parse one `name{labels} value` line (shared by samples and
/// `# exemplar` payloads).
fn parse_sample_line(line: &str, n: usize) -> Result<Sample, String> {
    let (name_labels, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("line {n}: sample without value"))?;
    let value = parse_value(value).ok_or_else(|| format!("line {n}: bad value {value:?}"))?;
    let (name, labels) = match name_labels.split_once('{') {
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("line {n}: unterminated label set"))?;
            (
                name,
                parse_labels(body).map_err(|e| format!("line {n}: {e}"))?,
            )
        }
        None => (name_labels, Vec::new()),
    };
    if !valid_name(name) {
        return Err(format!("line {n}: bad sample name {name:?}"));
    }
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Parse and validate a Prometheus text exposition.
///
/// Checks metric/label name charsets (label values must use `\\`/`\"`/
/// `\n` escapes — anything else after a backslash is rejected), that
/// every sample belongs to the family declared immediately above it,
/// that families are not redeclared, that counter/gauge families have
/// at least one sample with no duplicated label set, and that histogram
/// series are complete *per label set* (cumulative non-decreasing
/// `_bucket`s ending in `+Inf`, with `_sum` and a `_count` equal to the
/// `+Inf` bucket). `# exemplar` lines are parsed, must follow a
/// histogram family, carry a `request_id` label, and name one of the
/// family's label sets.
pub fn parse(text: &str) -> Result<Vec<Family>, String> {
    let mut families: Vec<Family> = Vec::new();
    let mut seen: BTreeMap<String, ()> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (name, kind) = (it.next().unwrap_or(""), it.next().unwrap_or(""));
            if !valid_name(name) {
                return Err(format!("line {n}: bad family name {name:?}"));
            }
            if it.next().is_some() {
                return Err(format!("line {n}: junk after TYPE line"));
            }
            let kind = match kind {
                "counter" => FamilyKind::Counter,
                "gauge" => FamilyKind::Gauge,
                "histogram" => FamilyKind::Histogram,
                other => return Err(format!("line {n}: unknown family kind {other:?}")),
            };
            if seen.insert(name.to_string(), ()).is_some() {
                return Err(format!("line {n}: family {name:?} redeclared"));
            }
            families.push(Family {
                name: name.to_string(),
                kind,
                samples: Vec::new(),
                exemplars: Vec::new(),
            });
            continue;
        }
        if let Some(rest) = line.strip_prefix("# exemplar ") {
            let ex = parse_sample_line(rest, n)?;
            let fam = families
                .last_mut()
                .ok_or_else(|| format!("line {n}: exemplar before any TYPE line"))?;
            if fam.kind != FamilyKind::Histogram {
                return Err(format!("line {n}: exemplar on non-histogram family"));
            }
            if ex.name != fam.name {
                return Err(format!(
                    "line {n}: exemplar {:?} does not belong to family {:?}",
                    ex.name, fam.name
                ));
            }
            if !ex.labels.iter().any(|(k, _)| k == "request_id") {
                return Err(format!("line {n}: exemplar without request_id label"));
            }
            fam.exemplars.push(ex);
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or free-form comment
        }
        let sample = parse_sample_line(line, n)?;
        let name = sample.name.as_str();
        let fam = families
            .last_mut()
            .ok_or_else(|| format!("line {n}: sample before any TYPE line"))?;
        let belongs = match fam.kind {
            FamilyKind::Counter | FamilyKind::Gauge => name == fam.name,
            FamilyKind::Histogram => {
                name == format!("{}_bucket", fam.name)
                    || name == format!("{}_sum", fam.name)
                    || name == format!("{}_count", fam.name)
            }
        };
        if !belongs {
            return Err(format!(
                "line {n}: sample {name:?} does not belong to family {:?}",
                fam.name
            ));
        }
        fam.samples.push(sample);
    }
    for fam in &families {
        match fam.kind {
            FamilyKind::Histogram => check_histogram(fam)?,
            _ => {
                if fam.samples.is_empty() {
                    return Err(format!("{}: family without samples", fam.name));
                }
                let mut sets: BTreeMap<String, ()> = BTreeMap::new();
                for s in &fam.samples {
                    let key = label_group_key(&s.labels, "");
                    if sets.insert(key.clone(), ()).is_some() {
                        return Err(format!(
                            "{}: duplicate sample for label set {{{key}}}",
                            fam.name
                        ));
                    }
                }
            }
        }
    }
    Ok(families)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap_with_all() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("eval.items".into(), 24);
        snap.counters.insert("servekit.shed".into(), 3);
        snap.gauges.insert("eval.ex_pct".into(), 61.5);
        let mut h = Histogram::new();
        for v in [0u64, 1, 3, 900, 901] {
            h.record(v);
        }
        snap.histograms.insert("servekit.latency_ms".into(), h);
        snap
    }

    #[test]
    fn render_is_valid_and_deterministic() {
        let snap = snap_with_all();
        let a = render(&snap);
        let b = render(&snap);
        assert_eq!(a, b);
        let fams = parse(&a).unwrap();
        assert_eq!(fams.len(), 4);
        assert!(a.contains("# TYPE eval_items counter"));
        assert!(a.contains("eval_items 24"));
        assert!(a.contains("eval_ex_pct 61.5"));
        assert!(a.contains("servekit_latency_ms_bucket{le=\"+Inf\"} 5"));
        assert!(a.contains("servekit_latency_ms_count 5"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_log2_bounds() {
        let snap = snap_with_all();
        let text = render(&snap);
        // 0 → bucket 0 (le=0), 1 → bucket 1 (le=1), 3 → bucket 2 (le=3),
        // 900/901 → bucket 10 (le=1023).
        assert!(text.contains("servekit_latency_ms_bucket{le=\"0\"} 1"));
        assert!(text.contains("servekit_latency_ms_bucket{le=\"1\"} 2"));
        assert!(text.contains("servekit_latency_ms_bucket{le=\"3\"} 3"));
        assert!(text.contains("servekit_latency_ms_bucket{le=\"1023\"} 5"));
    }

    #[test]
    fn render_events_folds_metric_summaries() {
        let events = vec![
            Event::Counter {
                name: "a.b".into(),
                value: 2,
            },
            Event::Counter {
                name: "a.b".into(),
                value: 3,
            },
            Event::Gauge {
                name: "g".into(),
                value: 1.0,
            },
            Event::Gauge {
                name: "g".into(),
                value: 2.5,
            },
            Event::Histogram {
                name: "h".into(),
                count: 2,
                sum: 5,
                min: 2,
                max: 3,
                buckets: vec![(2, 2)],
            },
        ];
        let text = render_events(&events);
        assert!(text.contains("a_b 5"));
        assert!(text.contains("g 2.5"));
        assert!(text.contains("h_count 2"));
        parse(&text).unwrap();
    }

    #[test]
    fn sanitize_fixes_bad_names() {
        assert_eq!(sanitize_name("a.b-c"), "a_b_c");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("ok_name:x9"), "ok_name:x9");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn parser_rejects_malformed_expositions() {
        assert!(parse("no_type_line 1\n").is_err());
        assert!(parse("# TYPE x widget\nx 1\n").is_err());
        assert!(parse("# TYPE x counter\ny 1\n").is_err());
        assert!(parse("# TYPE x counter\nx 1\n# TYPE x counter\nx 2\n").is_err());
        assert!(parse("# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n").is_err());
        // Non-cumulative buckets.
        assert!(parse(
            "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n"
        )
        .is_err());
        // _count disagrees with +Inf bucket.
        assert!(
            parse("# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n").is_err()
        );
    }

    #[test]
    fn parser_accepts_minimal_valid_families() {
        let text = "# TYPE c counter\nc 1\n# TYPE g gauge\ng NaN\n\
                    # TYPE h histogram\nh_bucket{le=\"7\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 4\nh_count 1\n";
        let fams = parse(text).unwrap();
        assert_eq!(fams.len(), 3);
        assert_eq!(fams[2].samples.len(), 4);
    }

    #[test]
    fn value_formatting_is_stable() {
        assert_eq!(fmt_value(0.0), "0");
        assert_eq!(fmt_value(61.5), "61.5");
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(f64::NAN), "NaN");
    }

    #[test]
    fn label_values_escape_and_round_trip() {
        let raw = "a\"b\\c\nd";
        let escaped = escape_label_value(raw);
        assert_eq!(escaped, "a\\\"b\\\\c\\nd");
        let labels = parse_label_set(&format!("k=\"{escaped}\",plain=\"x\"")).unwrap();
        assert_eq!(
            labels,
            vec![
                ("k".to_string(), raw.to_string()),
                ("plain".to_string(), "x".to_string())
            ]
        );
    }

    #[test]
    fn parser_rejects_unescaped_label_values() {
        // Raw quote inside the value: terminates early, junk follows.
        assert!(parse("# TYPE c counter\nc{l=\"a\"b\"} 1\n").is_err());
        // Invalid escape sequence.
        assert!(parse("# TYPE c counter\nc{l=\"a\\x\"} 1\n").is_err());
        // Trailing lone backslash.
        assert!(parse("# TYPE c counter\nc{l=\"a\\\"} 1\n").is_err());
        // Properly escaped forms parse.
        let fams = parse("# TYPE c counter\nc{l=\"a\\\\b\\\"c\\nd\"} 1\n").unwrap();
        assert_eq!(fams[0].samples[0].labels[0].1, "a\\b\"c\nd");
    }

    #[test]
    fn labelled_counter_families_allow_distinct_label_sets_only() {
        let ok = "# TYPE c counter\nc{t=\"a\"} 1\nc{t=\"b\"} 2\n";
        let fams = parse(ok).unwrap();
        assert_eq!(fams[0].samples.len(), 2);
        // Same label set twice (even reordered) is a duplicate.
        let dup = "# TYPE c counter\nc{a=\"1\",b=\"2\"} 1\nc{b=\"2\",a=\"1\"} 2\n";
        assert!(parse(dup).is_err());
        // A family with zero samples is still rejected.
        assert!(parse("# TYPE c counter\n").is_err());
    }

    #[test]
    fn labelled_histograms_validate_per_label_set() {
        let ok = "# TYPE h histogram\n\
                  h_bucket{t=\"a\",le=\"1\"} 1\nh_bucket{t=\"a\",le=\"+Inf\"} 2\n\
                  h_sum{t=\"a\"} 3\nh_count{t=\"a\"} 2\n\
                  h_bucket{t=\"b\",le=\"+Inf\"} 1\nh_sum{t=\"b\"} 9\nh_count{t=\"b\"} 1\n";
        parse(ok).unwrap();
        // One label set's _count disagrees with its +Inf bucket.
        let bad = ok.replace("h_count{t=\"b\"} 1", "h_count{t=\"b\"} 5");
        assert!(parse(&bad).is_err());
    }

    #[test]
    fn exemplar_lines_round_trip_and_validate() {
        let ok = "# TYPE h histogram\n\
                  h_bucket{t=\"a\",le=\"+Inf\"} 2\n\
                  # exemplar h{t=\"a\",request_id=\"17\"} 42\n\
                  h_sum{t=\"a\"} 3\nh_count{t=\"a\"} 2\n";
        let fams = parse(ok).unwrap();
        assert_eq!(fams[0].exemplars.len(), 1);
        assert_eq!(fams[0].exemplars[0].value, 42.0);
        assert_eq!(
            fams[0].exemplars[0].labels,
            vec![
                ("t".to_string(), "a".to_string()),
                ("request_id".to_string(), "17".to_string())
            ]
        );
        // Missing request_id label.
        assert!(parse(&ok.replace("request_id=\"17\"", "req=\"17\"")).is_err());
        // Exemplar naming a label set the family does not have.
        assert!(parse(&ok.replace("# exemplar h{t=\"a\"", "# exemplar h{t=\"z\"")).is_err());
        // Exemplar on a counter family.
        assert!(parse("# TYPE c counter\nc 1\n# exemplar c{request_id=\"1\"} 2\n").is_err());
    }

    #[test]
    fn render_events_includes_tsdb_series_with_exemplars() {
        use crate::tsdb::{Tsdb, TsdbConfig};
        let mut db = Tsdb::new(TsdbConfig::default());
        db.counter("req.count", &[("tenant", "t0")], 10, 3);
        db.counter("req.count", &[("tenant", "t1")], 300, 1);
        db.observe("lat.ms", &[("tenant", "t0")], 10, 64, Some(7));
        let rec = crate::Recorder::enabled();
        rec.add_counter("plain.counter", 5);
        db.drain_into(&rec);
        let text = render_events(&rec.drain_trace());
        assert!(text.contains("# TYPE req_count counter"), "{text}");
        assert!(text.contains("req_count{tenant=\"t0\"} 3"), "{text}");
        assert!(text.contains("req_count{tenant=\"t1\"} 1"), "{text}");
        assert!(text.contains("# TYPE lat_ms histogram"), "{text}");
        assert!(
            text.contains("# exemplar lat_ms{tenant=\"t0\",request_id=\"7\"} 64"),
            "{text}"
        );
        assert!(text.contains("lat_ms_count{tenant=\"t0\"} 1"), "{text}");
        // The whole exposition round-trips through the mini-parser.
        let fams = parse(&text).unwrap();
        let lat = fams.iter().find(|f| f.name == "lat_ms").unwrap();
        assert_eq!(lat.exemplars.len(), 1);
    }

    #[test]
    fn tsdb_family_name_collisions_get_suffixed() {
        use crate::tsdb::{Tsdb, TsdbConfig};
        let mut db = Tsdb::new(TsdbConfig::default());
        db.counter("plain.counter", &[("t", "a")], 0, 1);
        let rec = crate::Recorder::enabled();
        rec.add_counter("plain.counter", 5);
        db.drain_into(&rec);
        let text = render_events(&rec.drain_trace());
        assert!(text.contains("# TYPE plain_counter counter\nplain_counter 5"));
        assert!(text.contains("# TYPE plain_counter_ counter"), "{text}");
        assert!(text.contains("plain_counter_{t=\"a\"} 1"), "{text}");
        parse(&text).unwrap();
    }
}
