//! Prometheus text exposition for obskit metrics.
//!
//! Renders a [`MetricsSnapshot`] (or the metric-summary events of a
//! recorded trace) in the Prometheus text exposition format: one
//! `# TYPE` line per family, counter/gauge samples, and
//! `_bucket`/`_sum`/`_count` series derived from the log₂
//! [`Histogram`]s. Bucket upper bounds are the histogram's power-of-two
//! bucket bounds, emitted cumulatively and terminated with `+Inf`, as
//! the format requires.
//!
//! Output is deterministic: families render in sorted name order (the
//! snapshot maps are `BTreeMap`s) and label sets are written in a fixed
//! order, so expositions of the same metrics are byte-identical — which
//! is what lets `scripts/check.sh` golden-gate them.
//!
//! [`parse`] is a small validating parser for the same format, used by
//! tests to prove CLI output is well-formed (names, label syntax,
//! family/sample agreement, cumulative non-decreasing buckets ending in
//! `+Inf`, `_count` == `+Inf` bucket).

use crate::event::Event;
use crate::hist::{bucket_high, Histogram};
use crate::recorder::MetricsSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Sanitize a metric name into the Prometheus charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): dots and other invalid characters
/// become underscores, and a leading digit is prefixed with one.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Format a sample value: integers without a fractional part, floats in
/// Rust's shortest round-trip form, non-finite values in Prometheus
/// spelling (`NaN`, `+Inf`, `-Inf`).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if v.fract() == 0.0 && v.abs() < 9.007_199_254_740_992e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn render_histogram(out: &mut String, name: &str, h: &Histogram) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (i, n) in h.occupied() {
        cumulative += n;
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"{}\"}} {cumulative}",
            bucket_high(i as usize)
        );
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
    let _ = writeln!(out, "{name}_sum {}", h.sum());
    let _ = writeln!(out, "{name}_count {}", h.count());
}

/// Render a metrics snapshot in Prometheus text exposition format.
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let name = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snap.gauges {
        let name = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", fmt_value(*value));
    }
    for (name, h) in &snap.histograms {
        render_histogram(&mut out, &sanitize_name(name), h);
    }
    out
}

/// Fold the metric-summary events of a trace into a snapshot and render
/// it. Counter events with the same name are summed, gauges keep the
/// last value, histograms are merged. Span and meta events are ignored.
pub fn render_events(events: &[Event]) -> String {
    let mut snap = MetricsSnapshot::default();
    for ev in events {
        match ev {
            Event::Counter { name, value } => {
                *snap.counters.entry(name.clone()).or_insert(0) += value;
            }
            Event::Gauge { name, value } => {
                snap.gauges.insert(name.clone(), *value);
            }
            Event::Histogram {
                name,
                count,
                sum,
                min,
                max,
                buckets,
            } => {
                let h = Histogram::from_parts(*count, *sum, *min, *max, buckets);
                snap.histograms.entry(name.clone()).or_default().merge(&h);
            }
            _ => {}
        }
    }
    render(&snap)
}

/// Kind of a metric family, from its `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyKind {
    /// Monotonic counter.
    Counter,
    /// Point-in-time gauge.
    Gauge,
    /// Cumulative-bucket histogram.
    Histogram,
}

/// One sample line of an exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full sample name (may carry a `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// A parsed metric family: its `# TYPE` declaration plus samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    /// Family name.
    pub name: String,
    /// Declared kind.
    pub kind: FamilyKind,
    /// Samples belonging to this family.
    pub samples: Vec<Sample>,
}

fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => s.parse().ok(),
    }
}

fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = s;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest:?}"))?;
        let key = &rest[..eq];
        if !valid_name(key) {
            return Err(format!("bad label name {key:?}"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("label value must be quoted: {rest:?}"));
        }
        let close = rest[1..]
            .find('"')
            .ok_or_else(|| format!("unterminated label value: {rest:?}"))?;
        labels.push((key.to_string(), rest[1..1 + close].to_string()));
        rest = &rest[close + 2..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        } else if !rest.is_empty() {
            return Err(format!("junk after label value: {rest:?}"));
        }
    }
    Ok(labels)
}

fn check_histogram(fam: &Family) -> Result<(), String> {
    let name = &fam.name;
    let mut buckets: Vec<(f64, f64)> = Vec::new();
    let (mut count, mut sum) = (None, None);
    for s in &fam.samples {
        if s.name == format!("{name}_bucket") {
            let le = s
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .ok_or_else(|| format!("{name}: bucket sample without le label"))?;
            let bound = parse_value(&le.1)
                .ok_or_else(|| format!("{name}: unparsable le bound {:?}", le.1))?;
            buckets.push((bound, s.value));
        } else if s.name == format!("{name}_count") {
            count = Some(s.value);
        } else if s.name == format!("{name}_sum") {
            sum = Some(s.value);
        }
    }
    if buckets.is_empty() {
        return Err(format!("{name}: histogram without buckets"));
    }
    for w in buckets.windows(2) {
        if w[1].0 <= w[0].0 {
            return Err(format!("{name}: le bounds not increasing"));
        }
        if w[1].1 < w[0].1 {
            return Err(format!("{name}: bucket counts not cumulative"));
        }
    }
    let last = buckets.last().unwrap();
    if !last.0.is_infinite() {
        return Err(format!("{name}: last bucket must be +Inf"));
    }
    let count = count.ok_or_else(|| format!("{name}: missing _count"))?;
    sum.ok_or_else(|| format!("{name}: missing _sum"))?;
    if count != last.1 {
        return Err(format!("{name}: _count != +Inf bucket"));
    }
    Ok(())
}

/// Parse and validate a Prometheus text exposition.
///
/// Checks metric/label name charsets, that every sample belongs to the
/// family declared immediately above it, that families are not
/// redeclared, and that histogram series are complete (cumulative
/// non-decreasing `_bucket`s ending in `+Inf`, with `_sum` and a
/// `_count` equal to the `+Inf` bucket).
pub fn parse(text: &str) -> Result<Vec<Family>, String> {
    let mut families: Vec<Family> = Vec::new();
    let mut seen: BTreeMap<String, ()> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (name, kind) = (it.next().unwrap_or(""), it.next().unwrap_or(""));
            if !valid_name(name) {
                return Err(format!("line {n}: bad family name {name:?}"));
            }
            if it.next().is_some() {
                return Err(format!("line {n}: junk after TYPE line"));
            }
            let kind = match kind {
                "counter" => FamilyKind::Counter,
                "gauge" => FamilyKind::Gauge,
                "histogram" => FamilyKind::Histogram,
                other => return Err(format!("line {n}: unknown family kind {other:?}")),
            };
            if seen.insert(name.to_string(), ()).is_some() {
                return Err(format!("line {n}: family {name:?} redeclared"));
            }
            families.push(Family {
                name: name.to_string(),
                kind,
                samples: Vec::new(),
            });
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or free-form comment
        }
        let (name_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: sample without value"))?;
        let value = parse_value(value).ok_or_else(|| format!("line {n}: bad value {value:?}"))?;
        let (name, labels) = match name_labels.split_once('{') {
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {n}: unterminated label set"))?;
                (
                    name,
                    parse_labels(body).map_err(|e| format!("line {n}: {e}"))?,
                )
            }
            None => (name_labels, Vec::new()),
        };
        if !valid_name(name) {
            return Err(format!("line {n}: bad sample name {name:?}"));
        }
        let fam = families
            .last_mut()
            .ok_or_else(|| format!("line {n}: sample before any TYPE line"))?;
        let belongs = match fam.kind {
            FamilyKind::Counter | FamilyKind::Gauge => name == fam.name,
            FamilyKind::Histogram => {
                name == format!("{}_bucket", fam.name)
                    || name == format!("{}_sum", fam.name)
                    || name == format!("{}_count", fam.name)
            }
        };
        if !belongs {
            return Err(format!(
                "line {n}: sample {name:?} does not belong to family {:?}",
                fam.name
            ));
        }
        fam.samples.push(Sample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    for fam in &families {
        match fam.kind {
            FamilyKind::Histogram => check_histogram(fam)?,
            _ => {
                if fam.samples.len() != 1 {
                    return Err(format!(
                        "{}: expected exactly one sample, got {}",
                        fam.name,
                        fam.samples.len()
                    ));
                }
            }
        }
    }
    Ok(families)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap_with_all() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("eval.items".into(), 24);
        snap.counters.insert("servekit.shed".into(), 3);
        snap.gauges.insert("eval.ex_pct".into(), 61.5);
        let mut h = Histogram::new();
        for v in [0u64, 1, 3, 900, 901] {
            h.record(v);
        }
        snap.histograms.insert("servekit.latency_ms".into(), h);
        snap
    }

    #[test]
    fn render_is_valid_and_deterministic() {
        let snap = snap_with_all();
        let a = render(&snap);
        let b = render(&snap);
        assert_eq!(a, b);
        let fams = parse(&a).unwrap();
        assert_eq!(fams.len(), 4);
        assert!(a.contains("# TYPE eval_items counter"));
        assert!(a.contains("eval_items 24"));
        assert!(a.contains("eval_ex_pct 61.5"));
        assert!(a.contains("servekit_latency_ms_bucket{le=\"+Inf\"} 5"));
        assert!(a.contains("servekit_latency_ms_count 5"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_log2_bounds() {
        let snap = snap_with_all();
        let text = render(&snap);
        // 0 → bucket 0 (le=0), 1 → bucket 1 (le=1), 3 → bucket 2 (le=3),
        // 900/901 → bucket 10 (le=1023).
        assert!(text.contains("servekit_latency_ms_bucket{le=\"0\"} 1"));
        assert!(text.contains("servekit_latency_ms_bucket{le=\"1\"} 2"));
        assert!(text.contains("servekit_latency_ms_bucket{le=\"3\"} 3"));
        assert!(text.contains("servekit_latency_ms_bucket{le=\"1023\"} 5"));
    }

    #[test]
    fn render_events_folds_metric_summaries() {
        let events = vec![
            Event::Counter {
                name: "a.b".into(),
                value: 2,
            },
            Event::Counter {
                name: "a.b".into(),
                value: 3,
            },
            Event::Gauge {
                name: "g".into(),
                value: 1.0,
            },
            Event::Gauge {
                name: "g".into(),
                value: 2.5,
            },
            Event::Histogram {
                name: "h".into(),
                count: 2,
                sum: 5,
                min: 2,
                max: 3,
                buckets: vec![(2, 2)],
            },
        ];
        let text = render_events(&events);
        assert!(text.contains("a_b 5"));
        assert!(text.contains("g 2.5"));
        assert!(text.contains("h_count 2"));
        parse(&text).unwrap();
    }

    #[test]
    fn sanitize_fixes_bad_names() {
        assert_eq!(sanitize_name("a.b-c"), "a_b_c");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("ok_name:x9"), "ok_name:x9");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn parser_rejects_malformed_expositions() {
        assert!(parse("no_type_line 1\n").is_err());
        assert!(parse("# TYPE x widget\nx 1\n").is_err());
        assert!(parse("# TYPE x counter\ny 1\n").is_err());
        assert!(parse("# TYPE x counter\nx 1\n# TYPE x counter\nx 2\n").is_err());
        assert!(parse("# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n").is_err());
        // Non-cumulative buckets.
        assert!(parse(
            "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n"
        )
        .is_err());
        // _count disagrees with +Inf bucket.
        assert!(
            parse("# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n").is_err()
        );
    }

    #[test]
    fn parser_accepts_minimal_valid_families() {
        let text = "# TYPE c counter\nc 1\n# TYPE g gauge\ng NaN\n\
                    # TYPE h histogram\nh_bucket{le=\"7\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 4\nh_count 1\n";
        let fams = parse(text).unwrap();
        assert_eq!(fams.len(), 3);
        assert_eq!(fams[2].samples.len(), 4);
    }

    #[test]
    fn value_formatting_is_stable() {
        assert_eq!(fmt_value(0.0), "0");
        assert_eq!(fmt_value(61.5), "61.5");
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(f64::NAN), "NaN");
    }
}
