//! Request-scoped trace contexts: explicit span parenting across
//! queues, caches and worker threads, with deterministic head sampling.
//!
//! The thread-local span stack in [`crate::Recorder`] gives implicit
//! parenting *within* one thread, but a served request hops threads: it
//! is admitted on the submission thread, waits in a queue, runs its
//! retry attempts on a worker, and is EX-scored after the serving loop
//! has drained. A [`TraceContext`] carries the request identity and the
//! current parent span id across those hops so every span a request
//! touches lands in one connected tree under one request root.
//!
//! Sampling is *head-based* and deterministic: the decision is made
//! once at admission from `(seed, request_id, rate)` via [`sample`], so
//! the same seed always samples the same requests — traces stay
//! reproducible under load. A sampled-out context is indistinguishable
//! from a disabled one: its [`TraceContext::span`] returns a no-op
//! [`Span`] and emits nothing, while counters/gauges/histograms (which
//! are not request-scoped) keep flowing through the global recorder.

use crate::recorder::Span;

/// A request-scoped tracing context: request id, current parent span,
/// and the head-sampling decision. `Copy`, so it can be threaded through
/// call chains and stored in queue items without lifetime plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    request_id: u64,
    parent: Option<u64>,
    sampled: bool,
}

impl TraceContext {
    /// A context that records nothing (the default for un-traced paths).
    pub const fn disabled() -> TraceContext {
        TraceContext {
            request_id: 0,
            parent: None,
            sampled: false,
        }
    }

    /// A new root context for `request_id`. Spans opened through it are
    /// parented under `parent` (e.g. a batch-level span), or become
    /// trace roots when `parent` is `None`. `sampled: false` yields a
    /// no-op context that still carries the request id.
    pub const fn root(request_id: u64, sampled: bool, parent: Option<u64>) -> TraceContext {
        TraceContext {
            request_id,
            parent,
            sampled,
        }
    }

    /// The request id this context belongs to.
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// The span id new children will be parented under.
    pub fn parent_span(&self) -> Option<u64> {
        self.parent
    }

    /// Will [`TraceContext::span`] actually record? True only when this
    /// request was sampled *and* an enabled global recorder is installed.
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.sampled && crate::enabled()
    }

    /// Open a span named `name` on the global recorder, explicitly
    /// parented to this context's parent span, and return it together
    /// with a child context whose parent is the new span. On the no-op
    /// path (unsampled, or tracing disabled) returns a dead span and
    /// `self` unchanged.
    pub fn span(&self, name: &str) -> (Span, TraceContext) {
        if !self.is_recording() {
            return (Span::dead(), *self);
        }
        let span = crate::global().span_under(name, self.parent);
        let child = TraceContext {
            request_id: self.request_id,
            parent: span.id(),
            sampled: true,
        };
        (span, child)
    }

    /// Attach a key/value annotation event, gated on the sampling
    /// decision like [`TraceContext::span`].
    pub fn meta(&self, name: &str, fields: &[(&str, String)]) {
        if self.is_recording() {
            crate::global().meta(name, fields);
        }
    }
}

impl Default for TraceContext {
    fn default() -> Self {
        TraceContext::disabled()
    }
}

/// Deterministic head-sampling decision for one request.
///
/// Hashes `(seed, request_id)` (FNV-1a) into a uniform value in
/// `[0, 1)` and compares it against `rate`. Pure: the same inputs always
/// give the same decision, so traces are reproducible across runs and
/// worker counts. `rate >= 1.0` samples everything, `rate <= 0.0`
/// nothing.
pub fn sample(seed: u64, request_id: u64, rate: f64) -> bool {
    if rate >= 1.0 {
        return true;
    }
    if rate <= 0.0 {
        return false;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in seed
        .to_le_bytes()
        .into_iter()
        .chain(request_id.to_le_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Top 53 bits → uniform f64 in [0, 1).
    ((h >> 11) as f64 / (1u64 << 53) as f64) < rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, Recorder};

    #[test]
    fn disabled_context_records_nothing() {
        let ctx = TraceContext::disabled();
        assert!(!ctx.is_recording());
        let (span, child) = ctx.span("x");
        assert!(span.id().is_none());
        assert_eq!(child, ctx);
    }

    #[test]
    fn span_chain_links_parent_ids() {
        // Use a local recorder through span_under to test the linking
        // logic without depending on the process-global recorder.
        let r = Recorder::enabled();
        let root = r.span_under("root", None);
        let child = r.span_under("child", root.id());
        let ev = r.events();
        match &ev[1] {
            Event::SpanStart { parent, .. } => assert_eq!(*parent, root.id()),
            other => panic!("unexpected {other:?}"),
        }
        drop(child);
        drop(root);
    }

    #[test]
    fn sampling_is_deterministic_and_respects_bounds() {
        for id in 0..64 {
            assert!(sample(7, id, 1.0));
            assert!(!sample(7, id, 0.0));
            assert_eq!(sample(7, id, 0.5), sample(7, id, 0.5));
        }
    }

    #[test]
    fn sampling_rate_is_roughly_honored() {
        let hits = (0..10_000).filter(|&id| sample(42, id, 0.1)).count();
        assert!((500..1500).contains(&hits), "{hits}");
    }

    #[test]
    fn different_seeds_pick_different_requests() {
        let pick = |seed| {
            (0..1000)
                .filter(|&id| sample(seed, id, 0.1))
                .collect::<Vec<_>>()
        };
        assert_ne!(pick(1), pick(2));
    }
}
