//! JSONL serialization of trace events — hand-rolled, since this crate is
//! dependency-free by design.
//!
//! Each event is one JSON object per line with an `"ev"` discriminator:
//!
//! ```text
//! {"ev":"span_start","id":2,"parent":1,"name":"predict","t_ns":120}
//! {"ev":"span_end","id":2,"name":"predict","dur_ns":815}
//! {"ev":"counter","name":"eval.items","value":24}
//! {"ev":"gauge","name":"ex_pct","value":61.5}
//! {"ev":"histogram","name":"lat","count":2,"sum":300,"min":100,"max":200,"buckets":[[7,1],[8,1]]}
//! {"ev":"meta","name":"experiment.e1","fields":{"seed":"2023"}}
//! ```
//!
//! The parser accepts exactly what the serializer emits (plus insignificant
//! whitespace); `parse -> serialize` round-trips bit-for-bit.

use crate::event::Event;
use std::fmt::Write as _;

/// Escape a string into a JSON string literal (without quotes).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Serialize a float the way JSON expects (always with a decimal point or
/// exponent so it parses back as a float).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        // JSON has no Inf/NaN; encode as null and parse back as 0.
        "null".to_string()
    }
}

/// Serialize one event as a single JSON line (no trailing newline).
pub fn to_json_line(ev: &Event) -> String {
    let mut s = String::with_capacity(64);
    let field = |s: &mut String, name: &str| {
        s.push('"');
        s.push_str(name);
        s.push_str("\":");
    };
    s.push('{');
    match ev {
        Event::SpanStart {
            id,
            parent,
            name,
            t_ns,
        } => {
            s.push_str("\"ev\":\"span_start\",");
            field(&mut s, "id");
            let _ = write!(s, "{id},");
            if let Some(p) = parent {
                field(&mut s, "parent");
                let _ = write!(s, "{p},");
            }
            field(&mut s, "name");
            s.push('"');
            escape_into(&mut s, name);
            s.push_str("\",");
            field(&mut s, "t_ns");
            let _ = write!(s, "{t_ns}");
        }
        Event::SpanEnd { id, name, dur_ns } => {
            s.push_str("\"ev\":\"span_end\",");
            field(&mut s, "id");
            let _ = write!(s, "{id},");
            field(&mut s, "name");
            s.push('"');
            escape_into(&mut s, name);
            s.push_str("\",");
            field(&mut s, "dur_ns");
            let _ = write!(s, "{dur_ns}");
        }
        Event::Counter { name, value } => {
            s.push_str("\"ev\":\"counter\",");
            field(&mut s, "name");
            s.push('"');
            escape_into(&mut s, name);
            s.push_str("\",");
            field(&mut s, "value");
            let _ = write!(s, "{value}");
        }
        Event::Gauge { name, value } => {
            s.push_str("\"ev\":\"gauge\",");
            field(&mut s, "name");
            s.push('"');
            escape_into(&mut s, name);
            s.push_str("\",");
            field(&mut s, "value");
            s.push_str(&fmt_f64(*value));
        }
        Event::Histogram {
            name,
            count,
            sum,
            min,
            max,
            buckets,
        } => {
            s.push_str("\"ev\":\"histogram\",");
            field(&mut s, "name");
            s.push('"');
            escape_into(&mut s, name);
            s.push_str("\",");
            let _ = write!(
                s,
                "\"count\":{count},\"sum\":{sum},\"min\":{min},\"max\":{max},"
            );
            field(&mut s, "buckets");
            s.push('[');
            for (i, (b, n)) in buckets.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "[{b},{n}]");
            }
            s.push(']');
        }
        Event::Meta { name, fields } => {
            s.push_str("\"ev\":\"meta\",");
            field(&mut s, "name");
            s.push('"');
            escape_into(&mut s, name);
            s.push_str("\",");
            field(&mut s, "fields");
            s.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push('"');
                escape_into(&mut s, k);
                s.push_str("\":\"");
                escape_into(&mut s, v);
                s.push('"');
            }
            s.push('}');
        }
    }
    s.push('}');
    s
}

// ---- parsing ----

/// A minimal JSON value (only the shapes the serializer emits).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    /// Integer token (no `.`/`e`), kept exact — `u64::MAX` must round-trip.
    Int(i128),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\r' | b'\n') {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.i).copied()
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'n') => {
                if self.b[self.i..].starts_with(b"null") {
                    self.i += 4;
                    Ok(Json::Null)
                } else {
                    Err(format!("bad literal at byte {}", self.i))
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("bad object separator {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("bad array separator {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    let e = *self.b.get(self.i).ok_or("dangling escape")?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or("truncated \\u escape")?;
                            self.i += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.b[self.i..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("empty string tail")?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let tok = std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?;
        if !tok.contains(['.', 'e', 'E']) {
            if let Ok(i) = tok.parse::<i128>() {
                return Ok(Json::Int(i));
            }
        }
        tok.parse::<f64>().map(Json::Num).map_err(|e| e.to_string())
    }
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            Json::Num(n) => Some(*n as u64),
            Json::Null => Some(0),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            Json::Null => Some(0.0),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse one JSONL line into an [`Event`].
pub fn parse_jsonl_line(line: &str) -> Result<Event, String> {
    let mut p = Parser {
        b: line.as_bytes(),
        i: 0,
    };
    let v = p.object()?;
    let kind = v
        .get("ev")
        .and_then(Json::as_str)
        .ok_or("missing \"ev\" field")?;
    let name = || -> Result<String, String> {
        Ok(v.get("name")
            .and_then(Json::as_str)
            .ok_or("missing \"name\"")?
            .to_string())
    };
    let num = |key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing {key:?}"))
    };
    match kind {
        "span_start" => Ok(Event::SpanStart {
            id: num("id")?,
            parent: v.get("parent").and_then(Json::as_u64),
            name: name()?,
            t_ns: num("t_ns")?,
        }),
        "span_end" => Ok(Event::SpanEnd {
            id: num("id")?,
            name: name()?,
            dur_ns: num("dur_ns")?,
        }),
        "counter" => Ok(Event::Counter {
            name: name()?,
            value: num("value")?,
        }),
        "gauge" => Ok(Event::Gauge {
            name: name()?,
            value: v
                .get("value")
                .and_then(Json::as_f64)
                .ok_or("missing \"value\"")?,
        }),
        "histogram" => {
            let buckets = match v.get("buckets") {
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(|pair| match pair {
                        Json::Arr(bn) if bn.len() == 2 => Ok((
                            bn[0].as_u64().ok_or("bad bucket index")? as u32,
                            bn[1].as_u64().ok_or("bad bucket count")?,
                        )),
                        _ => Err("bad bucket pair".to_string()),
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                _ => return Err("missing \"buckets\"".into()),
            };
            Ok(Event::Histogram {
                name: name()?,
                count: num("count")?,
                sum: num("sum")?,
                min: num("min")?,
                max: num("max")?,
                buckets,
            })
        }
        "meta" => {
            let fields = match v.get("fields") {
                Some(Json::Obj(fields)) => fields
                    .iter()
                    .map(|(k, val)| {
                        Ok((
                            k.clone(),
                            val.as_str().ok_or("meta value not a string")?.to_string(),
                        ))
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                _ => return Err("missing \"fields\"".into()),
            };
            Ok(Event::Meta {
                name: name()?,
                fields,
            })
        }
        other => Err(format!("unknown event kind {other:?}")),
    }
}

/// Parse a whole JSONL document (blank lines ignored).
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| parse_jsonl_line(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

/// Counter name under which [`parse_jsonl_lossy`] reports the number of
/// lines it skipped.
pub const SKIPPED_LINES_COUNTER: &str = "obskit.jsonl.skipped_lines";

/// Parse a JSONL document leniently: malformed, truncated or non-event
/// lines are skipped and returned as `line N: reason` warnings instead of
/// failing the whole parse. A crashed run's partial trace (whose final
/// line is typically cut mid-object) still yields every intact event.
///
/// When any line was skipped, a synthetic
/// [`Event::Counter`] named [`SKIPPED_LINES_COUNTER`] carrying the skip
/// count is appended to the returned events, so data loss shows up in
/// the *metrics* of everything built on the lossy parse (profiles,
/// expositions), not only in stderr warnings.
pub fn parse_jsonl_lossy(text: &str) -> (Vec<Event>, Vec<String>) {
    let mut events = Vec::new();
    let mut warnings = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_jsonl_line(line) {
            Ok(ev) => events.push(ev),
            Err(e) => warnings.push(format!("line {}: {e}", i + 1)),
        }
    }
    if !warnings.is_empty() {
        events.push(Event::Counter {
            name: SKIPPED_LINES_COUNTER.to_string(),
            value: warnings.len() as u64,
        });
    }
    (events, warnings)
}

/// Serialize a trace with every span timestamp and duration zeroed.
///
/// Two runs of the same workload differ only in their timings, and
/// [`Event`] equality already ignores them; this is the byte-level
/// counterpart, letting determinism tests compare whole trace files with a
/// plain string (or file) equality check.
pub fn canonical_jsonl(events: &[Event]) -> String {
    let mut s = String::new();
    for ev in events {
        let canon = match ev.clone() {
            Event::SpanStart {
                id, parent, name, ..
            } => Event::SpanStart {
                id,
                parent,
                name,
                t_ns: 0,
            },
            Event::SpanEnd { id, name, .. } => Event::SpanEnd {
                id,
                name,
                dur_ns: 0,
            },
            other => other,
        };
        s.push_str(&to_json_line(&canon));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Event> {
        vec![
            Event::SpanStart {
                id: 1,
                parent: None,
                name: "run".into(),
                t_ns: 0,
            },
            Event::SpanStart {
                id: 2,
                parent: Some(1),
                name: "predict".into(),
                t_ns: 120,
            },
            Event::SpanEnd {
                id: 2,
                name: "predict".into(),
                dur_ns: 815,
            },
            Event::SpanEnd {
                id: 1,
                name: "run".into(),
                dur_ns: 1000,
            },
            Event::Counter {
                name: "eval.items".into(),
                value: 24,
            },
            Event::Gauge {
                name: "ex_pct".into(),
                value: 61.5,
            },
            Event::Gauge {
                name: "whole".into(),
                value: -3.0,
            },
            Event::Histogram {
                name: "lat".into(),
                count: 2,
                sum: 300,
                min: 100,
                max: 200,
                buckets: vec![(7, 1), (8, 1)],
            },
            Event::Meta {
                name: "experiment.e1".into(),
                fields: vec![
                    ("seed".into(), "2023".into()),
                    ("scale".into(), "quick".into()),
                ],
            },
            Event::Histogram {
                name: "extreme".into(),
                count: 2,
                sum: u64::MAX,
                min: 0,
                max: u64::MAX,
                buckets: vec![(0, 1), (64, 1)],
            },
        ]
    }

    #[test]
    fn events_round_trip() {
        for ev in samples() {
            let line = to_json_line(&ev);
            let back = parse_jsonl_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(ev, back, "{line}");
        }
    }

    #[test]
    fn serialized_timestamps_round_trip_exactly() {
        // Event equality ignores times, so check them via re-serialization.
        let ev = Event::SpanStart {
            id: 9,
            parent: Some(3),
            name: "x".into(),
            t_ns: 123456789,
        };
        let line = to_json_line(&ev);
        assert_eq!(line, to_json_line(&parse_jsonl_line(&line).unwrap()));
    }

    #[test]
    fn document_round_trips() {
        let doc: String = samples().iter().map(|e| to_json_line(e) + "\n").collect();
        let back = parse_jsonl(&doc).unwrap();
        assert_eq!(back, samples());
    }

    #[test]
    fn strings_are_escaped() {
        let ev = Event::Meta {
            name: "weird \"name\"\n".into(),
            fields: vec![("k\\".into(), "v\t".into())],
        };
        let line = to_json_line(&ev);
        assert!(!line.contains('\n'), "{line}");
        assert_eq!(ev, parse_jsonl_line(&line).unwrap());
    }

    #[test]
    fn garbage_is_rejected_with_line_numbers() {
        let err =
            parse_jsonl("{\"ev\":\"counter\",\"name\":\"a\",\"value\":1}\nnot json").unwrap_err();
        assert!(err.starts_with("line 2"), "{err}");
        assert!(parse_jsonl_line("{}").is_err());
        assert!(parse_jsonl_line("{\"ev\":\"nope\",\"name\":\"x\"}").is_err());
    }

    #[test]
    fn lossy_parse_skips_truncated_lines() {
        let good = Event::Counter {
            name: "a".into(),
            value: 1,
        };
        let line = to_json_line(&good);
        // Simulate a crashed writer: one intact line, one cut mid-object,
        // one non-JSON line.
        let doc = format!("{line}\n{}\nnot json\n{line}\n", &line[..line.len() / 2]);
        let (events, warnings) = parse_jsonl_lossy(&doc);
        // Intact events, plus a synthetic counter reporting the skips.
        let skip_counter = Event::Counter {
            name: SKIPPED_LINES_COUNTER.into(),
            value: 2,
        };
        assert_eq!(events, vec![good.clone(), good, skip_counter]);
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        assert!(warnings[0].starts_with("line 2"), "{warnings:?}");
        assert!(warnings[1].starts_with("line 3"), "{warnings:?}");
    }

    #[test]
    fn lossy_parse_of_clean_input_adds_no_counter() {
        let good = Event::Counter {
            name: "a".into(),
            value: 1,
        };
        let doc = format!("{}\n", to_json_line(&good));
        let (events, warnings) = parse_jsonl_lossy(&doc);
        assert_eq!(events, vec![good]);
        assert!(warnings.is_empty());
    }

    #[test]
    fn canonical_jsonl_zeroes_times_only() {
        let a = canonical_jsonl(&samples());
        let mut shifted = samples();
        for ev in &mut shifted {
            match ev {
                Event::SpanStart { t_ns, .. } => *t_ns += 12345,
                Event::SpanEnd { dur_ns, .. } => *dur_ns += 999,
                _ => {}
            }
        }
        let b = canonical_jsonl(&shifted);
        assert_eq!(a, b, "canonical form must be timing-independent");
        assert!(a.contains("\"t_ns\":0"));
        assert!(a.contains("\"dur_ns\":0"));
        // Non-span content is untouched.
        assert!(a.contains("\"value\":24"));
        // Canonical output is itself a valid trace.
        assert_eq!(parse_jsonl(&a).unwrap(), samples());
    }

    #[test]
    fn blank_lines_are_ignored() {
        let ev = Event::Counter {
            name: "a".into(),
            value: 1,
        };
        let doc = format!("\n{}\n\n", to_json_line(&ev));
        assert_eq!(parse_jsonl(&doc).unwrap(), vec![ev]);
    }
}
