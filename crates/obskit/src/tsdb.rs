//! Windowed time-series metrics on the virtual clock.
//!
//! The [`crate::Recorder`]'s counters and histograms are *cumulative*:
//! one number per name for the whole run. This module adds the layer the
//! multi-tenant serving and live-update streaming scenarios need —
//! metrics **over time** and **per label set**:
//!
//! * **Labelled series** — `metric{db="x",tenant="t0"}` with a hard
//!   cardinality bound. Observations for label sets past the bound are
//!   rerouted, loudly, into a per-metric `{series="__overflow__"}`
//!   series, and the reroute count is exported as the
//!   `obskit.tsdb.overflow` counter.
//! * **Fixed-step ring-buffer windows** — every observation lands in the
//!   window `t_ms / step_ms` of a bounded ring. Counters become rates
//!   (count per window), histograms become *windowed* quantiles (the
//!   log₂ [`Histogram`] per window, mergeable across a window range).
//!   Observations older than the ring are dropped and counted
//!   (`obskit.tsdb.dropped_late`).
//! * **Exemplars** — a histogram observation may carry the
//!   [`crate::TraceContext`] request id of a *sampled* request. Each
//!   window keeps the exemplar of its largest such observation, so a p99
//!   spike in a window links directly to one span tree in the same
//!   JSONL trace.
//!
//! Everything is driven by caller-supplied **virtual milliseconds** — no
//! wall clock anywhere — so a drained tsdb is byte-identical across
//! runs, thread counts and worker counts. Draining serializes each
//! occupied window as a `tsdb.series` [`Event::Meta`] (plus a
//! `tsdb.config` header), which round-trips through the existing JSONL
//! format; [`Tsdb::from_events`] rebuilds the series from a recorded
//! trace for the `dashboard` subcommand and the exposition renderer.
//!
//! [`SlidingCounts`] is the second windowing primitive: an exact
//! event-time sliding window (deque-based, O(1) amortized per event)
//! over good/bad observations, used by `servekit::slo` for burn-rate
//! alerting in place of per-event rescans.

use crate::event::Event;
use crate::hist::Histogram;
use crate::recorder::Recorder;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Configuration of a [`Tsdb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TsdbConfig {
    /// Window width in virtual ms; observation at `t_ms` lands in window
    /// `t_ms / step_ms`.
    pub step_ms: u64,
    /// Hard cardinality bound: maximum distinct series (overflow series
    /// are exempt — they are where the excess goes).
    pub max_series: usize,
    /// Ring capacity in windows; windows older than the newest
    /// `window_slots` are evicted.
    pub window_slots: usize,
}

impl Default for TsdbConfig {
    fn default() -> Self {
        TsdbConfig {
            step_ms: 250,
            max_series: 512,
            window_slots: 256,
        }
    }
}

/// The exemplar of one window: the request id of the largest sampled
/// observation recorded into it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// [`crate::TraceContext`] request id of the sampled observation.
    pub request_id: u64,
    /// The observed value itself.
    pub value: u64,
}

/// Label value used for rerouted observations of a metric whose series
/// cardinality exceeded [`TsdbConfig::max_series`].
pub const OVERFLOW_LABEL: &str = "__overflow__";

#[derive(Debug, Clone, PartialEq)]
struct Slot {
    count: u64,
    hist: Option<Box<Histogram>>,
    exemplar: Option<Exemplar>,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            count: 0,
            hist: None,
            exemplar: None,
        }
    }

    fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// A read-only view of one occupied window of a [`Series`].
#[derive(Debug, Clone, Copy)]
pub struct WindowData<'a> {
    /// Absolute window index (`t_ms / step_ms`).
    pub win: u64,
    /// Observations (or counter increments summed) in this window.
    pub count: u64,
    /// The window's histogram, for histogram series.
    pub hist: Option<&'a Histogram>,
    /// The window's exemplar, when a sampled observation landed in it.
    pub exemplar: Option<Exemplar>,
}

/// One labelled time series: a metric name, a sorted label set, and a
/// ring of fixed-step windows.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    name: String,
    metric: String,
    labels: Vec<(String, String)>,
    is_hist: bool,
    /// Absolute window index of `slots[0]`.
    start_win: u64,
    slots: VecDeque<Slot>,
}

impl Series {
    fn new(name: String, metric: String, labels: Vec<(String, String)>, is_hist: bool) -> Series {
        Series {
            name,
            metric,
            labels,
            is_hist,
            start_win: 0,
            slots: VecDeque::new(),
        }
    }

    /// Full rendered identity, `metric{k="v",...}` with sorted, escaped
    /// labels (or just `metric` for an empty label set).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The metric name (shared by every label set of the metric).
    pub fn metric(&self) -> &str {
        &self.metric
    }

    /// The label set, sorted by key.
    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }

    /// Value of one label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Is this a histogram series (vs a counter series)?
    pub fn is_hist(&self) -> bool {
        self.is_hist
    }

    /// Total observations across all retained windows.
    pub fn total(&self) -> u64 {
        self.slots.iter().map(|s| s.count).sum()
    }

    /// Occupied windows, ascending by window index.
    pub fn windows(&self) -> Vec<WindowData<'_>> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(i, s)| WindowData {
                win: self.start_win + i as u64,
                count: s.count,
                hist: s.hist.as_deref(),
                exemplar: s.exemplar,
            })
            .collect()
    }

    /// Observations in windows `(as_of_win - last_n, as_of_win]`.
    pub fn windowed_count(&self, last_n: u64, as_of_win: u64) -> u64 {
        self.range_slots(last_n, as_of_win).map(|s| s.count).sum()
    }

    /// Merge the histograms of windows `(as_of_win - last_n, as_of_win]`
    /// (empty histogram for counter series or an empty range): windowed
    /// quantiles come from `merged(..).quantile(q)`.
    pub fn merged(&self, last_n: u64, as_of_win: u64) -> Histogram {
        let mut h = Histogram::new();
        for s in self.range_slots(last_n, as_of_win) {
            if let Some(sh) = &s.hist {
                h.merge(sh);
            }
        }
        h
    }

    /// The largest-value exemplar in windows `(as_of_win - last_n, as_of_win]`.
    pub fn exemplar(&self, last_n: u64, as_of_win: u64) -> Option<Exemplar> {
        self.range_slots(last_n, as_of_win)
            .filter_map(|s| s.exemplar)
            .max_by_key(|e| e.value)
    }

    /// The largest-value exemplar across all retained windows.
    pub fn best_exemplar(&self) -> Option<Exemplar> {
        self.slots
            .iter()
            .filter_map(|s| s.exemplar)
            .max_by_key(|e| e.value)
    }

    fn range_slots(&self, last_n: u64, as_of_win: u64) -> impl Iterator<Item = &Slot> {
        let lo = (as_of_win + 1).saturating_sub(last_n); // first included window
        self.slots.iter().enumerate().filter_map(move |(i, s)| {
            let w = self.start_win + i as u64;
            (w >= lo && w <= as_of_win && !s.is_empty()).then_some(s)
        })
    }

    /// Slot for absolute window `win`, advancing the ring as needed.
    /// Returns `None` when `win` has already been evicted (too old).
    fn slot_mut(&mut self, win: u64, cap: usize) -> Option<&mut Slot> {
        if self.slots.is_empty() {
            self.start_win = win;
            self.slots.push_back(Slot::empty());
            return self.slots.back_mut();
        }
        if win < self.start_win {
            return None; // older than the ring
        }
        while self.start_win + (self.slots.len() as u64) <= win {
            if self.slots.len() >= cap.max(1) {
                self.slots.pop_front();
                self.start_win += 1;
            }
            self.slots.push_back(Slot::empty());
        }
        let idx = (win - self.start_win) as usize;
        self.slots.get_mut(idx)
    }
}

/// A deterministic, virtual-clock-driven windowed time-series store.
///
/// See the [module docs](self) for the model. Not internally
/// synchronized — wrap in a `Mutex` for shared use (the process-global
/// instance installed via [`install`] is).
#[derive(Debug, Clone, PartialEq)]
pub struct Tsdb {
    cfg: TsdbConfig,
    series: BTreeMap<String, Series>,
    overflow: u64,
    dropped_late: u64,
}

/// Render the canonical series identity: labels sorted by key, values
/// escaped per the Prometheus text format.
pub fn series_name(metric: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return metric.to_string();
    }
    let mut out = String::with_capacity(metric.len() + 16 * labels.len());
    out.push_str(metric);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&crate::expo::escape_label_value(v));
        out.push('"');
    }
    out.push('}');
    out
}

fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    v.sort();
    v
}

impl Default for Tsdb {
    fn default() -> Self {
        Tsdb::new(TsdbConfig::default())
    }
}

impl Tsdb {
    /// An empty store with the given config.
    pub fn new(cfg: TsdbConfig) -> Tsdb {
        Tsdb {
            cfg: TsdbConfig {
                step_ms: cfg.step_ms.max(1),
                ..cfg
            },
            series: BTreeMap::new(),
            overflow: 0,
            dropped_late: 0,
        }
    }

    /// The configuration this store was built with.
    pub fn config(&self) -> &TsdbConfig {
        &self.cfg
    }

    /// Observations rerouted to `__overflow__` series so far.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Observations dropped because their window was already evicted.
    pub fn dropped_late(&self) -> u64 {
        self.dropped_late
    }

    /// Number of live series (including overflow series).
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// All series, ascending by rendered name.
    pub fn series(&self) -> impl Iterator<Item = &Series> {
        self.series.values()
    }

    /// Look up one series by its rendered name.
    pub fn get(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// The newest window index any series has reached.
    pub fn latest_window(&self) -> Option<u64> {
        self.series
            .values()
            .filter(|s| !s.slots.is_empty())
            .map(|s| s.start_win + s.slots.len() as u64 - 1)
            .max()
    }

    /// The oldest retained occupied window index across series.
    pub fn earliest_window(&self) -> Option<u64> {
        self.series
            .values()
            .flat_map(|s| s.windows().first().map(|w| w.win))
            .min()
    }

    /// Add `delta` to the counter series `metric{labels}` at `t_ms`.
    pub fn counter(&mut self, metric: &str, labels: &[(&str, &str)], t_ms: u64, delta: u64) {
        self.record(metric, labels, t_ms, delta, false, 0, None);
    }

    /// Record one histogram observation into `metric{labels}` at `t_ms`,
    /// optionally carrying the request id of a *sampled* request as an
    /// exemplar (each window keeps its largest-value exemplar).
    pub fn observe(
        &mut self,
        metric: &str,
        labels: &[(&str, &str)],
        t_ms: u64,
        value: u64,
        exemplar_request: Option<u64>,
    ) {
        self.record(metric, labels, t_ms, 1, true, value, exemplar_request);
    }

    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        metric: &str,
        labels: &[(&str, &str)],
        t_ms: u64,
        delta: u64,
        is_hist: bool,
        value: u64,
        exemplar_request: Option<u64>,
    ) {
        let labels = sorted_labels(labels);
        let name = series_name(metric, &labels);
        let (name, labels) =
            if self.series.contains_key(&name) || self.series.len() < self.cfg.max_series {
                (name, labels)
            } else {
                // Cardinality bound hit: reroute into the metric's overflow
                // series (exempt from the bound — it IS the pressure valve)
                // and account loudly.
                self.overflow += delta;
                let labels = vec![("series".to_string(), OVERFLOW_LABEL.to_string())];
                (series_name(metric, &labels), labels)
            };
        let win = t_ms / self.cfg.step_ms;
        let cap = self.cfg.window_slots;
        let series = self
            .series
            .entry(name.clone())
            .or_insert_with(|| Series::new(name, metric.to_string(), labels, is_hist));
        let Some(slot) = series.slot_mut(win, cap) else {
            self.dropped_late += delta;
            return;
        };
        slot.count += delta;
        if is_hist {
            slot.hist.get_or_insert_with(Default::default).record(value);
            if let Some(request_id) = exemplar_request {
                let better = slot.exemplar.is_none_or(|e| value > e.value);
                if better {
                    slot.exemplar = Some(Exemplar { request_id, value });
                }
            }
        }
    }

    /// Serialize the store into `rec` as `tsdb.config`/`tsdb.series`
    /// meta events (one per occupied window, in sorted series order)
    /// plus `obskit.tsdb.*` accounting counters. The result round-trips
    /// through JSONL and [`Tsdb::from_events`].
    pub fn drain_into(&self, rec: &Recorder) {
        rec.meta(
            "tsdb.config",
            &[
                ("step_ms", self.cfg.step_ms.to_string()),
                ("max_series", self.cfg.max_series.to_string()),
                ("window_slots", self.cfg.window_slots.to_string()),
            ],
        );
        for series in self.series.values() {
            for w in series.windows() {
                let mut fields: Vec<(&str, String)> = vec![
                    ("metric", series.metric.clone()),
                    ("labels", render_label_set(&series.labels)),
                    (
                        "kind",
                        if series.is_hist { "hist" } else { "counter" }.to_string(),
                    ),
                    ("win", w.win.to_string()),
                    ("count", w.count.to_string()),
                ];
                if let Some(h) = w.hist {
                    fields.push(("sum", h.sum().to_string()));
                    fields.push(("min", h.min().to_string()));
                    fields.push(("max", h.max().to_string()));
                    let buckets = h
                        .occupied()
                        .iter()
                        .map(|(i, n)| format!("{i}:{n}"))
                        .collect::<Vec<_>>()
                        .join(",");
                    fields.push(("buckets", buckets));
                }
                if let Some(e) = w.exemplar {
                    fields.push(("exemplar_req", e.request_id.to_string()));
                    fields.push(("exemplar_val", e.value.to_string()));
                }
                rec.meta("tsdb.series", &fields);
            }
        }
        rec.add_counter("obskit.tsdb.series", self.series.len() as u64);
        if self.overflow > 0 {
            rec.add_counter("obskit.tsdb.overflow", self.overflow);
        }
        if self.dropped_late > 0 {
            rec.add_counter("obskit.tsdb.dropped_late", self.dropped_late);
        }
    }

    /// Rebuild a store from the `tsdb.config`/`tsdb.series` meta events
    /// of a recorded trace (the inverse of [`Tsdb::drain_into`]).
    /// Malformed events are skipped; an absent config yields defaults.
    pub fn from_events(events: &[Event]) -> Tsdb {
        let mut cfg = TsdbConfig::default();
        for ev in events {
            if let Event::Meta { name, fields } = ev {
                if name == "tsdb.config" {
                    let get = |k: &str| field(fields, k).and_then(|v| v.parse::<u64>().ok());
                    if let Some(v) = get("step_ms") {
                        cfg.step_ms = v.max(1);
                    }
                    if let Some(v) = get("max_series") {
                        cfg.max_series = v as usize;
                    }
                    if let Some(v) = get("window_slots") {
                        cfg.window_slots = v as usize;
                    }
                }
            }
        }
        let mut db = Tsdb::new(cfg);
        for ev in events {
            let Event::Meta { name, fields } = ev else {
                continue;
            };
            if name != "tsdb.series" {
                continue;
            }
            let (Some(metric), Some(kind), Some(win), Some(count)) = (
                field(fields, "metric"),
                field(fields, "kind"),
                field(fields, "win").and_then(|v| v.parse::<u64>().ok()),
                field(fields, "count").and_then(|v| v.parse::<u64>().ok()),
            ) else {
                continue;
            };
            let labels = match field(fields, "labels") {
                Some(s) => match crate::expo::parse_label_set(s) {
                    Ok(l) => l,
                    Err(_) => continue,
                },
                None => Vec::new(),
            };
            let is_hist = kind == "hist";
            let name = series_name(metric, &labels);
            let series = db
                .series
                .entry(name.clone())
                .or_insert_with(|| Series::new(name, metric.to_string(), labels, is_hist));
            let cap = db.cfg.window_slots;
            let Some(slot) = series.slot_mut(win, cap) else {
                continue;
            };
            slot.count += count;
            if is_hist {
                let num = |k: &str| {
                    field(fields, k)
                        .and_then(|v| v.parse::<u64>().ok())
                        .unwrap_or(0)
                };
                let buckets: Vec<(u32, u64)> = field(fields, "buckets")
                    .unwrap_or("")
                    .split(',')
                    .filter_map(|p| {
                        let (i, n) = p.split_once(':')?;
                        Some((i.parse().ok()?, n.parse().ok()?))
                    })
                    .collect();
                let h = Histogram::from_parts(count, num("sum"), num("min"), num("max"), &buckets);
                slot.hist.get_or_insert_with(Default::default).merge(&h);
                if let (Some(req), Some(val)) = (
                    field(fields, "exemplar_req").and_then(|v| v.parse().ok()),
                    field(fields, "exemplar_val").and_then(|v| v.parse().ok()),
                ) {
                    let better = slot.exemplar.is_none_or(|e| val > e.value);
                    if better {
                        slot.exemplar = Some(Exemplar {
                            request_id: req,
                            value: val,
                        });
                    }
                }
            }
        }
        // Restore accounting from the drained counters so a rebuilt
        // store reports the same overflow/late numbers.
        for ev in events {
            if let Event::Counter { name, value } = ev {
                match name.as_str() {
                    "obskit.tsdb.overflow" => db.overflow += value,
                    "obskit.tsdb.dropped_late" => db.dropped_late += value,
                    _ => {}
                }
            }
        }
        db
    }
}

/// Render a sorted label set as `k="v",k2="v2"` (escaped), the form
/// stored in `tsdb.series` meta events and parsed back by
/// [`crate::expo::parse_label_set`].
pub fn render_label_set(labels: &[(String, String)]) -> String {
    labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", crate::expo::escape_label_value(v)))
        .collect::<Vec<_>>()
        .join(",")
}

fn field<'a>(fields: &'a [(String, String)], key: &str) -> Option<&'a str> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

/// An exact event-time sliding window over good/bad observations.
///
/// Unlike the fixed-step ring windows of [`Tsdb`], this keeps the exact
/// timestamps of the observations currently inside `(now - window_ms,
/// now]` and evicts as `now` advances — the semantics burn-rate alerting
/// needs (`servekit::slo`), at O(1) amortized per pushed event instead
/// of a rescan per evaluation. Pushes must be non-decreasing in time.
#[derive(Debug, Clone)]
pub struct SlidingCounts {
    window_ms: u64,
    entries: VecDeque<(u64, bool)>,
    total: u64,
    bad: u64,
}

impl SlidingCounts {
    /// An empty window of width `window_ms` virtual ms.
    pub fn new(window_ms: u64) -> SlidingCounts {
        SlidingCounts {
            window_ms,
            entries: VecDeque::new(),
            total: 0,
            bad: 0,
        }
    }

    /// Push one observation at `t_ms` (non-decreasing across calls) and
    /// evict everything at or before `t_ms - window_ms`.
    pub fn push(&mut self, t_ms: u64, good: bool) {
        self.entries.push_back((t_ms, good));
        self.total += 1;
        self.bad += u64::from(!good);
        let cutoff = t_ms.saturating_sub(self.window_ms);
        while let Some(&(t, g)) = self.entries.front() {
            if t <= cutoff {
                self.entries.pop_front();
                self.total -= 1;
                self.bad -= u64::from(!g);
            } else {
                break;
            }
        }
    }

    /// Observations currently in the window.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bad observations currently in the window.
    pub fn bad(&self) -> u64 {
        self.bad
    }

    /// Burn rate of the current window against an error `budget`
    /// (`(bad/total)/budget`; 0.0 when empty or the budget is not
    /// positive).
    pub fn burn(&self, budget: f64) -> f64 {
        if self.total == 0 || budget <= 0.0 {
            0.0
        } else {
            (self.bad as f64 / self.total as f64) / budget
        }
    }
}

static GLOBAL_TSDB: OnceLock<Mutex<Tsdb>> = OnceLock::new();
static TSDB_INSTALLED: AtomicBool = AtomicBool::new(false);

/// Install `tsdb` as the process-global store. Returns `false` (leaving
/// the existing store in place) if one was already installed. Like the
/// global [`Recorder`](crate::set_global), this is how deep layers
/// (servekit, eval scoring) record series without threading a handle.
pub fn install(tsdb: Tsdb) -> bool {
    let ok = GLOBAL_TSDB.set(Mutex::new(tsdb)).is_ok();
    if ok {
        TSDB_INSTALLED.store(true, Ordering::Relaxed);
    }
    ok
}

/// Fast check: is a global store installed? One relaxed atomic load, so
/// recording paths can skip label formatting entirely when off.
#[inline]
pub fn installed() -> bool {
    TSDB_INSTALLED.load(Ordering::Relaxed)
}

/// Run `f` against the global store; `None` when none is installed.
pub fn with<R>(f: impl FnOnce(&mut Tsdb) -> R) -> Option<R> {
    if !installed() {
        return None;
    }
    let m = GLOBAL_TSDB.get()?;
    Some(f(&mut m.lock().unwrap()))
}

/// [`Tsdb::counter`] against the global store (no-op when none).
pub fn counter(metric: &str, labels: &[(&str, &str)], t_ms: u64, delta: u64) {
    with(|t| t.counter(metric, labels, t_ms, delta));
}

/// [`Tsdb::observe`] against the global store (no-op when none).
pub fn observe(
    metric: &str,
    labels: &[(&str, &str)],
    t_ms: u64,
    value: u64,
    exemplar_request: Option<u64>,
) {
    with(|t| t.observe(metric, labels, t_ms, value, exemplar_request));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Tsdb {
        Tsdb::new(TsdbConfig {
            step_ms: 100,
            max_series: 4,
            window_slots: 8,
        })
    }

    #[test]
    fn counters_land_in_fixed_step_windows() {
        let mut db = small();
        db.counter("req", &[("tenant", "t0")], 0, 1);
        db.counter("req", &[("tenant", "t0")], 99, 1);
        db.counter("req", &[("tenant", "t0")], 100, 1);
        db.counter("req", &[("tenant", "t0")], 350, 2);
        let s = db.get("req{tenant=\"t0\"}").unwrap();
        let wins: Vec<(u64, u64)> = s.windows().iter().map(|w| (w.win, w.count)).collect();
        assert_eq!(wins, vec![(0, 2), (1, 1), (3, 2)]);
        assert_eq!(s.total(), 5);
        assert_eq!(s.windowed_count(2, 3), 2, "windows (1, 3] hold only w3");
        assert_eq!(s.windowed_count(4, 3), 5);
    }

    #[test]
    fn histogram_windows_give_windowed_quantiles_and_exemplars() {
        let mut db = small();
        db.observe("lat", &[], 10, 5, Some(1));
        db.observe("lat", &[], 20, 900, Some(2));
        db.observe("lat", &[], 150, 7, None);
        let s = db.get("lat").unwrap();
        assert!(s.is_hist());
        // Window 0 keeps the larger observation's exemplar.
        let w0 = &s.windows()[0];
        assert_eq!(
            w0.exemplar,
            Some(Exemplar {
                request_id: 2,
                value: 900
            })
        );
        assert_eq!(w0.hist.unwrap().count(), 2);
        // Windowed quantiles over just window 1 exclude the 900.
        let h = s.merged(1, 1);
        assert_eq!(h.count(), 1);
        assert_eq!(h.p99(), 7);
        // Over both windows the spike dominates p99.
        assert_eq!(s.merged(2, 1).p99(), 900);
        assert_eq!(
            s.exemplar(2, 1),
            Some(Exemplar {
                request_id: 2,
                value: 900
            })
        );
        assert_eq!(s.windows()[1].exemplar, None, "unsampled observation");
    }

    #[test]
    fn cardinality_bound_reroutes_to_overflow_series() {
        let mut db = small(); // max_series = 4
        for i in 0..6 {
            let tenant = format!("t{i}");
            db.counter("req", &[("tenant", &tenant)], 0, 1);
        }
        // 4 real series + 1 overflow series holding the 2 rerouted.
        assert_eq!(db.series_count(), 5);
        assert_eq!(db.overflow(), 2);
        let ovf = db.get("req{series=\"__overflow__\"}").unwrap();
        assert_eq!(ovf.total(), 2);
        // Existing series keep recording after the bound trips.
        db.counter("req", &[("tenant", "t0")], 50, 1);
        assert_eq!(db.get("req{tenant=\"t0\"}").unwrap().total(), 2);
        assert_eq!(db.overflow(), 2);
    }

    #[test]
    fn ring_evicts_old_windows_and_counts_late_drops() {
        let mut db = small(); // 8 slots of 100ms
        db.counter("c", &[], 0, 1);
        db.counter("c", &[], 2_000, 1); // window 20: evicts window 0
        let s = db.get("c").unwrap();
        assert_eq!(
            s.windows().iter().map(|w| w.win).collect::<Vec<_>>(),
            vec![20]
        );
        // An observation for an evicted window is dropped and counted.
        db.counter("c", &[], 100, 3);
        assert_eq!(db.dropped_late(), 3);
        assert_eq!(db.get("c").unwrap().total(), 1);
    }

    #[test]
    fn labels_are_sorted_and_escaped_in_series_names() {
        let mut db = small();
        db.counter("m", &[("z", "1"), ("a", "x\"y\\z\n")], 0, 1);
        let name = "m{a=\"x\\\"y\\\\z\\n\",z=\"1\"}";
        assert!(
            db.get(name).is_some(),
            "have: {:?}",
            db.series().map(|s| s.name()).collect::<Vec<_>>()
        );
        // Same labels in any order hit the same series.
        db.counter("m", &[("a", "x\"y\\z\n"), ("z", "1")], 0, 1);
        assert_eq!(db.series_count(), 1);
        assert_eq!(db.get(name).unwrap().total(), 2);
    }

    #[test]
    fn drain_and_from_events_round_trip() {
        let mut db = small();
        db.counter("req", &[("tenant", "t0")], 0, 3);
        db.counter("req", &[("tenant", "t1")], 120, 1);
        db.observe("lat", &[("db", "a\"b")], 40, 64, Some(9));
        db.observe("lat", &[("db", "a\"b")], 41, 700, Some(11));
        for i in 0..6 {
            let t = format!("x{i}");
            db.counter("ovf", &[("t", &t)], 0, 1); // trips max_series = 4
        }
        let rec = Recorder::enabled();
        db.drain_into(&rec);
        let events = rec.drain_trace();
        // Through JSONL and back, then rebuild.
        let jsonl: String = events
            .iter()
            .map(|e| crate::jsonl::to_json_line(e) + "\n")
            .collect();
        let back = Tsdb::from_events(&crate::jsonl::parse_jsonl(&jsonl).unwrap());
        assert_eq!(back, db);
        assert_eq!(back.overflow(), db.overflow());
        assert_eq!(
            back.get("lat{db=\"a\\\"b\"}").unwrap().best_exemplar(),
            Some(Exemplar {
                request_id: 11,
                value: 700
            })
        );
    }

    #[test]
    fn latest_and_earliest_windows_span_all_series() {
        let mut db = small();
        assert_eq!(db.latest_window(), None);
        db.counter("a", &[], 250, 1);
        db.counter("b", &[], 610, 1);
        assert_eq!(db.earliest_window(), Some(2));
        assert_eq!(db.latest_window(), Some(6));
    }

    #[test]
    fn sliding_counts_match_rescan_semantics() {
        // Reference: burn over (end - w, end] by full rescan.
        let events: Vec<(u64, bool)> = vec![
            (0, false),
            (10, true),
            (500, false),
            (500, false),
            (1_000, true),
            (1_490, true),
            (1_510, true),
            (2_000, false),
        ];
        let w = 1_000u64;
        let budget = 0.1;
        let rescan = |end: u64| {
            let start = end.saturating_sub(w);
            let inside: Vec<_> = events
                .iter()
                .filter(|&&(t, _)| t > start && t <= end)
                .collect();
            if inside.is_empty() {
                0.0
            } else {
                (inside.iter().filter(|&&&(_, g)| !g).count() as f64 / inside.len() as f64) / budget
            }
        };
        let mut sc = SlidingCounts::new(w);
        let mut i = 0;
        while i < events.len() {
            // Push all events sharing this timestamp before evaluating,
            // matching the rescan (which always sees whole tie groups).
            let t = events[i].0;
            while i < events.len() && events[i].0 == t {
                sc.push(events[i].0, events[i].1);
                i += 1;
            }
            assert_eq!(sc.burn(budget), rescan(t), "at t={t}");
        }
        assert_eq!(sc.burn(0.0), 0.0, "non-positive budget");
    }

    #[test]
    fn sliding_counts_evict_at_exact_boundary() {
        let mut sc = SlidingCounts::new(1_000);
        sc.push(0, false);
        sc.push(1_000, true);
        // (0, 1000]: the t=0 event is outside (t > start is strict).
        assert_eq!(sc.total(), 1);
        assert_eq!(sc.bad(), 0);
        sc.push(1_500, true);
        assert_eq!(sc.total(), 2);
    }

    #[test]
    fn global_free_functions_are_noops_without_install() {
        // Never install in tests (OnceLock is process-wide); the free
        // functions must be silent no-ops.
        if !installed() {
            counter("x", &[], 0, 1);
            observe("y", &[], 0, 1, None);
            assert!(with(|_| ()).is_none());
        }
    }
}
