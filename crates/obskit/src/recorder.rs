//! The event sink: spans, counters, gauges, histograms.

use crate::event::Event;
use crate::hist::Histogram;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

thread_local! {
    /// Stack of `(recorder identity, span id)` for open spans on this
    /// thread, used for implicit parenting. The identity tag keeps one
    /// recorder's spans from parenting another's (worker recorders often
    /// run on a thread that also has the main recorder's spans open).
    static SPAN_STACK: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
}

struct Inner {
    epoch: Instant,
    next_id: AtomicU64,
    events: Mutex<Vec<Event>>,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    hists: Mutex<BTreeMap<String, Histogram>>,
}

/// A thread-safe trace/metrics sink.
///
/// Cloning is cheap (an `Arc`). A *disabled* recorder is a guaranteed
/// no-op: every method returns immediately after one `Option` check, which
/// is what makes always-on instrumentation affordable (verified by the
/// `substrate` criterion bench).
#[derive(Clone)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

/// Point-in-time copy of a recorder's aggregated metrics.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter name → accumulated value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → last value.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram name → histogram.
    pub histograms: BTreeMap<String, Histogram>,
}

impl Recorder {
    /// A no-op recorder: records nothing, costs one branch per call.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// An enabled in-memory recorder.
    pub fn enabled() -> Recorder {
        Recorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                events: Mutex::new(Vec::new()),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                hists: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// Is this recorder actually recording?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span named `name`, parented to the innermost open span on
    /// this thread (if any). Closing happens on drop.
    pub fn span(&self, name: &str) -> Span {
        let Some(inner) = &self.inner else {
            return Span { data: None };
        };
        let key = Arc::as_ptr(inner) as usize;
        let parent = SPAN_STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|(k, _)| *k == key)
                .map(|(_, id)| *id)
        });
        self.start_span_with(inner, name, parent)
    }

    /// Open a span explicitly parented to `parent` (use across threads,
    /// where the thread-local stack can't see the caller's spans).
    pub fn span_under(&self, name: &str, parent: Option<u64>) -> Span {
        let Some(inner) = &self.inner else {
            return Span { data: None };
        };
        self.start_span_with(inner, name, parent)
    }

    fn start_span_with(&self, inner: &Arc<Inner>, name: &str, parent: Option<u64>) -> Span {
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let t_ns = inner.epoch.elapsed().as_nanos() as u64;
        inner.events.lock().unwrap().push(Event::SpanStart {
            id,
            parent,
            name: name.to_string(),
            t_ns,
        });
        SPAN_STACK.with(|s| s.borrow_mut().push((Arc::as_ptr(inner) as usize, id)));
        Span {
            data: Some(SpanData {
                recorder: self.clone(),
                id,
                name: name.to_string(),
                start: Instant::now(),
            }),
        }
    }

    /// Add `delta` to the named monotonic counter.
    #[inline]
    pub fn add_counter(&self, name: &str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        *inner
            .counters
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_insert(0) += delta;
    }

    /// Set the named gauge.
    #[inline]
    pub fn set_gauge(&self, name: &str, value: f64) {
        let Some(inner) = &self.inner else { return };
        inner.gauges.lock().unwrap().insert(name.to_string(), value);
    }

    /// Record one observation into the named log-scale histogram.
    #[inline]
    pub fn observe(&self, name: &str, value: u64) {
        let Some(inner) = &self.inner else { return };
        inner
            .hists
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Record a span whose duration was measured externally, emitting the
    /// `SpanStart`/`SpanEnd` pair immediately with the supplied duration.
    ///
    /// Unlike [`Recorder::span`], the duration is *not* re-measured on drop:
    /// callers that maintain their own exact time partition (the executor's
    /// per-operator probe sums self-times to the whole statement) use this so
    /// the emitted span equals their partition to the nanosecond. The span is
    /// parented to the innermost open span on this thread, and its start time
    /// is back-dated by `dur_ns`. A duration longer than the recorder's own
    /// lifetime would back-date the start *before the epoch* (a caller bug or
    /// clock skew); instead of letting the subtraction clamp silently, the
    /// span is recorded at now with zero duration and the
    /// `obskit.span.clamped` counter is incremented. Returns the span id
    /// (`None` when disabled).
    pub fn record_span(&self, name: &str, dur_ns: u64) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let key = Arc::as_ptr(inner) as usize;
        let parent = SPAN_STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|(k, _)| *k == key)
                .map(|(_, id)| *id)
        });
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let t_ns = inner.epoch.elapsed().as_nanos() as u64;
        let (start_ns, dur_ns) = if dur_ns > t_ns {
            self.add_counter("obskit.span.clamped", 1);
            (t_ns, 0)
        } else {
            (t_ns - dur_ns, dur_ns)
        };
        let mut events = inner.events.lock().unwrap();
        events.push(Event::SpanStart {
            id,
            parent,
            name: name.to_string(),
            t_ns: start_ns,
        });
        events.push(Event::SpanEnd {
            id,
            name: name.to_string(),
            dur_ns,
        });
        Some(id)
    }

    /// Attach a free-form key/value annotation event.
    pub fn meta(&self, name: &str, fields: &[(&str, String)]) {
        let Some(inner) = &self.inner else { return };
        inner.events.lock().unwrap().push(Event::Meta {
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Nanoseconds since this recorder's epoch.
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Copy of the span/meta event stream recorded so far.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => inner.events.lock().unwrap().clone(),
            None => Vec::new(),
        }
    }

    /// Snapshot of the aggregated metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => MetricsSnapshot {
                counters: inner.counters.lock().unwrap().clone(),
                gauges: inner.gauges.lock().unwrap().clone(),
                histograms: inner.hists.lock().unwrap().clone(),
            },
            None => MetricsSnapshot::default(),
        }
    }

    /// Merge a finished child recorder into this one.
    ///
    /// Span ids are remapped onto this recorder's id space; root spans of
    /// the child are re-parented under `attach_to`. Workers use this to
    /// buffer events thread-locally and merge them *in a deterministic
    /// order* after joining, which keeps trace ordering stable however
    /// many threads ran.
    pub fn absorb(&self, child: &Recorder, attach_to: Option<u64>) {
        let (Some(inner), Some(child_inner)) = (&self.inner, &child.inner) else {
            return;
        };
        if Arc::ptr_eq(inner, child_inner) {
            return; // absorbing a recorder into itself would self-deadlock
        }
        let child_events = child_inner.events.lock().unwrap().clone();
        // Remap child span ids into our id space, preserving order.
        let mut id_map: BTreeMap<u64, u64> = BTreeMap::new();
        let mut remapped = Vec::with_capacity(child_events.len());
        for ev in child_events {
            remapped.push(match ev {
                Event::SpanStart {
                    id,
                    parent,
                    name,
                    t_ns,
                } => {
                    let new_id = inner.next_id.fetch_add(1, Ordering::Relaxed);
                    id_map.insert(id, new_id);
                    let parent = match parent {
                        Some(p) => id_map.get(&p).copied().or(attach_to),
                        None => attach_to,
                    };
                    Event::SpanStart {
                        id: new_id,
                        parent,
                        name,
                        t_ns,
                    }
                }
                Event::SpanEnd { id, name, dur_ns } => Event::SpanEnd {
                    id: id_map.get(&id).copied().unwrap_or(id),
                    name,
                    dur_ns,
                },
                other => other,
            });
        }
        inner.events.lock().unwrap().extend(remapped);
        for (k, v) in child_inner.counters.lock().unwrap().iter() {
            *inner.counters.lock().unwrap().entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in child_inner.gauges.lock().unwrap().iter() {
            inner.gauges.lock().unwrap().insert(k.clone(), *v);
        }
        for (k, h) in child_inner.hists.lock().unwrap().iter() {
            inner
                .hists
                .lock()
                .unwrap()
                .entry(k.clone())
                .or_default()
                .merge(h);
        }
    }

    /// The full trace: recorded events followed by final counter, gauge
    /// and histogram summary events (sorted by name for determinism).
    pub fn drain_trace(&self) -> Vec<Event> {
        let mut out = self.events();
        let m = self.metrics();
        for (name, value) in m.counters {
            out.push(Event::Counter { name, value });
        }
        for (name, value) in m.gauges {
            out.push(Event::Gauge { name, value });
        }
        for (name, h) in m.histograms {
            out.push(Event::Histogram {
                name,
                count: h.count(),
                sum: h.sum(),
                min: h.min(),
                max: h.max(),
                buckets: h.occupied(),
            });
        }
        out
    }

    /// Serialize the full trace as JSONL.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for ev in self.drain_trace() {
            s.push_str(&crate::jsonl::to_json_line(&ev));
            s.push('\n');
        }
        s
    }

    /// Write the full trace to `path` as JSONL.
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_jsonl().as_bytes())
    }

    fn end_span(&self, id: u64, name: &str, start: Instant) {
        let Some(inner) = &self.inner else { return };
        let entry = (Arc::as_ptr(inner) as usize, id);
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.last() == Some(&entry) {
                stack.pop();
            } else if let Some(pos) = stack.iter().rposition(|&x| x == entry) {
                // Out-of-order drop (span moved or leaked); still unlink it.
                stack.remove(pos);
            }
        });
        inner.events.lock().unwrap().push(Event::SpanEnd {
            id,
            name: name.to_string(),
            dur_ns: start.elapsed().as_nanos() as u64,
        });
    }
}

struct SpanData {
    recorder: Recorder,
    id: u64,
    name: String,
    start: Instant,
}

/// An RAII stage timer. Created by [`Recorder::span`]; emits a
/// [`Event::SpanEnd`] with the measured duration when dropped.
pub struct Span {
    data: Option<SpanData>,
}

impl Span {
    /// A dead (no-op) span: records nothing on drop. Used by
    /// [`crate::TraceContext`] on the unsampled path.
    pub fn dead() -> Span {
        Span { data: None }
    }

    /// This span's id, usable as an explicit parent for cross-thread
    /// children ([`Recorder::span_under`]). `None` on the no-op path.
    pub fn id(&self) -> Option<u64> {
        self.data.as_ref().map(|d| d.id)
    }

    /// Open a child span of this span on the current thread.
    pub fn child(&self, name: &str) -> Span {
        match &self.data {
            Some(d) => d.recorder.span_under(name, Some(d.id)),
            None => Span { data: None },
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(d) = self.data.take() {
            d.recorder.end_span(d.id, &d.name, d.start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let r = Recorder::disabled();
        {
            let s = r.span("root");
            assert!(s.id().is_none());
            let c = s.child("inner");
            assert!(c.id().is_none());
        }
        r.add_counter("c", 5);
        r.set_gauge("g", 1.0);
        r.observe("h", 9);
        r.meta("m", &[("k", "v".into())]);
        assert!(r.events().is_empty());
        assert!(r.drain_trace().is_empty());
    }

    #[test]
    fn spans_nest_via_thread_local_stack() {
        let r = Recorder::enabled();
        {
            let outer = r.span("outer");
            let outer_id = outer.id().unwrap();
            {
                let inner = r.span("inner");
                assert_ne!(inner.id(), outer.id());
            }
            let ev = r.events();
            match &ev[1] {
                Event::SpanStart { parent, name, .. } => {
                    assert_eq!(*parent, Some(outer_id));
                    assert_eq!(name, "inner");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // outer dropped: both ends present, inner closed before outer.
        let names: Vec<String> = r
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::SpanEnd { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["inner".to_string(), "outer".to_string()]);
    }

    #[test]
    fn nested_span_timing_is_monotone() {
        let r = Recorder::enabled();
        {
            let _outer = r.span("outer");
            {
                let _inner = r.span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let mut durs = BTreeMap::new();
        for ev in r.events() {
            if let Event::SpanEnd { name, dur_ns, .. } = ev {
                durs.insert(name, dur_ns);
            }
        }
        assert!(durs["outer"] >= durs["inner"], "{durs:?}");
        assert!(durs["inner"] > 0);
    }

    #[test]
    fn record_span_emits_exact_duration_under_current_parent() {
        let r = Recorder::enabled();
        let outer = r.span("outer");
        let outer_id = outer.id().unwrap();
        let id = r.record_span("measured", 1234).unwrap();
        drop(outer);
        let ev = r.events();
        assert!(ev.iter().any(|e| matches!(
            e,
            Event::SpanStart { id: i, parent, name, .. }
                if *i == id && *parent == Some(outer_id) && name == "measured"
        )));
        assert!(ev.iter().any(|e| matches!(
            e,
            Event::SpanEnd { id: i, dur_ns: 1234, .. } if *i == id
        )));
        assert!(Recorder::disabled().record_span("x", 1).is_none());
    }

    #[test]
    fn record_span_clamps_durations_longer_than_the_epoch() {
        let r = Recorder::enabled();
        // A duration no process could have measured: would back-date the
        // start before the recorder existed.
        let id = r.record_span("bogus", u64::MAX).unwrap();
        let ev = r.events();
        assert!(ev.iter().any(|e| matches!(
            e,
            Event::SpanEnd { id: i, dur_ns: 0, .. } if *i == id
        )));
        assert_eq!(r.metrics().counters["obskit.span.clamped"], 1);
        // A sane duration is untouched and does not count.
        std::thread::sleep(std::time::Duration::from_millis(1));
        r.record_span("fine", 1_000).unwrap();
        assert_eq!(r.metrics().counters["obskit.span.clamped"], 1);
    }

    #[test]
    fn counters_gauges_histograms_aggregate() {
        let r = Recorder::enabled();
        r.add_counter("tokens", 10);
        r.add_counter("tokens", 5);
        r.set_gauge("ex_pct", 61.5);
        r.set_gauge("ex_pct", 62.5);
        r.observe("lat", 100);
        r.observe("lat", 200);
        let m = r.metrics();
        assert_eq!(m.counters["tokens"], 15);
        assert_eq!(m.gauges["ex_pct"], 62.5);
        assert_eq!(m.histograms["lat"].count(), 2);
    }

    #[test]
    fn absorb_remaps_ids_and_merges_metrics() {
        let main = Recorder::enabled();
        let root = main.span("root");
        let root_id = root.id().unwrap();

        let worker = Recorder::enabled();
        {
            let _s = worker.span("item");
        }
        worker.add_counter("items", 1);
        worker.observe("lat", 42);

        main.absorb(&worker, Some(root_id));
        drop(root);

        let ev = main.events();
        // root start, absorbed item start/end, root end.
        assert_eq!(ev.len(), 4);
        match &ev[1] {
            Event::SpanStart {
                id, parent, name, ..
            } => {
                assert_eq!(name, "item");
                assert_eq!(*parent, Some(root_id));
                assert_ne!(*id, root_id, "child ids must be remapped, not collide");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(main.metrics().counters["items"], 1);
        assert_eq!(main.metrics().histograms["lat"].count(), 1);
    }

    #[test]
    fn absorb_order_determines_event_order() {
        let build = || {
            let main = Recorder::enabled();
            for n in ["a", "b", "c"] {
                let w = Recorder::enabled();
                {
                    let _s = w.span(n);
                }
                main.absorb(&w, None);
            }
            main.events()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn trace_contains_metric_summaries() {
        let r = Recorder::enabled();
        r.add_counter("c", 1);
        r.set_gauge("g", 2.0);
        r.observe("h", 3);
        let trace = r.drain_trace();
        assert!(trace
            .iter()
            .any(|e| matches!(e, Event::Counter { name, value: 1 } if name == "c")));
        assert!(trace
            .iter()
            .any(|e| matches!(e, Event::Gauge { name, .. } if name == "g")));
        assert!(trace
            .iter()
            .any(|e| matches!(e, Event::Histogram { name, count: 1, .. } if name == "h")));
    }

    #[test]
    fn recorder_is_thread_safe() {
        let r = Recorder::enabled();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let r = r.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        r.add_counter("n", 1);
                    }
                });
            }
        });
        assert_eq!(r.metrics().counters["n"], 4000);
    }
}
