//! Replay an event stream into a per-stage breakdown report.

use crate::event::Event;
use crate::hist::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-stage aggregate computed from span events.
#[derive(Debug, Clone, Default)]
pub struct StageStats {
    /// Number of completed spans with this name.
    pub count: u64,
    /// Total wall-clock across those spans, ns.
    pub total_ns: u64,
    /// Total minus time attributed to child spans, ns.
    pub self_ns: u64,
    /// Smallest single span, ns.
    pub min_ns: u64,
    /// Largest single span, ns.
    pub max_ns: u64,
}

/// A per-stage time/metric breakdown assembled from a trace.
///
/// Build one with [`Profile::from_events`] (e.g. after
/// [`crate::parse_jsonl`] on a `--trace` file) and render it with
/// [`Profile::to_markdown`] — the table style matches the experiment
/// report tables (`eval::report::Table`).
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Stage name → aggregated span stats, ordered by name.
    pub stages: BTreeMap<String, StageStats>,
    /// Wall-clock of the root spans (spans without parents), ns.
    pub wall_ns: u64,
    /// Counter totals found in the trace.
    pub counters: BTreeMap<String, u64>,
    /// Gauges found in the trace.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms found in the trace.
    pub histograms: BTreeMap<String, Histogram>,
    /// Meta annotations found in the trace, in order.
    pub metas: Vec<(String, Vec<(String, String)>)>,
}

impl Profile {
    /// Aggregate a trace. Unclosed spans are ignored; durations of child
    /// spans are subtracted from their parent's self-time.
    pub fn from_events(events: &[Event]) -> Profile {
        let mut p = Profile::default();
        // id → (name, parent)
        let mut open: BTreeMap<u64, (String, Option<u64>)> = BTreeMap::new();
        // id → child total ns (accumulated as children close)
        let mut child_ns: BTreeMap<u64, u64> = BTreeMap::new();
        for ev in events {
            match ev {
                Event::SpanStart {
                    id, parent, name, ..
                } => {
                    open.insert(*id, (name.clone(), *parent));
                }
                Event::SpanEnd { id, name, dur_ns } => {
                    let (name, parent) = open.remove(id).unwrap_or_else(|| (name.clone(), None));
                    let children = child_ns.remove(id).unwrap_or(0);
                    let stats = p.stages.entry(name).or_default();
                    if stats.count == 0 {
                        stats.min_ns = *dur_ns;
                    }
                    stats.count += 1;
                    stats.total_ns += dur_ns;
                    stats.self_ns += dur_ns.saturating_sub(children);
                    stats.min_ns = stats.min_ns.min(*dur_ns);
                    stats.max_ns = stats.max_ns.max(*dur_ns);
                    match parent {
                        Some(parent_id) => *child_ns.entry(parent_id).or_insert(0) += dur_ns,
                        None => p.wall_ns += dur_ns,
                    }
                }
                Event::Counter { name, value } => {
                    *p.counters.entry(name.clone()).or_insert(0) += value;
                }
                Event::Gauge { name, value } => {
                    p.gauges.insert(name.clone(), *value);
                }
                Event::Histogram {
                    name,
                    count,
                    sum,
                    min,
                    max,
                    buckets,
                } => {
                    let h = Histogram::from_parts(*count, *sum, *min, *max, buckets);
                    p.histograms.entry(name.clone()).or_default().merge(&h);
                }
                Event::Meta { name, fields } => {
                    p.metas.push((name.clone(), fields.clone()));
                }
            }
        }
        p
    }

    /// Render the breakdown as Markdown, in the same visual style as the
    /// experiment report tables.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "### PROFILE — per-stage breakdown (wall {} over root spans)\n",
            fmt_ns(self.wall_ns)
        );
        if !self.metas.is_empty() {
            for (name, fields) in &self.metas {
                let kv: Vec<String> = fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
                let _ = writeln!(s, "- **{name}**: {}", kv.join(", "));
            }
            let _ = writeln!(s);
        }
        if !self.stages.is_empty() {
            let _ = writeln!(
                s,
                "| stage | count | total | self | mean | min | max | % wall |"
            );
            let _ = writeln!(s, "|---|---|---|---|---|---|---|---|");
            // Widest stages first; name breaks ties for determinism.
            let mut rows: Vec<(&String, &StageStats)> = self.stages.iter().collect();
            rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then_with(|| a.0.cmp(b.0)));
            for (name, st) in rows {
                let mean = st.total_ns.checked_div(st.count).unwrap_or(0);
                let pct = if self.wall_ns == 0 {
                    "-".to_string()
                } else {
                    format!("{:.1}", 100.0 * st.total_ns as f64 / self.wall_ns as f64)
                };
                let _ = writeln!(
                    s,
                    "| {name} | {} | {} | {} | {} | {} | {} | {pct} |",
                    st.count,
                    fmt_ns(st.total_ns),
                    fmt_ns(st.self_ns),
                    fmt_ns(mean),
                    fmt_ns(st.min_ns),
                    fmt_ns(st.max_ns),
                );
            }
            let _ = writeln!(s);
        }
        if !self.counters.is_empty() || !self.gauges.is_empty() {
            let _ = writeln!(s, "| metric | value |");
            let _ = writeln!(s, "|---|---|");
            for (name, v) in &self.counters {
                let _ = writeln!(s, "| {name} | {v} |");
            }
            for (name, v) in &self.gauges {
                let _ = writeln!(s, "| {name} | {v:.3} |");
            }
            let _ = writeln!(s);
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(s, "| histogram | count | mean | p50 | p99 | min | max |");
            let _ = writeln!(s, "|---|---|---|---|---|---|---|");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    s,
                    "| {name} | {} | {:.1} | {} | {} | {} | {} |",
                    h.count(),
                    h.mean(),
                    h.quantile(0.5),
                    h.quantile(0.99),
                    h.min(),
                    h.max(),
                );
            }
        }
        s
    }
}

/// One stage's base-vs-new comparison inside a [`ProfileDiff`].
#[derive(Debug, Clone)]
pub struct StageDelta {
    /// Stage name.
    pub name: String,
    /// Stats in the base trace (`None` when the stage is new).
    pub base: Option<StageStats>,
    /// Stats in the new trace (`None` when the stage disappeared).
    pub new: Option<StageStats>,
}

impl StageDelta {
    /// Self-time in the base trace, ns (0 when absent).
    pub fn base_self_ns(&self) -> u64 {
        self.base.as_ref().map(|s| s.self_ns).unwrap_or(0)
    }

    /// Self-time in the new trace, ns (0 when absent).
    pub fn new_self_ns(&self) -> u64 {
        self.new.as_ref().map(|s| s.self_ns).unwrap_or(0)
    }

    /// Signed self-time change, ns.
    pub fn delta_ns(&self) -> i128 {
        self.new_self_ns() as i128 - self.base_self_ns() as i128
    }

    /// Self-time change as a percentage of the base self-time, or `None`
    /// when the stage has no base self-time to compare against.
    pub fn delta_pct(&self) -> Option<f64> {
        let base = self.base_self_ns();
        (base > 0).then(|| 100.0 * self.delta_ns() as f64 / base as f64)
    }
}

/// A cross-run comparison of two [`Profile`]s: per-stage self-times,
/// counters and histograms. Built by [`ProfileDiff::between`]; rendered
/// with [`ProfileDiff::to_markdown`]; gated in CI via
/// [`ProfileDiff::regressions`].
#[derive(Debug, Clone, Default)]
pub struct ProfileDiff {
    /// Base trace wall-clock, ns.
    pub base_wall_ns: u64,
    /// New trace wall-clock, ns.
    pub new_wall_ns: u64,
    /// Per-stage deltas, worst absolute self-time increase first
    /// (name breaks ties).
    pub stages: Vec<StageDelta>,
    /// Counter totals `(name, base, new)` over the union of names
    /// (0 when absent on one side), ordered by name.
    pub counters: Vec<(String, u64, u64)>,
    /// Histograms `(name, base, new)` over the union of names (empty when
    /// absent on one side), ordered by name.
    pub histograms: Vec<(String, Histogram, Histogram)>,
}

impl ProfileDiff {
    /// Compare two aggregated profiles.
    pub fn between(base: &Profile, new: &Profile) -> ProfileDiff {
        let stage_names: std::collections::BTreeSet<&String> =
            base.stages.keys().chain(new.stages.keys()).collect();
        let mut stages: Vec<StageDelta> = stage_names
            .into_iter()
            .map(|name| StageDelta {
                name: name.clone(),
                base: base.stages.get(name).cloned(),
                new: new.stages.get(name).cloned(),
            })
            .collect();
        stages.sort_by(|a, b| {
            b.delta_ns()
                .cmp(&a.delta_ns())
                .then_with(|| a.name.cmp(&b.name))
        });
        let counter_names: std::collections::BTreeSet<&String> =
            base.counters.keys().chain(new.counters.keys()).collect();
        let counters = counter_names
            .into_iter()
            .map(|name| {
                (
                    name.clone(),
                    base.counters.get(name).copied().unwrap_or(0),
                    new.counters.get(name).copied().unwrap_or(0),
                )
            })
            .collect();
        let hist_names: std::collections::BTreeSet<&String> = base
            .histograms
            .keys()
            .chain(new.histograms.keys())
            .collect();
        let histograms = hist_names
            .into_iter()
            .map(|name| {
                (
                    name.clone(),
                    base.histograms.get(name).cloned().unwrap_or_default(),
                    new.histograms.get(name).cloned().unwrap_or_default(),
                )
            })
            .collect();
        ProfileDiff {
            base_wall_ns: base.wall_ns,
            new_wall_ns: new.wall_ns,
            stages,
            counters,
            histograms,
        }
    }

    /// Stages whose self-time grew by more than `threshold_pct` percent of
    /// their base self-time, worst first. Stages with zero base self-time
    /// (including brand-new stages) are never flagged — there is no
    /// baseline to regress against.
    pub fn regressions(&self, threshold_pct: f64) -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> = self
            .stages
            .iter()
            .filter_map(|d| {
                let pct = d.delta_pct()?;
                (pct > threshold_pct).then(|| (d.name.clone(), pct))
            })
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Render the comparison as a Markdown delta table, in the same visual
    /// style as [`Profile::to_markdown`].
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let wall_pct = if self.base_wall_ns == 0 {
            "-".to_string()
        } else {
            format!(
                "{:+.1}%",
                100.0 * (self.new_wall_ns as i128 - self.base_wall_ns as i128) as f64
                    / self.base_wall_ns as f64
            )
        };
        let _ = writeln!(
            s,
            "### PROFILE DIFF — wall {} → {} ({wall_pct})\n",
            fmt_ns(self.base_wall_ns),
            fmt_ns(self.new_wall_ns)
        );
        if !self.stages.is_empty() {
            let _ = writeln!(s, "| stage | calls | base self | new self | Δ self | Δ% |");
            let _ = writeln!(s, "|---|---|---|---|---|---|");
            for d in &self.stages {
                let calls = format!(
                    "{}→{}",
                    d.base.as_ref().map(|s| s.count).unwrap_or(0),
                    d.new.as_ref().map(|s| s.count).unwrap_or(0)
                );
                let pct = match d.delta_pct() {
                    Some(p) => format!("{p:+.1}"),
                    None => "-".to_string(),
                };
                let _ = writeln!(
                    s,
                    "| {} | {calls} | {} | {} | {} | {pct} |",
                    d.name,
                    fmt_ns(d.base_self_ns()),
                    fmt_ns(d.new_self_ns()),
                    fmt_ns_delta(d.delta_ns()),
                );
            }
            let _ = writeln!(s);
        }
        if !self.counters.is_empty() {
            let _ = writeln!(s, "| counter | base | new | Δ |");
            let _ = writeln!(s, "|---|---|---|---|");
            for (name, base, new) in &self.counters {
                let _ = writeln!(
                    s,
                    "| {name} | {base} | {new} | {:+} |",
                    *new as i128 - *base as i128
                );
            }
            let _ = writeln!(s);
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(
                s,
                "| histogram | count | base mean | new mean | base p99 | new p99 |"
            );
            let _ = writeln!(s, "|---|---|---|---|---|---|");
            for (name, base, new) in &self.histograms {
                let _ = writeln!(
                    s,
                    "| {name} | {}→{} | {:.1} | {:.1} | {} | {} |",
                    base.count(),
                    new.count(),
                    base.mean(),
                    new.mean(),
                    base.quantile(0.99),
                    new.quantile(0.99),
                );
            }
        }
        s
    }
}

/// Human-format a signed nanosecond delta (`+1.5ms`, `-300ns`, `0ns`).
pub fn fmt_ns_delta(delta: i128) -> String {
    let mag = fmt_ns(delta.unsigned_abs().min(u64::MAX as u128) as u64);
    match delta.signum() {
        1 => format!("+{mag}"),
        -1 => format!("-{mag}"),
        _ => mag,
    }
}

/// Human-format nanoseconds (ns/µs/ms/s with one decimal).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>, name: &str, dur: u64) -> [Event; 2] {
        [
            Event::SpanStart {
                id,
                parent,
                name: name.into(),
                t_ns: 0,
            },
            Event::SpanEnd {
                id,
                name: name.into(),
                dur_ns: dur,
            },
        ]
    }

    #[test]
    fn self_time_subtracts_children() {
        // run(100) -> predict(60) -> decode(45)
        let ev = vec![
            Event::SpanStart {
                id: 1,
                parent: None,
                name: "run".into(),
                t_ns: 0,
            },
            Event::SpanStart {
                id: 2,
                parent: Some(1),
                name: "predict".into(),
                t_ns: 1,
            },
            Event::SpanStart {
                id: 3,
                parent: Some(2),
                name: "decode".into(),
                t_ns: 2,
            },
            Event::SpanEnd {
                id: 3,
                name: "decode".into(),
                dur_ns: 45,
            },
            Event::SpanEnd {
                id: 2,
                name: "predict".into(),
                dur_ns: 60,
            },
            Event::SpanEnd {
                id: 1,
                name: "run".into(),
                dur_ns: 100,
            },
        ];
        let p = Profile::from_events(&ev);
        assert_eq!(p.wall_ns, 100);
        assert_eq!(p.stages["run"].self_ns, 40);
        assert_eq!(p.stages["predict"].self_ns, 15);
        assert_eq!(p.stages["decode"].self_ns, 45);
        // Parent/child accounting: self times sum to the wall clock.
        let self_sum: u64 = p.stages.values().map(|s| s.self_ns).sum();
        assert_eq!(self_sum, p.wall_ns);
    }

    #[test]
    fn repeated_stages_aggregate() {
        let mut ev: Vec<Event> = Vec::new();
        for (id, d) in [(1, 10u64), (2, 30), (3, 20)] {
            ev.extend(span(id, None, "item", d));
        }
        let p = Profile::from_events(&ev);
        let st = &p.stages["item"];
        assert_eq!(st.count, 3);
        assert_eq!(st.total_ns, 60);
        assert_eq!(st.min_ns, 10);
        assert_eq!(st.max_ns, 30);
        assert_eq!(p.wall_ns, 60);
    }

    #[test]
    fn markdown_contains_stages_metrics_and_meta() {
        let mut ev: Vec<Event> = span(1, None, "run", 2_000_000).to_vec();
        ev.push(Event::Counter {
            name: "eval.items".into(),
            value: 24,
        });
        ev.push(Event::Gauge {
            name: "ex_pct".into(),
            value: 61.5,
        });
        ev.push(Event::Histogram {
            name: "lat".into(),
            count: 1,
            sum: 7,
            min: 7,
            max: 7,
            buckets: vec![(3, 1)],
        });
        ev.push(Event::Meta {
            name: "experiment.e1".into(),
            fields: vec![("seed".into(), "2023".into())],
        });
        let md = Profile::from_events(&ev).to_markdown();
        assert!(md.contains("| stage |"), "{md}");
        assert!(md.contains("| run | 1 |"), "{md}");
        assert!(md.contains("| eval.items | 24 |"), "{md}");
        assert!(md.contains("ex_pct"), "{md}");
        assert!(md.contains("| lat | 1 |"), "{md}");
        assert!(md.contains("experiment.e1"), "{md}");
        assert!(md.contains("seed=2023"), "{md}");
    }

    #[test]
    fn unclosed_spans_are_ignored() {
        let ev = vec![Event::SpanStart {
            id: 1,
            parent: None,
            name: "zombie".into(),
            t_ns: 0,
        }];
        let p = Profile::from_events(&ev);
        assert!(p.stages.is_empty());
        assert_eq!(p.wall_ns, 0);
    }

    fn base_and_slow() -> (Profile, Profile) {
        let mut base: Vec<Event> = Vec::new();
        let mut slow: Vec<Event> = Vec::new();
        // run(1000) -> predict(600); slow run(1400) -> predict(1000).
        for (evs, run, predict) in [(&mut base, 1000u64, 600u64), (&mut slow, 1400, 1000)] {
            evs.push(Event::SpanStart {
                id: 1,
                parent: None,
                name: "run".into(),
                t_ns: 0,
            });
            evs.extend(span(2, Some(1), "predict", predict));
            evs.push(Event::SpanEnd {
                id: 1,
                name: "run".into(),
                dur_ns: run,
            });
            evs.push(Event::Counter {
                name: "eval.items".into(),
                value: 3,
            });
        }
        slow.push(Event::Counter {
            name: "eval.retries".into(),
            value: 2,
        });
        (Profile::from_events(&base), Profile::from_events(&slow))
    }

    #[test]
    fn diff_flags_only_regressed_stages() {
        let (b, n) = base_and_slow();
        let d = ProfileDiff::between(&b, &n);
        assert_eq!(d.base_wall_ns, 1000);
        assert_eq!(d.new_wall_ns, 1400);
        // predict self: 600 -> 1000 (+66.7%); run self: 400 -> 400 (0%).
        let r = d.regressions(10.0);
        assert_eq!(r.len(), 1, "{r:?}");
        assert_eq!(r[0].0, "predict");
        assert!((r[0].1 - 66.666).abs() < 0.1, "{r:?}");
        assert!(d.regressions(100.0).is_empty());
        // Identical traces never regress.
        assert!(ProfileDiff::between(&b, &b).regressions(0.0).is_empty());
    }

    #[test]
    fn diff_orders_worst_stage_first() {
        let (b, n) = base_and_slow();
        let d = ProfileDiff::between(&b, &n);
        assert_eq!(d.stages[0].name, "predict");
        assert_eq!(d.stages[0].delta_ns(), 400);
        assert_eq!(d.stages[1].name, "run");
        assert_eq!(d.stages[1].delta_ns(), 0);
    }

    #[test]
    fn diff_handles_new_and_vanished_stages() {
        let only_a = Profile::from_events(&span(1, None, "a", 100));
        let only_b = Profile::from_events(&span(1, None, "b", 100));
        let d = ProfileDiff::between(&only_a, &only_b);
        let a = d.stages.iter().find(|s| s.name == "a").unwrap();
        let b = d.stages.iter().find(|s| s.name == "b").unwrap();
        assert!(a.new.is_none());
        assert!(b.base.is_none());
        assert_eq!(b.delta_pct(), None, "new stage has no baseline");
        // Neither direction trips the gate: no baseline to regress against.
        assert!(d.regressions(0.0).is_empty());
    }

    #[test]
    fn diff_markdown_contains_stage_counter_histogram_deltas() {
        let (b, mut n) = base_and_slow();
        n.histograms
            .entry("lat".into())
            .or_default()
            .merge(&Histogram::from_parts(1, 7, 7, 7, &[(3, 1)]));
        let md = ProfileDiff::between(&b, &n).to_markdown();
        assert!(md.contains("PROFILE DIFF"), "{md}");
        assert!(md.contains("| predict | 1→1 |"), "{md}");
        assert!(md.contains("+66.7"), "{md}");
        assert!(md.contains("| eval.items | 3 | 3 | +0 |"), "{md}");
        assert!(md.contains("| eval.retries | 0 | 2 | +2 |"), "{md}");
        assert!(md.contains("| lat | 0→1 |"), "{md}");
        assert!(md.contains("+40.0%"), "wall delta header: {md}");
    }

    #[test]
    fn fmt_ns_delta_signs() {
        assert_eq!(fmt_ns_delta(1_500_000), "+1.5ms");
        assert_eq!(fmt_ns_delta(-300), "-300ns");
        assert_eq!(fmt_ns_delta(0), "0ns");
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.21s");
    }
}
