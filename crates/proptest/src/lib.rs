//! Offline drop-in replacement for the subset of the `proptest` 1.x API
//! used by this workspace's property tests.
//!
//! The build container has no network access, so the real crate can never
//! resolve. This shim keeps every `proptest! { ... }` block compiling and
//! running: strategies are samplers driven by a deterministic per-case
//! seed, `prop_assert*` macros panic with the formatted message, and the
//! runner executes `ProptestConfig::cases` cases per test. There is no
//! shrinking — a failing case reports its case index and seed instead.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (resampling on rejection).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Build a recursive strategy: `self` generates leaves and `recurse`
    /// wraps an inner strategy into a deeper one, up to `depth` levels.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(cur.clone()).boxed();
            // Mix leaves back in so tree sizes vary below the depth cap.
            cur = Union::new(vec![(1, leaf.clone()), (2, deeper)]).boxed();
        }
        cur
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.0.sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive samples",
            self.reason
        );
    }
}

/// Weighted union of same-valued strategies (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f64, f32);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Sample an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Strategy for [`Arbitrary`] types (backs [`any`]).
pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

// ---- string pattern strategies ----

/// One `class{m,n}` element of a string pattern.
struct PatternPart {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Parse the small regex subset the workspace uses: character classes
/// (`[a-z0-9_%]`), the printable-character escape `\PC`, literal
/// characters, each optionally followed by a `{m,n}` repetition.
fn parse_pattern(pat: &str) -> Vec<PatternPart> {
    let mut parts = Vec::new();
    let mut chars = pat.chars().peekable();
    while let Some(c) = chars.next() {
        let set: Vec<char> = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                for c in chars.by_ref() {
                    match c {
                        ']' => break,
                        '-' if prev.is_some() => {
                            // Range: extend from prev to the next char.
                            prev = Some('-');
                            continue;
                        }
                        c => {
                            if prev == Some('-') && !set.is_empty() {
                                let lo = *set.last().unwrap();
                                for x in (lo as u32 + 1)..=(c as u32) {
                                    set.push(char::from_u32(x).unwrap());
                                }
                            } else {
                                set.push(c);
                            }
                            prev = Some(c);
                        }
                    }
                }
                set
            }
            '\\' => match chars.next() {
                Some('P') => {
                    assert_eq!(
                        chars.next(),
                        Some('C'),
                        "unsupported escape in pattern {pat:?}"
                    );
                    // \PC = "not a control character"; ASCII printable is a
                    // faithful-enough subset for fuzzing.
                    (0x20u32..0x7F)
                        .map(|x| char::from_u32(x).unwrap())
                        .collect()
                }
                Some(c) => vec![c],
                None => panic!("dangling escape in pattern {pat:?}"),
            },
            c => vec![c],
        };
        assert!(!set.is_empty(), "empty character class in pattern {pat:?}");
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
            let (lo, hi) = spec
                .split_once(',')
                .unwrap_or((spec.as_str(), spec.as_str()));
            (lo.trim().parse().unwrap(), hi.trim().parse().unwrap())
        } else {
            (1, 1)
        };
        parts.push(PatternPart {
            chars: set,
            min,
            max,
        });
    }
    parts
}

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for part in parse_pattern(self) {
            let n = rng.gen_range(part.min..=part.max);
            for _ in 0..n {
                out.push(part.chars[rng.gen_range(0..part.chars.len())]);
            }
        }
        out
    }
}

/// `Option` strategies, mirroring `proptest::option`.
pub mod option {
    use super::{BoxedStrategy, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Option<T>` with a fixed `Some` probability.
    pub struct OptionStrategy<T> {
        inner: BoxedStrategy<T>,
        p_some: f64,
    }

    impl<T> Strategy for OptionStrategy<T> {
        type Value = Option<T>;
        fn sample(&self, rng: &mut StdRng) -> Option<T> {
            rng.gen_bool(self.p_some).then(|| self.inner.sample(rng))
        }
    }

    /// `Some` three times out of four (matching upstream's default bias).
    pub fn of<S: Strategy + 'static>(inner: S) -> OptionStrategy<S::Value> {
        weighted(0.75, inner)
    }

    /// `Some` with probability `p_some`.
    pub fn weighted<S: Strategy + 'static>(p_some: f64, inner: S) -> OptionStrategy<S::Value> {
        OptionStrategy {
            inner: inner.boxed(),
            p_some,
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{BoxedStrategy, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec<T>` with length drawn from a range.
    pub struct VecStrategy<T> {
        inner: BoxedStrategy<T>,
        len: std::ops::Range<usize>,
    }

    impl<T> Strategy for VecStrategy<T> {
        type Value = Vec<T>;
        fn sample(&self, rng: &mut StdRng) -> Vec<T> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.inner.sample(rng)).collect()
        }
    }

    /// `Vec` of `inner` values with a length in `len`.
    pub fn vec<S: Strategy + 'static>(
        inner: S,
        len: std::ops::Range<usize>,
    ) -> VecStrategy<S::Value> {
        VecStrategy {
            inner: inner.boxed(),
            len,
        }
    }
}

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Drive one property over `cases` deterministic cases.
///
/// Used by the [`proptest!`] macro; not part of the public proptest API.
pub fn run_cases(name: &str, cases: u32, mut case: impl FnMut(&mut StdRng)) {
    for i in 0..cases {
        // Deterministic per-case seed: stable across runs and platforms.
        let seed = 0x70726F70u64 ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
        let mut rng = StdRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        if let Err(panic) = result {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property {name} failed at case {i}/{cases} (seed {seed:#x}): {msg}");
        }
    }
}

/// Mirror of `proptest::prop_oneof!`: weighted or unweighted strategy union.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// Mirror of `proptest::prop_assert!`: panics (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Mirror of `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Mirror of `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Mirror of the `proptest! { ... }` test-block macro.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), cfg.cases, |rng| {
                    $(let $arg = $crate::Strategy::sample(&$strat, rng);)+
                    $body
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z][a-z0-9_]{0,7}", &mut rng);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn printable_class_is_printable() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let s = Strategy::sample(&"\\PC{0,40}", &mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let strat = prop_oneof![9 => Just(1u8), 1 => Just(2u8)];
        let mut rng = StdRng::seed_from_u64(3);
        let ones = (0..1000)
            .filter(|_| Strategy::sample(&strat, &mut rng) == 1)
            .count();
        assert!(ones > 800, "{ones}");
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        fn leaves_in_range(t: &Tree) -> bool {
            match t {
                Tree::Leaf(v) => (0..10).contains(v),
                Tree::Node(l, r) => leaves_in_range(l) && leaves_in_range(r),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            });
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let t = Strategy::sample(&strat, &mut rng);
            assert!(depth(&t) <= 3);
            assert!(leaves_in_range(&t));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generated_test_runs(x in 0i64..10, flag in any::<bool>()) {
            prop_assert!((0..10).contains(&x));
            prop_assert_eq!(flag as i64 * flag as i64, flag as i64);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_case() {
        crate::run_cases("always_fails", 4, |_| panic!("boom"));
    }
}
