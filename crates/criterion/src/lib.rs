//! Offline drop-in replacement for the subset of the `criterion` 0.5 API
//! used by this workspace's benches.
//!
//! The build container has no network access, so the real crate can never
//! resolve. This shim keeps `criterion_group!`/`criterion_main!` benches
//! compiling and producing useful numbers: each benchmark is warmed up,
//! then timed over a fixed number of samples; the median per-iteration
//! time is printed. Under `cargo test` (which passes `--test` to
//! `harness = false` targets) every benchmark runs exactly one iteration
//! as a smoke test.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    /// Median per-iteration time, filled in by [`Bencher::iter`].
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` repeatedly and record the median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut samples = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(f());
            samples.push(t0.elapsed());
        }
        samples.sort_unstable();
        self.elapsed = samples[samples.len() / 2];
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes `harness = false` bench targets with `--test` from
        // `cargo test`; fall back to a single iteration there so the suite
        // stays fast while still exercising every bench body.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 50,
            test_mode,
        }
    }
}

impl Criterion {
    /// Time one benchmark.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let name = name.as_ref();
        let iters = if self.test_mode {
            1
        } else {
            self.sample_size as u64
        };
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        // Warm-up pass.
        if !self.test_mode {
            f(&mut b);
        }
        f(&mut b);
        println!("{name:<40} {:>12.3} µs/iter", b.elapsed.as_secs_f64() * 1e6);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { parent: self }
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n.max(1);
        self
    }

    /// Time one benchmark within the group.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        self.parent.bench_function(name, f);
        self
    }

    /// Close the group (restores the default sample size).
    pub fn finish(self) {
        self.parent.sample_size = 50;
    }
}

/// Declare a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion {
            sample_size: 3,
            test_mode: true,
        };
        let mut ran = 0;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran >= 1);
    }

    #[test]
    fn groups_apply_sample_size_and_reset_on_finish() {
        let mut c = Criterion {
            sample_size: 50,
            test_mode: true,
        };
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("x", |b| b.iter(|| 1 + 1));
            g.finish();
        }
        assert_eq!(c.sample_size, 50);
    }
}
