//! The serving core: admission, worker pool, retry, cache, outcomes.
//!
//! [`serve`] runs a batch of requests against any [`Predictor`] behind a
//! bounded queue and a worker pool, with per-request deadlines, retry with
//! exponential backoff against injected [`simllm::faults`] faults, and an
//! LRU prediction cache with request coalescing.
//!
//! ## Determinism model
//!
//! Every number a serve-bench report prints must be identical across runs
//! *and across worker counts*, so the serving layer separates two clocks:
//!
//! * **Virtual time** drives everything reported. Admission (shedding) is
//!   decided by a deterministic single-server queueing model
//!   ([`AdmissionModel`]) fed with simulated per-request service times;
//!   latencies are simulated milliseconds derived purely from the request
//!   key, its fault plan, and backoff — never from wall clocks.
//! * **Real time** is only how the work gets done: requests genuinely flow
//!   through the bounded queue into real worker threads that run the
//!   predictor (under `catch_unwind` — a panicking predictor becomes a
//!   typed failure, never a crash). Real scheduling affects throughput of
//!   the benchmark process, not any reported number.
//!
//! The admission model is intentionally worker-count independent (one
//! nominal server with a buffer of `queue_capacity`): reports from
//! `--workers 1` and `--workers 8` are byte-identical and therefore
//! comparable. Real backpressure on the bounded queue is still exercised —
//! producers block on a full queue, and [`BoundedQueue::try_push`] gives
//! the non-blocking shed path (unit-tested in this crate).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dail_core::{PredictCtx, Predictor};
use simllm::{FaultConfig, FaultInjector};
use spider_gen::ExampleItem;

use crate::cache::{CacheStats, Lookup, PredictionCache, Slot};
use crate::queue::BoundedQueue;

/// Simulated service cost of a request served from the cache, in ms.
const CACHE_HIT_COST_MS: u64 = 1;

/// Configuration of the serving layer.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing predictions.
    pub workers: usize,
    /// Bounded work-queue capacity (also the admission-model buffer).
    pub queue_capacity: usize,
    /// Maximum resident prediction-cache entries.
    pub cache_capacity: usize,
    /// Attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `backoff_base_ms << (n - 1)` simulated ms.
    pub backoff_base_ms: u64,
    /// Per-request deadline on simulated service time, in ms.
    pub deadline_ms: u64,
    /// Scale simulated service time into real sleeps (0.0 = don't sleep;
    /// useful to watch the pool under realistic pacing).
    pub time_scale: f64,
    /// Question representation name, part of the cache key.
    pub repr: String,
    /// Few-shot example count, part of the cache key.
    pub shots: usize,
    /// Fault-injection knobs applied to every attempt.
    pub faults: FaultConfig,
    /// Head-sampling rate for request traces in `[0, 1]`. The decision
    /// is deterministic per request (`obskit::trace::sample` keyed on
    /// `faults.seed` and the request index), so the same seed always
    /// traces the same requests. Only consulted when an enabled global
    /// recorder is installed; never affects any served outcome.
    pub trace_sample: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 32,
            cache_capacity: 4096,
            max_attempts: 4,
            backoff_base_ms: 25,
            deadline_ms: 2_000,
            time_scale: 0.0,
            repr: "code".into(),
            shots: 0,
            faults: FaultConfig::default(),
            trace_sample: 1.0,
        }
    }
}

/// Terminal result of one served request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// A prediction was produced.
    Ok {
        /// The served SQL (possibly fault-corrupted).
        sql: String,
        /// Simulated end-to-end latency (queue wait + service), in ms.
        latency_ms: u64,
        /// Attempts consumed, including the successful one.
        attempts: u32,
    },
    /// Shed at admission: the system was over capacity.
    Overloaded,
    /// The retry sequence ran past the deadline.
    DeadlineExceeded {
        /// Simulated end-to-end latency at the point of expiry, in ms.
        latency_ms: u64,
        /// Attempts consumed before expiry.
        attempts: u32,
    },
    /// Every attempt drew a transient fault (or the predictor panicked).
    Failed {
        /// Simulated end-to-end latency across all attempts, in ms.
        latency_ms: u64,
        /// Attempts consumed.
        attempts: u32,
    },
}

/// One request in a batch: which dev item, and when it arrives (virtual ms).
#[derive(Debug, Clone, Copy)]
pub struct ServeReq {
    /// Index into the `items` slice passed to [`serve`].
    pub item_idx: usize,
    /// Arrival time on the virtual clock, in ms.
    pub arrival_ms: u64,
    /// Tenant id for per-tenant metrics slicing (rendered `t{n}` in
    /// [`obskit::tsdb`] labels). Purely an observability dimension: it
    /// never affects admission, scheduling or the served result.
    pub tenant: u32,
}

/// Aggregate counters for one [`serve`] batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Requests offered.
    pub submitted: u64,
    /// Requests admitted past the load-shedder.
    pub admitted: u64,
    /// Requests shed with [`Outcome::Overloaded`].
    pub shed: u64,
    /// Requests resolved [`Outcome::Ok`].
    pub ok: u64,
    /// Requests resolved [`Outcome::Failed`].
    pub failed: u64,
    /// Requests resolved [`Outcome::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Retried attempts across all unique computations.
    pub retries: u64,
    /// Predictor panics caught (reported, never propagated).
    pub panics: u64,
    /// Cache counters.
    pub cache: CacheStats,
    /// Simulated queue-wait per admitted request, in request order.
    pub wait_ms: Vec<u64>,
    /// Simulated service time per admitted request, in request order.
    pub service_ms: Vec<u64>,
    /// Simulated total latency per admitted request, in request order.
    pub total_ms: Vec<u64>,
    /// Virtual time at which the last admitted request completes.
    pub makespan_ms: u64,
}

/// Outcomes plus stats for one [`serve`] batch.
#[derive(Debug)]
pub struct ServeOutput {
    /// One outcome per input request, in input order.
    pub outcomes: Vec<Outcome>,
    /// Aggregate counters.
    pub stats: ServeStats,
    /// One trace context per input request, in input order, parented
    /// under that request's `servekit.request` span. Callers use these
    /// to attach post-serve work (e.g. EX scoring) to the request tree;
    /// unsampled requests carry a no-op context.
    pub traces: Vec<obskit::TraceContext>,
}

/// Deterministic single-server admission model driven by the virtual
/// clock. A request is shed when the model's system (one in service +
/// `buffer` waiting) is full at its arrival; otherwise it reports the
/// simulated queueing delay. Worker count deliberately does not appear —
/// see the module docs.
pub struct AdmissionModel {
    buffer: usize,
    finish_times: std::collections::VecDeque<u64>,
    last_finish: u64,
}

impl AdmissionModel {
    /// Model with `buffer` waiting slots (the real queue's capacity).
    pub fn new(buffer: usize) -> AdmissionModel {
        AdmissionModel {
            buffer: buffer.max(1),
            finish_times: std::collections::VecDeque::new(),
            last_finish: 0,
        }
    }

    /// Offer a request arriving at `arrival_ms` needing `service_ms`.
    /// Returns the simulated queue wait, or `None` to shed.
    pub fn offer(&mut self, arrival_ms: u64, service_ms: u64) -> Option<u64> {
        while let Some(&f) = self.finish_times.front() {
            if f <= arrival_ms {
                self.finish_times.pop_front();
            } else {
                break;
            }
        }
        if self.finish_times.len() > self.buffer {
            return None;
        }
        let start = arrival_ms.max(self.last_finish);
        let finish = start + service_ms;
        self.last_finish = finish;
        self.finish_times.push_back(finish);
        Some(start - arrival_ms)
    }

    /// Virtual completion time of the last admitted request.
    pub fn makespan_ms(&self) -> u64 {
        self.last_finish
    }
}

/// Cache key: the full identity of a prediction.
pub fn cache_key(db_id: &str, question: &str, repr: &str, shots: usize) -> String {
    format!("{db_id}|{question}|{repr}|{shots}")
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Baseline simulated service cost of computing one prediction, in ms.
fn base_cost_ms(key: &str) -> u64 {
    20 + fnv(key) % 45
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SimKind {
    Success { corrupt: bool },
    Exhausted,
    Deadline,
}

/// The full simulated attempt sequence for one key: how many attempts run,
/// the simulated service time, and how the sequence ends. Pure in
/// `(key, cfg)`, so admission (load-gen thread) and execution (worker
/// threads) agree without communicating.
#[derive(Debug, Clone, Copy)]
struct AttemptSim {
    attempts: u32,
    service_ms: u64,
    kind: SimKind,
}

fn simulate_attempts(inj: &FaultInjector, key: &str, cfg: &ServeConfig) -> AttemptSim {
    let base = base_cost_ms(key);
    let mut total = 0u64;
    let max_attempts = cfg.max_attempts.max(1);
    for attempt in 0..max_attempts {
        if attempt > 0 {
            total += cfg.backoff_base_ms << (attempt - 1);
        }
        let plan = inj.plan(key, attempt);
        total += base + plan.spike_ms;
        if total > cfg.deadline_ms {
            return AttemptSim {
                attempts: attempt + 1,
                service_ms: total,
                kind: SimKind::Deadline,
            };
        }
        if !plan.transient_error {
            return AttemptSim {
                attempts: attempt + 1,
                service_ms: total,
                kind: SimKind::Success {
                    corrupt: plan.corrupt,
                },
            };
        }
    }
    AttemptSim {
        attempts: max_attempts,
        service_ms: total,
        kind: SimKind::Exhausted,
    }
}

/// Cache value: the key's terminal result, without per-request latency
/// (each duplicate reports its own simulated latency).
#[derive(Debug, Clone)]
enum Served {
    Ok { sql: String, attempts: u32 },
    Failed { attempts: u32 },
    DeadlineExceeded { attempts: u32 },
}

struct WorkItem {
    key: String,
    item_idx: usize,
    sim: AttemptSim,
    slot: Arc<Slot<Served>>,
    /// Trace context of the request that *owns* this computation
    /// (coalesced duplicates share the owner's attempt spans).
    trace: obskit::TraceContext,
}

/// How each request was routed at submission time.
enum Route {
    Shed,
    Cached(Arc<Slot<Served>>),
}

/// Serve a batch of requests against `predictor`.
///
/// `items` is the dev pool; each request names an item by index. Returns
/// one [`Outcome`] per request plus aggregate [`ServeStats`]. Every
/// reported number is deterministic given the request stream and config —
/// independent of worker count and thread scheduling.
pub fn serve(
    predictor: &(dyn Predictor + Sync),
    ctx: &PredictCtx<'_>,
    items: &[ExampleItem],
    reqs: &[ServeReq],
    cfg: &ServeConfig,
) -> ServeOutput {
    let span = if obskit::enabled() {
        Some(obskit::global().span("servekit.serve"))
    } else {
        None
    };
    let serve_span_id = span.as_ref().and_then(|s| s.id());

    let inj = FaultInjector::new(cfg.faults);
    let cache: PredictionCache<Served> = PredictionCache::new(cfg.cache_capacity);
    let queue: BoundedQueue<WorkItem> = BoundedQueue::new(cfg.queue_capacity);
    let mut admission = AdmissionModel::new(cfg.queue_capacity);
    let retries = AtomicU64::new(0);
    let panics = AtomicU64::new(0);

    let mut stats = ServeStats {
        submitted: reqs.len() as u64,
        ..ServeStats::default()
    };
    let mut routes: Vec<Route> = Vec::with_capacity(reqs.len());
    // Per-request trace state: the `servekit.request` root span (held
    // open until outcomes are assembled) and the context children hang
    // off. Both indexed by request order.
    let mut req_spans: Vec<obskit::Span> = Vec::with_capacity(reqs.len());
    let mut traces: Vec<obskit::TraceContext> = Vec::with_capacity(reqs.len());
    let mut sampled_count = 0u64;
    // Simulated service time of each key's *first admitted* occurrence;
    // duplicates cost [`CACHE_HIT_COST_MS`]. Tracked independently of the
    // cache so admission stays a pure function of the request stream.
    let mut first_admitted: HashMap<&str, ()> = HashMap::new();
    let mut keys: Vec<String> = Vec::with_capacity(reqs.len());
    for req in reqs {
        let item = &items[req.item_idx];
        let question = if ctx.realistic {
            &item.question_realistic
        } else {
            &item.question
        };
        keys.push(cache_key(&item.db_id, question, &cfg.repr, cfg.shots));
    }

    std::thread::scope(|scope| {
        for _ in 0..cfg.workers.max(1) {
            let queue = &queue;
            let inj = &inj;
            let retries = &retries;
            let panics = &panics;
            scope.spawn(move || {
                while let Some(work) = queue.pop() {
                    let served =
                        run_attempts(predictor, ctx, &items[work.item_idx], inj, &work, cfg);
                    retries.fetch_add(u64::from(work.sim.attempts - 1), Ordering::Relaxed);
                    if cfg.time_scale > 0.0 {
                        let ms = (work.sim.service_ms as f64 * cfg.time_scale) as u64;
                        std::thread::sleep(std::time::Duration::from_millis(ms));
                    }
                    if matches!(served, Served::Failed { .. })
                        && matches!(work.sim.kind, SimKind::Success { .. })
                    {
                        // The simulation said success but the predictor
                        // panicked: count it (the report asserts zero).
                        panics.fetch_add(1, Ordering::Relaxed);
                    }
                    work.slot.fill(served);
                }
            });
        }

        // Submit sequentially on this thread: admission and cache routing
        // happen in request order, which is what makes every counter
        // deterministic.
        for (i, req) in reqs.iter().enumerate() {
            let sampled = obskit::enabled()
                && obskit::trace::sample(cfg.faults.seed, i as u64, cfg.trace_sample);
            sampled_count += u64::from(sampled);
            let root = obskit::TraceContext::root(i as u64, sampled, serve_span_id);
            let (req_span, rctx) = root.span("servekit.request");
            req_spans.push(req_span);
            traces.push(rctx);

            let key = keys[i].as_str();
            let is_first = !first_admitted.contains_key(key);
            let service_ms = if is_first {
                simulate_attempts(&inj, key, cfg).service_ms
            } else {
                CACHE_HIT_COST_MS
            };
            let offered = {
                let (_adm_span, actx) = rctx.span("servekit.admission");
                let offered = admission.offer(req.arrival_ms, service_ms);
                actx.meta(
                    "servekit.admission.decision",
                    &[
                        ("request", i.to_string()),
                        (
                            "decision",
                            if offered.is_some() { "admit" } else { "shed" }.to_string(),
                        ),
                    ],
                );
                offered
            };
            if obskit::tsdb::installed() {
                let tenant = format!("t{}", req.tenant);
                obskit::tsdb::counter(
                    "servekit.requests",
                    &[
                        ("db", items[req.item_idx].db_id.as_str()),
                        ("outcome", if offered.is_some() { "admit" } else { "shed" }),
                        ("tenant", &tenant),
                    ],
                    req.arrival_ms,
                    1,
                );
            }
            let Some(wait_ms) = offered else {
                stats.shed += 1;
                routes.push(Route::Shed);
                continue;
            };
            first_admitted.insert(key, ());
            stats.admitted += 1;
            stats.wait_ms.push(wait_ms);
            stats.service_ms.push(service_ms);
            stats.total_ms.push(wait_ms + service_ms);
            {
                // Simulated queue wait: the span records the structure
                // (its duration is wall-clock; `wait_ms` is the number
                // every report uses).
                let (_wait_span, wctx) = rctx.span("servekit.queue_wait");
                wctx.meta(
                    "servekit.queue_wait.simulated",
                    &[("wait_ms", wait_ms.to_string())],
                );
            }
            let (cache_span, cctx) = rctx.span("servekit.cache_lookup");
            let lookup = cache.begin(key);
            cctx.meta(
                "servekit.cache_lookup.route",
                &[(
                    "route",
                    match lookup {
                        Lookup::Owner(_) => "owner",
                        Lookup::Shared(_) => "shared",
                    }
                    .to_string(),
                )],
            );
            drop(cache_span);
            match lookup {
                Lookup::Owner(slot) => {
                    let work = WorkItem {
                        key: key.to_string(),
                        item_idx: req.item_idx,
                        sim: simulate_attempts(&inj, key, cfg),
                        slot: Arc::clone(&slot),
                        trace: rctx,
                    };
                    // Blocking push: real backpressure. Shedding was
                    // already decided by the admission model above.
                    if queue.push(work).is_err() {
                        unreachable!("queue closed while submitting");
                    }
                    routes.push(Route::Cached(slot));
                }
                Lookup::Shared(slot) => routes.push(Route::Cached(slot)),
            }
        }
        queue.close();
    });

    stats.makespan_ms = admission.makespan_ms();
    stats.retries = retries.load(Ordering::Relaxed);
    stats.panics = panics.load(Ordering::Relaxed);
    stats.cache = cache.stats();

    // All workers have joined, so every slot is filled; assemble outcomes.
    let mut outcomes = Vec::with_capacity(reqs.len());
    let mut admitted_idx = 0usize;
    for (i, route) in routes.iter().enumerate() {
        match route {
            Route::Shed => outcomes.push(Outcome::Overloaded),
            Route::Cached(slot) => {
                let latency_ms = stats.total_ms[admitted_idx];
                admitted_idx += 1;
                let outcome = match slot.wait() {
                    Served::Ok { sql, attempts } => {
                        stats.ok += 1;
                        Outcome::Ok {
                            sql,
                            latency_ms,
                            attempts,
                        }
                    }
                    Served::Failed { attempts } => {
                        stats.failed += 1;
                        Outcome::Failed {
                            latency_ms,
                            attempts,
                        }
                    }
                    Served::DeadlineExceeded { attempts } => {
                        stats.deadline_exceeded += 1;
                        Outcome::DeadlineExceeded {
                            latency_ms,
                            attempts,
                        }
                    }
                };
                if obskit::tsdb::installed() {
                    let req = &reqs[i];
                    let tenant = format!("t{}", req.tenant);
                    // Completion time on the virtual clock: arrival plus
                    // the simulated end-to-end latency.
                    let done_ms = req.arrival_ms + latency_ms;
                    obskit::tsdb::observe(
                        "servekit.latency_ms",
                        &[
                            ("db", items[req.item_idx].db_id.as_str()),
                            ("tenant", &tenant),
                        ],
                        done_ms,
                        latency_ms,
                        traces[i].is_recording().then_some(i as u64),
                    );
                    let attempts = match &outcome {
                        Outcome::Ok { attempts, .. }
                        | Outcome::Failed { attempts, .. }
                        | Outcome::DeadlineExceeded { attempts, .. } => *attempts,
                        Outcome::Overloaded => 1,
                    };
                    if attempts > 1 {
                        obskit::tsdb::counter(
                            "servekit.retry",
                            &[("tenant", &tenant)],
                            done_ms,
                            u64::from(attempts - 1),
                        );
                    }
                }
                outcomes.push(outcome);
            }
        }
    }

    // Close every request span before the batch span: outcomes are
    // assembled, so the per-request trees are complete.
    drop(req_spans);

    if obskit::enabled() {
        let g = obskit::global();
        g.add_counter("servekit.submitted", stats.submitted);
        g.add_counter("servekit.admitted", stats.admitted);
        g.add_counter("servekit.shed", stats.shed);
        g.add_counter("servekit.shed.queue_full", stats.shed);
        g.add_counter("servekit.failed.retries_exhausted", stats.failed);
        g.add_counter("servekit.failed.deadline_exceeded", stats.deadline_exceeded);
        g.add_counter("servekit.trace.sampled", sampled_count);
        g.add_counter("servekit.trace.unsampled", stats.submitted - sampled_count);
        g.add_counter("servekit.retries", stats.retries);
        g.add_counter("servekit.panics", stats.panics);
        for &w in &stats.wait_ms {
            g.observe("servekit.latency.wait_ms", w);
        }
        for &s in &stats.service_ms {
            g.observe("servekit.latency.service_ms", s);
        }
        for &t in &stats.total_ms {
            g.observe("servekit.latency.total_ms", t);
        }
    }
    drop(span);

    ServeOutput {
        outcomes,
        stats,
        traces,
    }
}

/// Execute the simulated attempt sequence for one unique key: run the
/// predictor once on success (under `catch_unwind`), apply the corruption
/// fault, and map deadline/exhaustion to typed failures.
///
/// When the owning request is traced, every simulated attempt opens a
/// `servekit.attempt` span under the request span, and the predictor runs
/// under the *final* attempt's context so the whole pipeline (prompt
/// build, selection, model call) lands inside that attempt's subtree.
fn run_attempts(
    predictor: &(dyn Predictor + Sync),
    ctx: &PredictCtx<'_>,
    item: &ExampleItem,
    inj: &FaultInjector,
    work: &WorkItem,
    _cfg: &ServeConfig,
) -> Served {
    let attempts = work.sim.attempts;
    // Spans for the attempts that drew a transient fault (or ran past the
    // deadline): open-and-close, purely structural.
    let faulted_attempts = match work.sim.kind {
        SimKind::Success { .. } => attempts - 1,
        SimKind::Deadline | SimKind::Exhausted => attempts,
    };
    for n in 0..faulted_attempts {
        let (_attempt_span, actx) = work.trace.span("servekit.attempt");
        actx.meta(
            "servekit.attempt.outcome",
            &[
                ("attempt", n.to_string()),
                (
                    "outcome",
                    match work.sim.kind {
                        SimKind::Deadline if n + 1 == attempts => "deadline",
                        _ => "transient_error",
                    }
                    .to_string(),
                ),
            ],
        );
    }
    match work.sim.kind {
        SimKind::Deadline => Served::DeadlineExceeded { attempts },
        SimKind::Exhausted => Served::Failed { attempts },
        SimKind::Success { corrupt } => {
            let (_attempt_span, actx) = work.trace.span("servekit.attempt");
            let traced_ctx = PredictCtx {
                trace: actx,
                ..*ctx
            };
            match catch_unwind(AssertUnwindSafe(|| predictor.predict(&traced_ctx, item))) {
                Ok(pred) => {
                    let sql = if corrupt {
                        inj.corrupt_sql(&pred.sql, &work.key, attempts - 1)
                    } else {
                        pred.sql
                    };
                    Served::Ok { sql, attempts }
                }
                // A panicking predictor becomes a typed failure; the
                // caller counts it so the report can assert "panics: 0".
                Err(_) => Served::Failed { attempts },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_model_sheds_when_system_is_full() {
        let mut m = AdmissionModel::new(2);
        // All arrive at t=0 with 100ms service: 1 in service + 2 waiting
        // admitted, the rest shed.
        assert_eq!(m.offer(0, 100), Some(0));
        assert_eq!(m.offer(0, 100), Some(100));
        assert_eq!(m.offer(0, 100), Some(200));
        assert_eq!(m.offer(0, 100), None);
        // After the backlog drains, admission resumes.
        assert_eq!(m.offer(150, 100), Some(150), "one slot freed at t=100");
        assert_eq!(m.offer(1000, 50), Some(0), "idle system admits instantly");
        assert_eq!(m.makespan_ms(), 1050);
    }

    #[test]
    fn simulated_attempts_are_pure_and_respect_deadline() {
        let inj = FaultInjector::new(FaultConfig {
            seed: 7,
            error_rate: 0.9,
            spike_rate: 0.5,
            spike_ms: 400,
            corrupt_rate: 0.0,
        });
        let cfg = ServeConfig {
            deadline_ms: 500,
            ..ServeConfig::default()
        };
        for key in ["a", "b", "c", "d", "e", "f", "g", "h"] {
            let x = simulate_attempts(&inj, key, &cfg);
            let y = simulate_attempts(&inj, key, &cfg);
            assert_eq!(x.attempts, y.attempts);
            assert_eq!(x.service_ms, y.service_ms);
            assert_eq!(x.kind, y.kind);
            if x.kind == SimKind::Deadline {
                assert!(x.service_ms > cfg.deadline_ms);
            }
            assert!(x.attempts >= 1 && x.attempts <= cfg.max_attempts);
        }
    }

    #[test]
    fn cache_key_separates_all_components() {
        let base = cache_key("db", "q", "code", 5);
        assert_ne!(base, cache_key("db2", "q", "code", 5));
        assert_ne!(base, cache_key("db", "q2", "code", 5));
        assert_ne!(base, cache_key("db", "q", "text", 5));
        assert_ne!(base, cache_key("db", "q", "code", 0));
    }
}
