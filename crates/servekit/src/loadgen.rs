//! Seeded load generator for serve-bench.
//!
//! Produces a deterministic request stream over a dev pool: arrivals with
//! seeded inter-arrival gaps, and a duplication knob that replays
//! previously requested items (hot keys) so the prediction cache has
//! something to do. Given the same config, the stream is byte-identical.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::server::ServeReq;

/// Load-generation knobs.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Seed for arrivals and item choice.
    pub seed: u64,
    /// Number of requests to generate.
    pub requests: usize,
    /// Mean inter-arrival gap in virtual ms (gaps are uniform in
    /// `0..=2*mean`, so the mean rate is `1000 / mean_gap_ms` req/s).
    pub mean_gap_ms: u64,
    /// Probability a request replays an already-requested item.
    pub dup_rate: f64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            seed: 7,
            requests: 120,
            mean_gap_ms: 30,
            dup_rate: 0.35,
        }
    }
}

/// Generate the request stream over a pool of `n_items` dev items.
pub fn generate(cfg: &LoadConfig, n_items: usize) -> Vec<ServeReq> {
    assert!(n_items > 0, "load generation needs a non-empty dev pool");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EEDC0DE);
    let mut reqs = Vec::with_capacity(cfg.requests);
    let mut used: Vec<usize> = Vec::new();
    let mut clock = 0u64;
    for i in 0..cfg.requests {
        clock += rng.gen_range(0..=cfg.mean_gap_ms * 2);
        let item_idx = if !used.is_empty() && rng.gen_bool(cfg.dup_rate.clamp(0.0, 1.0)) {
            used[rng.gen_range(0..used.len())]
        } else {
            let idx = rng.gen_range(0..n_items);
            used.push(idx);
            idx
        };
        reqs.push(ServeReq {
            item_idx,
            arrival_ms: clock,
            tenant: tenant_of(i),
        });
    }
    reqs
}

/// Deterministic tenant assignment for request index `i` (four tenants).
///
/// A pure hash of the index — deliberately *not* drawn from the load
/// rng, so adding tenants did not shift the arrival/item stream and
/// every pre-existing golden stayed byte-identical.
pub fn tenant_of(i: usize) -> u32 {
    ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 62) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let cfg = LoadConfig::default();
        let a = generate(&cfg, 50);
        let b = generate(&cfg, 50);
        assert_eq!(a.len(), cfg.requests);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.item_idx, x.arrival_ms), (y.item_idx, y.arrival_ms));
        }
    }

    #[test]
    fn arrivals_are_monotone_and_duplicates_occur() {
        let cfg = LoadConfig {
            requests: 200,
            ..LoadConfig::default()
        };
        let reqs = generate(&cfg, 40);
        assert!(reqs.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms));
        let unique: std::collections::HashSet<usize> = reqs.iter().map(|r| r.item_idx).collect();
        assert!(
            unique.len() < reqs.len(),
            "dup_rate must produce repeated items"
        );
    }

    #[test]
    fn tenants_cover_all_four_and_are_index_determined() {
        let reqs = generate(&LoadConfig::default(), 50);
        let seen: std::collections::HashSet<u32> = reqs.iter().map(|r| r.tenant).collect();
        assert_eq!(seen, (0..4).collect());
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.tenant, tenant_of(i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&LoadConfig::default(), 50);
        let b = generate(
            &LoadConfig {
                seed: 8,
                ..LoadConfig::default()
            },
            50,
        );
        assert!(a
            .iter()
            .zip(&b)
            .any(|(x, y)| x.item_idx != y.item_idx || x.arrival_ms != y.arrival_ms));
    }
}
