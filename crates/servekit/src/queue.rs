//! Bounded MPMC work queue with blocking and non-blocking producers.
//!
//! The queue is the backpressure point of the serving layer: producers
//! either block until a slot frees up ([`BoundedQueue::push`]) or get the
//! item handed back immediately ([`BoundedQueue::try_push`]), which the
//! server surfaces as a typed `Overloaded` outcome — never a panic.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded FIFO shared between one or more producers and a worker pool.
pub struct BoundedQueue<T> {
    capacity: usize,
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Create a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    fn note_depth(&self, depth: usize) {
        if obskit::enabled() {
            obskit::global().set_gauge("servekit.queue.depth", depth as f64);
        }
    }

    /// Non-blocking enqueue. Returns the item back when the queue is full
    /// or closed — the caller sheds the load instead of waiting.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut g = self.inner.lock().unwrap();
        if g.closed || g.items.len() >= self.capacity {
            return Err(item);
        }
        g.items.push_back(item);
        let depth = g.items.len();
        drop(g);
        self.note_depth(depth);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking enqueue: waits for a slot. Returns the item back only if
    /// the queue is closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut g = self.inner.lock().unwrap();
        while !g.closed && g.items.len() >= self.capacity {
            g = self.not_full.wait(g).unwrap();
        }
        if g.closed {
            return Err(item);
        }
        g.items.push_back(item);
        let depth = g.items.len();
        drop(g);
        self.note_depth(depth);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking dequeue. Returns `None` once the queue is closed *and*
    /// drained — the worker-pool shutdown signal.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if let Some(item) = g.items.pop_front() {
                let depth = g.items.len();
                drop(g);
                self.note_depth(depth);
                self.not_full.notify_one();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.not_empty.wait(g).unwrap();
        }
    }

    /// Close the queue: producers fail fast, consumers drain then stop.
    pub fn close(&self) {
        let mut g = self.inner.lock().unwrap();
        g.closed = true;
        drop(g);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current number of queued items.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_push_sheds_when_full() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "full queue hands the item back");
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok(), "slot freed after pop");
    }

    #[test]
    fn pop_returns_none_after_close_and_drain() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(2), "closed queue rejects producers");
        assert_eq!(q.pop(), Some(1), "items enqueued before close still drain");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_push_waits_for_consumer() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        q.push(1).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(2));
        // Unblock the producer by draining; then drain its item too.
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(q.pop(), Some(1));
        producer.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(2));
    }
}
