//! Markdown serve-bench report.
//!
//! Every value comes from the deterministic [`ServeStats`](crate::ServeStats)
//! side of the serving layer, so the rendered report is byte-identical
//! across runs with the same seed — including runs with different worker
//! counts (worker count intentionally does not appear in the report).

/// Inputs to the report renderer.
#[derive(Debug, Clone)]
pub struct ReportInput {
    /// Load-generator / fault seed.
    pub seed: u64,
    /// Predictor display name.
    pub predictor: String,
    /// Fault knobs, echoed for reproducibility.
    pub error_rate: f64,
    /// Spike probability.
    pub spike_rate: f64,
    /// Spike magnitude in ms.
    pub spike_ms: u64,
    /// Corruption probability.
    pub corrupt_rate: f64,
    /// Requests offered.
    pub submitted: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests shed.
    pub shed: u64,
    /// Requests served OK.
    pub ok: u64,
    /// Requests failed after retries.
    pub failed: u64,
    /// Requests past deadline.
    pub deadline_exceeded: u64,
    /// Retried attempts.
    pub retries: u64,
    /// Caught predictor panics.
    pub panics: u64,
    /// Cache lookups served from cache (hits + coalesced).
    pub cache_served: u64,
    /// Cache misses (unique computations).
    pub cache_misses: u64,
    /// Cache evictions.
    pub cache_evictions: u64,
    /// Simulated total latency per admitted request, in ms.
    pub latencies_ms: Vec<u64>,
    /// Virtual completion time of the batch, in ms.
    pub makespan_ms: u64,
    /// Served-OK responses whose SQL is execution-accurate.
    pub ex_correct: u64,
    /// Served-OK responses scored for EX.
    pub ex_scored: u64,
}

fn pct(num: u64, den: u64) -> String {
    if den == 0 {
        "n/a".to_string()
    } else {
        format!("{:.1}%", 100.0 * num as f64 / den as f64)
    }
}

/// Render the markdown report.
///
/// Latency percentiles come from an [`obskit::Histogram`] (log2 buckets),
/// so the printed p50/p99 carry the same bucket-upper-bound semantics as
/// the exported metrics — the report and the `/metrics`-style exposition
/// can never disagree about a quantile.
pub fn render(r: &ReportInput) -> String {
    let mut hist = obskit::Histogram::new();
    for &ms in &r.latencies_ms {
        hist.record(ms);
    }
    let p50 = hist.p50();
    let p99 = hist.p99();
    let throughput = if r.makespan_ms == 0 {
        "n/a".to_string()
    } else {
        format!(
            "{:.1} req/s (virtual)",
            r.admitted as f64 * 1000.0 / r.makespan_ms as f64
        )
    };
    let ex = if r.ex_scored == 0 {
        "n/a".to_string()
    } else {
        format!(
            "{:.3} ({}/{})",
            r.ex_correct as f64 / r.ex_scored as f64,
            r.ex_correct,
            r.ex_scored
        )
    };

    let mut out = String::new();
    out.push_str("# serve-bench report\n\n");
    out.push_str(&format!(
        "predictor: {} | seed: {} | faults: error {:.2}, spike {:.2} (+{} ms), corrupt {:.2}\n\n",
        r.predictor, r.seed, r.error_rate, r.spike_rate, r.spike_ms, r.corrupt_rate
    ));
    out.push_str("| metric | value |\n|---|---|\n");
    let rows: Vec<(&str, String)> = vec![
        ("requests", r.submitted.to_string()),
        ("admitted", r.admitted.to_string()),
        ("shed", format!("{} ({})", r.shed, pct(r.shed, r.submitted))),
        ("served ok", r.ok.to_string()),
        // Unserved-cause breakdown: every non-Ok outcome lands in exactly
        // one of these three rows.
        ("shed: queue full", r.shed.to_string()),
        ("failed: retries exhausted", r.failed.to_string()),
        ("failed: deadline exceeded", r.deadline_exceeded.to_string()),
        ("retries", r.retries.to_string()),
        ("panics", r.panics.to_string()),
        (
            "cache served / miss / evicted",
            format!(
                "{} / {} / {}",
                r.cache_served, r.cache_misses, r.cache_evictions
            ),
        ),
        (
            "cache hit ratio",
            pct(r.cache_served, r.cache_served + r.cache_misses),
        ),
        ("throughput", throughput),
        ("latency p50 / p99", format!("{p50} ms / {p99} ms")),
        ("EX (served ok)", ex),
    ];
    for (k, v) in rows {
        out.push_str(&format!("| {k} | {v} |\n"));
    }
    out
}

fn json_ratio(num: u64, den: u64) -> String {
    if den == 0 {
        "null".to_string()
    } else {
        format!("{:.4}", num as f64 / den as f64)
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the report as a machine-readable JSON object (the `--json` output
/// of `serve-bench`). Quantiles come from the same [`obskit::Histogram`] as
/// the markdown report, so the two can never disagree; ratios with a zero
/// denominator render as `null` rather than a fake zero.
pub fn render_json(r: &ReportInput) -> String {
    let mut hist = obskit::Histogram::new();
    for &ms in &r.latencies_ms {
        hist.record(ms);
    }
    let throughput = if r.makespan_ms == 0 {
        "null".to_string()
    } else {
        format!("{:.4}", r.admitted as f64 * 1000.0 / r.makespan_ms as f64)
    };
    format!(
        concat!(
            "{{\n",
            "  \"seed\": {seed},\n",
            "  \"predictor\": \"{predictor}\",\n",
            "  \"requests\": {submitted},\n",
            "  \"admitted\": {admitted},\n",
            "  \"shed\": {shed},\n",
            "  \"shed_rate\": {shed_rate},\n",
            "  \"served_ok\": {ok},\n",
            "  \"failed\": {failed},\n",
            "  \"deadline_exceeded\": {deadline},\n",
            "  \"retries\": {retries},\n",
            "  \"panics\": {panics},\n",
            "  \"cache\": {{\"served\": {cs}, \"misses\": {cm}, ",
            "\"evictions\": {ce}, \"hit_ratio\": {hit}}},\n",
            "  \"throughput_rps\": {tp},\n",
            "  \"latency_ms\": {{\"p50\": {p50}, \"p99\": {p99}}},\n",
            "  \"ex\": {{\"correct\": {exc}, \"scored\": {exs}, \"rate\": {exr}}}\n",
            "}}\n"
        ),
        seed = r.seed,
        predictor = json_escape(&r.predictor),
        submitted = r.submitted,
        admitted = r.admitted,
        shed = r.shed,
        shed_rate = json_ratio(r.shed, r.submitted),
        ok = r.ok,
        failed = r.failed,
        deadline = r.deadline_exceeded,
        retries = r.retries,
        panics = r.panics,
        cs = r.cache_served,
        cm = r.cache_misses,
        ce = r.cache_evictions,
        hit = json_ratio(r.cache_served, r.cache_served + r.cache_misses),
        tp = throughput,
        p50 = hist.p50(),
        p99 = hist.p99(),
        exc = r.ex_correct,
        exs = r.ex_scored,
        exr = json_ratio(r.ex_correct, r.ex_scored),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_quantiles_match_the_histogram() {
        // The report's p50/p99 must agree with obskit's histogram
        // quantiles, bucket-upper-bound semantics included.
        let r = ReportInput {
            latencies_ms: vec![10, 20, 30, 1000],
            ..report_fixture()
        };
        let mut h = obskit::Histogram::new();
        for &v in &r.latencies_ms {
            h.record(v);
        }
        let md = render(&r);
        assert!(
            md.contains(&format!(
                "| latency p50 / p99 | {} ms / {} ms |",
                h.p50(),
                h.p99()
            )),
            "{md}"
        );
    }

    fn report_fixture() -> ReportInput {
        ReportInput {
            seed: 7,
            predictor: "DAIL-SQL(gpt-4)".into(),
            error_rate: 0.1,
            spike_rate: 0.05,
            spike_ms: 200,
            corrupt_rate: 0.02,
            submitted: 100,
            admitted: 90,
            shed: 10,
            ok: 85,
            failed: 3,
            deadline_exceeded: 2,
            retries: 12,
            panics: 0,
            cache_served: 30,
            cache_misses: 60,
            cache_evictions: 0,
            latencies_ms: vec![10, 20, 30, 40],
            makespan_ms: 3_000,
            ex_correct: 70,
            ex_scored: 85,
        }
    }

    #[test]
    fn json_report_is_valid_and_matches_markdown() {
        let r = report_fixture();
        let js = render_json(&r);
        for needle in [
            "\"requests\": 100",
            "\"shed_rate\": 0.1000",
            "\"hit_ratio\": 0.3333",
            "\"throughput_rps\": 30.0000",
            "\"rate\": 0.8235",
        ] {
            assert!(js.contains(needle), "missing {needle:?} in:\n{js}");
        }
        // Quantiles agree with the markdown report's histogram.
        let mut h = obskit::Histogram::new();
        for &v in &r.latencies_ms {
            h.record(v);
        }
        assert!(js.contains(&format!("\"p50\": {}, \"p99\": {}", h.p50(), h.p99())));
        assert_eq!(render_json(&r), js, "deterministic");
    }

    #[test]
    fn json_report_nulls_zero_denominators_and_escapes() {
        let r = ReportInput {
            predictor: "weird \"name\"\n".into(),
            submitted: 0,
            ex_scored: 0,
            makespan_ms: 0,
            cache_served: 0,
            cache_misses: 0,
            ..report_fixture()
        };
        let js = render_json(&r);
        assert!(js.contains("\"shed_rate\": null"));
        assert!(js.contains("\"throughput_rps\": null"));
        assert!(js.contains("\"hit_ratio\": null"));
        assert!(js.contains("\"rate\": null"));
        assert!(js.contains("weird \\\"name\\\"\\n"));
    }

    #[test]
    fn report_renders_every_metric_row() {
        let r = report_fixture();
        let md = render(&r);
        for needle in [
            "# serve-bench report",
            "| requests | 100 |",
            "| shed | 10 (10.0%) |",
            "| shed: queue full | 10 |",
            "| failed: retries exhausted | 3 |",
            "| failed: deadline exceeded | 2 |",
            "| panics | 0 |",
            "| cache hit ratio | 33.3% |",
            "| throughput | 30.0 req/s (virtual) |",
            "| EX (served ok) | 0.824 (70/85) |",
        ] {
            assert!(md.contains(needle), "missing {needle:?} in:\n{md}");
        }
        assert_eq!(render(&r), md, "rendering is deterministic");
    }
}
