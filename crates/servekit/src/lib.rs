//! # servekit — fault-tolerant, cached serving layer for predictors
//!
//! Runs any [`dail_core::Predictor`] behind a bounded work queue and a
//! worker pool, the shape a Text-to-SQL pipeline takes when it serves real
//! traffic instead of a batch eval:
//!
//! * **backpressure & load shedding** — a bounded queue; over capacity the
//!   request gets a typed [`Outcome::Overloaded`], never a panic;
//! * **retry with exponential backoff** — against deterministic injected
//!   faults from [`simllm::faults`] (transient errors, latency spikes,
//!   corrupted SQL);
//! * **per-request deadlines** — a retry sequence that runs past its
//!   deadline resolves to [`Outcome::DeadlineExceeded`];
//! * **LRU prediction cache** — keyed on `(db, question, repr, shots)`,
//!   with request coalescing and hit/miss/eviction counters;
//! * **observability** — queue-depth gauge, retry/shed/panic counters and
//!   per-stage latency histograms through `obskit`.
//!
//! Reported numbers run on a *virtual clock* (simulated milliseconds
//! derived from request keys and fault plans), so a serve-bench report is
//! byte-identical across runs and across worker counts — see
//! [`server`] for the determinism model. The work itself is real: requests
//! flow through the bounded queue into real threads that execute the
//! predictor under `catch_unwind`.
//!
//! ```
//! use servekit::{AdmissionModel, cache_key};
//!
//! let mut m = AdmissionModel::new(2);
//! assert!(m.offer(0, 100).is_some());
//! assert_ne!(cache_key("db", "q", "code", 4), cache_key("db", "q", "code", 0));
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod loadgen;
pub mod queue;
pub mod report;
pub mod server;
pub mod slo;

pub use cache::{CacheStats, Lookup, PredictionCache, Slot};
pub use loadgen::{generate, LoadConfig};
pub use queue::BoundedQueue;
pub use report::{render, render_json, ReportInput};
pub use server::{
    cache_key, serve, AdmissionModel, Outcome, ServeConfig, ServeOutput, ServeReq, ServeStats,
};
pub use slo::{render_slo_report, RequestOutcome, SloConfig};
