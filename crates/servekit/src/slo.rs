//! slokit: SLO tracking with multi-window burn-rate alerting.
//!
//! Consumes per-request outcomes on the serving layer's **virtual clock**
//! and tracks two service-level objectives:
//!
//! * **latency** — the fraction of requests that complete OK within a
//!   threshold. Shed, failed and deadline-exceeded requests all count
//!   against this SLO (a user who got no answer did not get a fast one).
//! * **EX correctness** — the fraction of EX-scored OK responses whose
//!   SQL is execution-accurate. Requests without an EX verdict are not
//!   events for this SLO.
//!
//! Alerting follows the multi-window burn-rate recipe: with error budget
//! `1 - objective`, the burn rate over a window is
//! `(bad events / events) / budget` — burn 1.0 spends exactly the budget
//! over the window, burn 2.0 spends it twice as fast. An alert fires when
//! **both** a short and a long window burn at or above the configured
//! threshold (the long window confirms the problem is real, the short
//! window confirms it is still happening), and resolves when the short
//! window drops back below it.
//!
//! Everything runs on virtual milliseconds carried by the outcomes, so a
//! rendered report is byte-identical across runs and worker counts. The
//! window bookkeeping itself is [`obskit::tsdb::SlidingCounts`] — the
//! same sliding-window primitive the time-series store uses — rather
//! than ad-hoc per-step rescans.

/// Configuration of the SLO tracker.
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// Latency SLO threshold: an OK request is "good" iff its simulated
    /// latency is at or under this many ms.
    pub latency_threshold_ms: u64,
    /// Latency objective as a fraction (0.95 = 95% of requests good).
    pub latency_objective: f64,
    /// EX-correctness objective over EX-scored OK responses.
    pub ex_objective: f64,
    /// Short burn-rate window, in virtual ms.
    pub short_window_ms: u64,
    /// Long burn-rate window, in virtual ms.
    pub long_window_ms: u64,
    /// Burn-rate threshold at which an alert fires (both windows).
    pub burn_alert: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            latency_threshold_ms: 300,
            latency_objective: 0.95,
            ex_objective: 0.50,
            short_window_ms: 2_000,
            long_window_ms: 10_000,
            burn_alert: 2.0,
        }
    }
}

/// One served request, reduced to what the SLO tracker needs.
#[derive(Debug, Clone, Copy)]
pub struct RequestOutcome {
    /// Virtual completion time in ms (arrival + latency; arrival time
    /// for shed requests, which never start).
    pub t_ms: u64,
    /// The request resolved [`crate::Outcome::Ok`].
    pub served_ok: bool,
    /// Simulated end-to-end latency in ms (0 for shed requests).
    pub latency_ms: u64,
    /// EX verdict for scored OK responses; `None` when unscored.
    pub ex: Option<bool>,
}

/// A burn-rate alert transition found while sweeping the virtual clock.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Which SLO fired ("latency" or "ex").
    pub slo: &'static str,
    /// Virtual time of the transition, in ms.
    pub t_ms: u64,
    /// Short-window burn rate at the transition.
    pub short_burn: f64,
    /// Long-window burn rate at the transition.
    pub long_burn: f64,
    /// `true` when the alert fired, `false` when it resolved.
    pub fired: bool,
}

/// Full evaluation of one SLO over an outcome stream.
#[derive(Debug, Clone)]
pub struct SloEval {
    /// SLO name.
    pub name: &'static str,
    /// The configured objective.
    pub objective: f64,
    /// Events considered.
    pub events: u64,
    /// Events that violated the SLO.
    pub bad: u64,
    /// Alert transitions in virtual-time order.
    pub alerts: Vec<Alert>,
    /// Burn rates over the final short/long windows.
    pub final_burn: (f64, f64),
}

impl SloEval {
    /// Achieved compliance `good / events` (1.0 for an empty stream).
    pub fn compliance(&self) -> f64 {
        if self.events == 0 {
            1.0
        } else {
            (self.events - self.bad) as f64 / self.events as f64
        }
    }

    /// Fraction of the error budget consumed over the whole stream
    /// (may exceed 1.0 when the objective was missed).
    pub fn budget_consumed(&self) -> f64 {
        let budget = 1.0 - self.objective;
        if self.events == 0 || budget <= 0.0 {
            0.0
        } else {
            (self.bad as f64 / self.events as f64) / budget
        }
    }
}

/// `(t_ms, good)` event stream for one SLO, sorted by time.
fn events_for(slo: &'static str, cfg: &SloConfig, outcomes: &[RequestOutcome]) -> Vec<(u64, bool)> {
    let mut ev: Vec<(u64, bool)> = outcomes
        .iter()
        .filter_map(|o| match slo {
            "latency" => Some((
                o.t_ms,
                o.served_ok && o.latency_ms <= cfg.latency_threshold_ms,
            )),
            "ex" => o.ex.filter(|_| o.served_ok).map(|ex| (o.t_ms, ex)),
            _ => unreachable!("unknown slo"),
        })
        .collect();
    // Stable by time: ties keep request order, so the sweep is
    // deterministic for simultaneous completions.
    ev.sort_by_key(|&(t, _)| t);
    ev
}

/// Evaluate one SLO: sweep the virtual clock across event times and
/// record edge-triggered multi-window burn-rate alert transitions.
///
/// The sweep maintains the short and long windows as incremental
/// [`obskit::tsdb::SlidingCounts`] (window `(t - w, t]`) instead of
/// rescanning the event list at every step, so it is `O(events)` per
/// window. Ties are pushed as a group before evaluating: the burn at
/// time `t` sees *every* event completing at `t`, and the edge trigger
/// transitions at most once per distinct timestamp — exactly the
/// semantics the old full-rescan sweep had.
pub fn evaluate_slo(slo: &'static str, cfg: &SloConfig, outcomes: &[RequestOutcome]) -> SloEval {
    let objective = match slo {
        "latency" => cfg.latency_objective,
        _ => cfg.ex_objective,
    };
    let budget = 1.0 - objective;
    let events = events_for(slo, cfg, outcomes);
    let bad = events.iter().filter(|&&(_, good)| !good).count() as u64;

    let mut alerts = Vec::new();
    let mut firing = false;
    let mut last_burn = (0.0, 0.0);
    let mut short_w = obskit::tsdb::SlidingCounts::new(cfg.short_window_ms);
    let mut long_w = obskit::tsdb::SlidingCounts::new(cfg.long_window_ms);
    let mut i = 0;
    while i < events.len() {
        let t = events[i].0;
        while i < events.len() && events[i].0 == t {
            short_w.push(t, events[i].1);
            long_w.push(t, events[i].1);
            i += 1;
        }
        let short = short_w.burn(budget);
        let long = long_w.burn(budget);
        last_burn = (short, long);
        if !firing && short >= cfg.burn_alert && long >= cfg.burn_alert {
            firing = true;
            alerts.push(Alert {
                slo,
                t_ms: t,
                short_burn: short,
                long_burn: long,
                fired: true,
            });
        } else if firing && short < cfg.burn_alert {
            firing = false;
            alerts.push(Alert {
                slo,
                t_ms: t,
                short_burn: short,
                long_burn: long,
                fired: false,
            });
        }
    }

    SloEval {
        name: slo,
        objective,
        events: events.len() as u64,
        bad,
        alerts,
        final_burn: last_burn,
    }
}

fn render_one(out: &mut String, eval: &SloEval, detail: &str) {
    out.push_str(&format!(
        "## {} SLO ({detail}, objective {:.1}%)\n\n",
        eval.name,
        eval.objective * 100.0
    ));
    out.push_str("| metric | value |\n|---|---|\n");
    out.push_str(&format!("| events | {} |\n", eval.events));
    out.push_str(&format!("| violations | {} |\n", eval.bad));
    out.push_str(&format!(
        "| compliance | {:.2}% |\n",
        eval.compliance() * 100.0
    ));
    let consumed = eval.budget_consumed();
    out.push_str(&format!(
        "| error budget consumed | {:.1}% |\n",
        consumed * 100.0
    ));
    out.push_str(&format!(
        "| error budget remaining | {:.1}% |\n",
        (1.0 - consumed) * 100.0
    ));
    out.push_str(&format!(
        "| burn rate at end (short / long) | {:.2} / {:.2} |\n",
        eval.final_burn.0, eval.final_burn.1
    ));
    out.push('\n');
    if eval.alerts.is_empty() {
        out.push_str("no burn-rate alerts fired.\n\n");
    } else {
        for a in &eval.alerts {
            out.push_str(&format!(
                "- {} {}: burn {:.2} (short) / {:.2} (long) at t={} ms\n",
                if a.fired { "ALERT" } else { "resolved" },
                a.slo,
                a.short_burn,
                a.long_burn,
                a.t_ms
            ));
        }
        out.push('\n');
    }
}

/// Render the markdown SLO report for an outcome stream. Deterministic:
/// every number derives from virtual times and counts.
pub fn render_slo_report(cfg: &SloConfig, outcomes: &[RequestOutcome]) -> String {
    let mut out = String::new();
    out.push_str("# SLO report\n\n");
    out.push_str(&format!(
        "requests: {} | windows: short {} ms, long {} ms | alert at burn ≥ {:.1}\n\n",
        outcomes.len(),
        cfg.short_window_ms,
        cfg.long_window_ms,
        cfg.burn_alert
    ));
    let latency = evaluate_slo("latency", cfg, outcomes);
    render_one(
        &mut out,
        &latency,
        &format!("ok within {} ms", cfg.latency_threshold_ms),
    );
    let ex = evaluate_slo("ex", cfg, outcomes);
    render_one(&mut out, &ex, "execution-accurate among scored ok");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(t_ms: u64, latency_ms: u64, ex: Option<bool>) -> RequestOutcome {
        RequestOutcome {
            t_ms,
            served_ok: true,
            latency_ms,
            ex,
        }
    }

    fn shed(t_ms: u64) -> RequestOutcome {
        RequestOutcome {
            t_ms,
            served_ok: false,
            latency_ms: 0,
            ex: None,
        }
    }

    #[test]
    fn all_good_stream_has_full_budget_and_no_alerts() {
        let cfg = SloConfig::default();
        let outcomes: Vec<_> = (0..50).map(|i| ok(i * 100, 50, Some(true))).collect();
        let eval = evaluate_slo("latency", &cfg, &outcomes);
        assert_eq!(eval.events, 50);
        assert_eq!(eval.bad, 0);
        assert_eq!(eval.compliance(), 1.0);
        assert_eq!(eval.budget_consumed(), 0.0);
        assert!(eval.alerts.is_empty());
    }

    #[test]
    fn non_ok_outcomes_violate_the_latency_slo() {
        let cfg = SloConfig::default();
        let outcomes = vec![ok(10, 50, None), shed(20), ok(30, 9_999, None)];
        let eval = evaluate_slo("latency", &cfg, &outcomes);
        assert_eq!(eval.events, 3);
        assert_eq!(eval.bad, 2, "shed + over-threshold both count");
    }

    #[test]
    fn ex_slo_only_counts_scored_ok_responses() {
        let cfg = SloConfig::default();
        let outcomes = vec![
            ok(10, 50, Some(true)),
            ok(20, 50, Some(false)),
            ok(30, 50, None), // unscored: not an event
            shed(40),         // not ok: not an event
        ];
        let eval = evaluate_slo("ex", &cfg, &outcomes);
        assert_eq!(eval.events, 2);
        assert_eq!(eval.bad, 1);
    }

    #[test]
    fn sustained_burn_fires_once_and_resolves_once() {
        let cfg = SloConfig {
            latency_threshold_ms: 100,
            latency_objective: 0.9,
            short_window_ms: 1_000,
            long_window_ms: 4_000,
            burn_alert: 2.0,
            ..SloConfig::default()
        };
        // 40 bad completions in a burst, then a long good tail that
        // clears the short window.
        let mut outcomes: Vec<_> = (0..40).map(|i| shed(i * 100)).collect();
        outcomes.extend((0..60).map(|i| ok(4_000 + i * 100, 10, None)));
        let eval = evaluate_slo("latency", &cfg, &outcomes);
        let fired: Vec<_> = eval.alerts.iter().filter(|a| a.fired).collect();
        let resolved: Vec<_> = eval.alerts.iter().filter(|a| !a.fired).collect();
        assert_eq!(fired.len(), 1, "{:?}", eval.alerts);
        assert_eq!(resolved.len(), 1, "{:?}", eval.alerts);
        assert!(fired[0].t_ms < resolved[0].t_ms);
        assert!(fired[0].short_burn >= cfg.burn_alert);
        assert!(fired[0].long_burn >= cfg.burn_alert);
    }

    #[test]
    fn short_blip_does_not_fire_the_long_window() {
        let cfg = SloConfig {
            latency_threshold_ms: 100,
            latency_objective: 0.9,
            short_window_ms: 500,
            long_window_ms: 10_000,
            burn_alert: 3.0,
            ..SloConfig::default()
        };
        // One bad completion inside a long good stream: the short window
        // spikes but the long window never crosses the threshold.
        let mut outcomes: Vec<_> = (0..100).map(|i| ok(i * 100, 10, None)).collect();
        outcomes[50] = shed(5_000);
        let eval = evaluate_slo("latency", &cfg, &outcomes);
        assert!(
            eval.alerts.is_empty(),
            "long window must gate the blip: {:?}",
            eval.alerts
        );
    }

    #[test]
    fn simultaneous_completions_evaluate_as_one_group() {
        let cfg = SloConfig {
            latency_threshold_ms: 100,
            latency_objective: 0.9,
            short_window_ms: 1_000,
            long_window_ms: 1_000,
            burn_alert: 2.0,
            ..SloConfig::default()
        };
        // Five bad completions at the same instant: the burn at t=500
        // must see all five (the whole tie group), and the edge trigger
        // fires exactly once, not once per tied event.
        let outcomes: Vec<_> = (0..5).map(|_| shed(500)).collect();
        let eval = evaluate_slo("latency", &cfg, &outcomes);
        assert_eq!(eval.alerts.len(), 1, "{:?}", eval.alerts);
        assert!(eval.alerts[0].fired);
        assert_eq!(eval.alerts[0].t_ms, 500);
        // All five in-window and bad: burn = (5/5) / 0.1 = 10.
        assert!(
            (eval.final_burn.0 - 10.0).abs() < 1e-9,
            "{:?}",
            eval.final_burn
        );
    }

    #[test]
    fn report_is_deterministic_and_complete() {
        let cfg = SloConfig::default();
        let outcomes = vec![ok(10, 50, Some(true)), shed(20), ok(500, 400, Some(false))];
        let a = render_slo_report(&cfg, &outcomes);
        let b = render_slo_report(&cfg, &outcomes);
        assert_eq!(a, b);
        for needle in [
            "# SLO report",
            "## latency SLO (ok within 300 ms, objective 95.0%)",
            "## ex SLO (execution-accurate among scored ok, objective 50.0%)",
            "| error budget consumed |",
            "| error budget remaining |",
            "| burn rate at end (short / long) |",
        ] {
            assert!(a.contains(needle), "missing {needle:?} in:\n{a}");
        }
    }
}
