//! LRU prediction cache with request coalescing.
//!
//! Keyed on `(db, question, representation, shots)` — the full identity of
//! a prediction. Two requests with the same key always produce the same
//! prediction (the whole pipeline is deterministic), so the second request
//! never needs to run the predictor.
//!
//! **Coalescing**: if a duplicate arrives while the first computation is
//! still in flight, it does not enqueue a second computation — it receives
//! an [`Arc`]'d slot and waits for the in-flight result. This makes the
//! *served-from-cache* total a pure function of the request stream (every
//! non-first occurrence of a key is served from cache), independent of
//! worker count and scheduling; only the internal ready-hit vs coalesced
//! split depends on timing, so [`CacheStats`] exposes the sum.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// A cell that will eventually hold the outcome for one key. The owner
/// fills it exactly once; any number of waiters block on it.
pub struct Slot<V> {
    state: Mutex<Option<V>>,
    ready: Condvar,
}

impl<V: Clone> Slot<V> {
    fn new() -> Slot<V> {
        Slot {
            state: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// Fill the slot and wake all waiters. Filling twice is a logic error.
    pub fn fill(&self, value: V) {
        let mut g = self.state.lock().unwrap();
        assert!(g.is_none(), "cache slot filled twice");
        *g = Some(value);
        drop(g);
        self.ready.notify_all();
    }

    /// Block until the owner fills the slot, then return a clone.
    pub fn wait(&self) -> V {
        let mut g = self.state.lock().unwrap();
        while g.is_none() {
            g = self.ready.wait(g).unwrap();
        }
        g.clone().unwrap()
    }

    fn is_ready(&self) -> bool {
        self.state.lock().unwrap().is_some()
    }
}

/// What a cache lookup resolved to.
pub enum Lookup<V> {
    /// First occurrence of the key: the caller owns the computation and
    /// must [`Slot::fill`] the slot when done.
    Owner(Arc<Slot<V>>),
    /// The key is cached or in flight: wait on the slot for the value.
    Shared(Arc<Slot<V>>),
}

/// Monotonic cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// First-occurrence lookups that triggered a computation.
    pub misses: u64,
    /// Lookups served from the cache — completed hits *plus* coalesced
    /// waits on an in-flight computation (the split between the two is
    /// scheduling-dependent; the sum is not).
    pub served: u64,
    /// Completed entries evicted to respect the capacity bound.
    pub evictions: u64,
}

struct Entry<V> {
    last_used: u64,
    slot: Arc<Slot<V>>,
}

struct Inner<V> {
    map: HashMap<String, Entry<V>>,
    tick: u64,
    stats: CacheStats,
}

/// Bounded LRU cache of prediction outcomes with coalesced lookups.
pub struct PredictionCache<V> {
    capacity: usize,
    inner: Mutex<Inner<V>>,
}

impl<V: Clone> PredictionCache<V> {
    /// Create a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> PredictionCache<V> {
        PredictionCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                stats: CacheStats::default(),
            }),
        }
    }

    /// Look up `key`, registering the caller as the computation owner on a
    /// miss.
    pub fn begin(&self, key: &str) -> Lookup<V> {
        let mut g = self.inner.lock().unwrap();
        g.tick += 1;
        let tick = g.tick;
        if let Some(entry) = g.map.get_mut(key) {
            entry.last_used = tick;
            let slot = Arc::clone(&entry.slot);
            g.stats.served += 1;
            if obskit::enabled() {
                obskit::global().add_counter("servekit.cache.served", 1);
            }
            return Lookup::Shared(slot);
        }
        let slot = Arc::new(Slot::new());
        g.map.insert(
            key.to_string(),
            Entry {
                last_used: tick,
                slot: Arc::clone(&slot),
            },
        );
        g.stats.misses += 1;
        if g.map.len() > self.capacity {
            // Evict the least-recently-used *completed* entry. In-flight
            // entries are pinned: evicting one would detach its waiters
            // and re-run the computation on the next duplicate.
            let victim = g
                .map
                .iter()
                .filter(|(k, e)| k.as_str() != key && e.slot.is_ready())
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                g.map.remove(&victim);
                g.stats.evictions += 1;
                if obskit::enabled() {
                    obskit::global().add_counter("servekit.cache.evictions", 1);
                }
            }
        }
        if obskit::enabled() {
            obskit::global().add_counter("servekit.cache.miss", 1);
        }
        Lookup::Owner(slot)
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().unwrap().stats
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_is_served_and_coalesces() {
        let cache: PredictionCache<u32> = PredictionCache::new(8);
        let owner = match cache.begin("k") {
            Lookup::Owner(s) => s,
            Lookup::Shared(_) => panic!("first lookup must own"),
        };
        let shared = match cache.begin("k") {
            Lookup::Shared(s) => s,
            Lookup::Owner(_) => panic!("duplicate must coalesce"),
        };
        // Fill from another thread while the duplicate waits.
        let waiter = std::thread::spawn(move || shared.wait());
        owner.fill(41);
        assert_eq!(waiter.join().unwrap(), 41);
        let s = cache.stats();
        assert_eq!((s.misses, s.served, s.evictions), (1, 1, 0));
    }

    #[test]
    fn lru_evicts_least_recently_used_completed_entry() {
        let cache: PredictionCache<u32> = PredictionCache::new(2);
        for (k, v) in [("a", 1), ("b", 2)] {
            match cache.begin(k) {
                Lookup::Owner(s) => s.fill(v),
                Lookup::Shared(_) => panic!("fresh key must own"),
            }
        }
        // Touch "a" so "b" becomes LRU, then overflow with "c".
        assert!(matches!(cache.begin("a"), Lookup::Shared(_)));
        match cache.begin("c") {
            Lookup::Owner(s) => s.fill(3),
            Lookup::Shared(_) => panic!(),
        }
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
        assert!(matches!(cache.begin("a"), Lookup::Shared(_)), "a survived");
        assert!(matches!(cache.begin("b"), Lookup::Owner(_)), "b evicted");
    }

    #[test]
    fn in_flight_entries_are_never_evicted() {
        let cache: PredictionCache<u32> = PredictionCache::new(1);
        let pending = match cache.begin("pending") {
            Lookup::Owner(s) => s,
            Lookup::Shared(_) => panic!(),
        };
        // Overflow while "pending" is still in flight: nothing evictable.
        match cache.begin("other") {
            Lookup::Owner(s) => s.fill(2),
            Lookup::Shared(_) => panic!(),
        }
        assert_eq!(cache.stats().evictions, 0);
        assert!(matches!(cache.begin("pending"), Lookup::Shared(_)));
        pending.fill(1);
    }
}
