//! End-to-end serving tests: determinism across worker counts, fault
//! tolerance without panics, typed load shedding, and EX correctness of
//! served responses.

use dail_core::{PredictCtx, Prediction, Predictor, ZeroShot};
use promptkit::{ExampleSelector, QuestionRepr};
use servekit::{generate, serve, LoadConfig, Outcome, ServeConfig};
use simllm::{FaultConfig, SimLlm};
use spider_gen::{Benchmark, BenchmarkConfig};

fn bench() -> Benchmark {
    Benchmark::generate(BenchmarkConfig::tiny())
}

fn ctx<'a>(
    bench: &'a Benchmark,
    selector: &'a ExampleSelector<'a>,
    tokenizer: &'a textkit::Tokenizer,
) -> PredictCtx<'a> {
    PredictCtx {
        bench,
        selector,
        tokenizer,
        seed: 7,
        realistic: false,
        trace: obskit::TraceContext::disabled(),
    }
}

fn faulty() -> FaultConfig {
    FaultConfig {
        seed: 7,
        error_rate: 0.15,
        spike_rate: 0.1,
        spike_ms: 300,
        corrupt_rate: 0.05,
    }
}

/// Returns the gold SQL for every item.
struct Oracle;
impl Predictor for Oracle {
    fn name(&self) -> String {
        "oracle".into()
    }
    fn predict(&self, _ctx: &PredictCtx<'_>, item: &spider_gen::ExampleItem) -> Prediction {
        Prediction {
            sql: item.gold_sql.clone(),
            prompt_tokens: 0,
            completion_tokens: 0,
            api_calls: 1,
        }
    }
}

#[test]
fn serve_is_deterministic_across_worker_counts() {
    let b = bench();
    let selector = ExampleSelector::new(&b);
    let tokenizer = textkit::Tokenizer::new();
    let ctx = ctx(&b, &selector, &tokenizer);
    let predictor = ZeroShot::new(
        SimLlm::new("gpt-3.5-turbo").unwrap(),
        QuestionRepr::CodeRepr,
    );
    let reqs = generate(
        &LoadConfig {
            requests: 80,
            ..LoadConfig::default()
        },
        b.dev.len(),
    );
    let cfg1 = ServeConfig {
        workers: 1,
        faults: faulty(),
        ..ServeConfig::default()
    };
    let cfg4 = ServeConfig {
        workers: 4,
        ..cfg1.clone()
    };
    let out1 = serve(&predictor, &ctx, &b.dev, &reqs, &cfg1);
    let out4 = serve(&predictor, &ctx, &b.dev, &reqs, &cfg4);
    assert_eq!(
        out1.outcomes, out4.outcomes,
        "outcomes depend on worker count"
    );
    assert_eq!(out1.stats, out4.stats, "stats depend on worker count");
}

#[test]
fn faults_are_absorbed_without_panics() {
    let b = bench();
    let selector = ExampleSelector::new(&b);
    let tokenizer = textkit::Tokenizer::new();
    let ctx = ctx(&b, &selector, &tokenizer);
    let predictor = ZeroShot::new(
        SimLlm::new("gpt-3.5-turbo").unwrap(),
        QuestionRepr::CodeRepr,
    );
    let reqs = generate(
        &LoadConfig {
            requests: 100,
            ..LoadConfig::default()
        },
        b.dev.len(),
    );
    let cfg = ServeConfig {
        faults: FaultConfig {
            seed: 3,
            error_rate: 0.4,
            spike_rate: 0.2,
            spike_ms: 400,
            corrupt_rate: 0.1,
        },
        ..ServeConfig::default()
    };
    let out = serve(&predictor, &ctx, &b.dev, &reqs, &cfg);
    assert_eq!(out.stats.panics, 0);
    assert!(out.stats.retries > 0, "40% transient errors must retry");
    assert!(
        out.stats.cache.served > 0,
        "duplicated requests must be served from cache"
    );
    assert_eq!(
        out.stats.ok + out.stats.failed + out.stats.deadline_exceeded,
        out.stats.admitted,
        "every admitted request resolves to a typed outcome"
    );
    // Duplicates of the same key get identical terminal outcomes.
    let keys: Vec<usize> = reqs.iter().map(|r| r.item_idx).collect();
    for i in 0..reqs.len() {
        for j in (i + 1)..reqs.len() {
            if keys[i] != keys[j] {
                continue;
            }
            match (&out.outcomes[i], &out.outcomes[j]) {
                (Outcome::Overloaded, _) | (_, Outcome::Overloaded) => {}
                (Outcome::Ok { sql: a, .. }, Outcome::Ok { sql: b, .. }) => assert_eq!(a, b),
                (a, b) => assert_eq!(
                    std::mem::discriminant(a),
                    std::mem::discriminant(b),
                    "same key resolved differently: {a:?} vs {b:?}"
                ),
            }
        }
    }
}

#[test]
fn overload_sheds_with_typed_outcome() {
    let b = bench();
    let selector = ExampleSelector::new(&b);
    let tokenizer = textkit::Tokenizer::new();
    let ctx = ctx(&b, &selector, &tokenizer);
    let reqs = generate(
        &LoadConfig {
            requests: 60,
            mean_gap_ms: 0, // everything arrives at t=0
            dup_rate: 0.0,
            ..LoadConfig::default()
        },
        b.dev.len(),
    );
    let cfg = ServeConfig {
        queue_capacity: 4,
        ..ServeConfig::default()
    };
    let out = serve(&Oracle, &ctx, &b.dev, &reqs, &cfg);
    assert!(out.stats.shed > 0, "a burst beyond capacity must shed");
    assert_eq!(
        out.outcomes
            .iter()
            .filter(|o| matches!(o, Outcome::Overloaded))
            .count() as u64,
        out.stats.shed
    );
    assert!(out.stats.admitted > 0, "the buffer still admits some");
}

#[test]
fn served_oracle_responses_are_execution_accurate() {
    let b = bench();
    let selector = ExampleSelector::new(&b);
    let tokenizer = textkit::Tokenizer::new();
    let ctx = ctx(&b, &selector, &tokenizer);
    let reqs = generate(&LoadConfig::default(), b.dev.len());
    let out = serve(&Oracle, &ctx, &b.dev, &reqs, &ServeConfig::default());
    assert!(out.stats.ok > 0);
    for (req, outcome) in reqs.iter().zip(&out.outcomes) {
        if let Outcome::Ok { sql, .. } = outcome {
            let item = &b.dev[req.item_idx];
            let score = eval::score_item(b.db(item), item, sql);
            assert!(score.ex, "served oracle SQL must be execution-accurate");
        }
    }
}
