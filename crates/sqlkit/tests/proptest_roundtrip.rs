//! Property tests: `parse(print(ast))` must be the identity on the subset of
//! ASTs the shared generator produces (which is itself a superset of what
//! the benchmark generator emits).

mod gen;

use gen::query;
use proptest::prelude::*;
use sqlkit::ast::*;
use sqlkit::{exact_set_match, parse_query, Skeleton};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print → parse is the identity.
    #[test]
    fn print_parse_roundtrip(q in query()) {
        let printed = q.to_string();
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("failed to re-parse {printed:?}: {e}"));
        prop_assert_eq!(q, reparsed, "printed: {}", printed);
    }

    /// EM is reflexive on every generated query.
    #[test]
    fn exact_set_match_reflexive(q in query()) {
        prop_assert!(exact_set_match(&q, &q));
    }

    /// Skeleton extraction is invariant under literal replacement.
    #[test]
    fn skeleton_ignores_values(q in query(), n in -500i64..500) {
        fn replace_lits_expr(e: &mut Expr, n: i64) {
            match e {
                Expr::Lit(Literal::Int(v)) => *v = n,
                Expr::Arith { left, right, .. } => {
                    replace_lits_expr(left, n);
                    replace_lits_expr(right, n);
                }
                Expr::Neg(inner) => replace_lits_expr(inner, n),
                _ => {}
            }
        }
        fn replace_lits_cond(c: &mut Cond, n: i64) {
            match c {
                Cond::Cmp { left, right, .. } => {
                    replace_lits_expr(left, n);
                    if let Operand::Expr(e) = right {
                        replace_lits_expr(e, n);
                    }
                }
                Cond::And(l, r) | Cond::Or(l, r) => {
                    replace_lits_cond(l, n);
                    replace_lits_cond(r, n);
                }
                Cond::Not(inner) => replace_lits_cond(inner, n),
                _ => {}
            }
        }
        let mut q2 = q.clone();
        fn walk(q: &mut Query, n: i64) {
            match q {
                Query::Select(s) => {
                    for item in &mut s.items {
                        replace_lits_expr(&mut item.expr, n);
                    }
                    if let Some(w) = &mut s.where_cond {
                        replace_lits_cond(w, n);
                    }
                    if let Some(h) = &mut s.having {
                        replace_lits_cond(h, n);
                    }
                }
                Query::Compound { left, right, .. } => {
                    walk(left, n);
                    walk(right, n);
                }
            }
        }
        walk(&mut q2, n);
        prop_assert_eq!(Skeleton::of(&q), Skeleton::of(&q2));
    }

    /// Hardness classification never panics and is stable across printing.
    #[test]
    fn hardness_total_and_stable(q in query()) {
        let h1 = sqlkit::classify(&q);
        let reparsed = parse_query(&q.to_string()).unwrap();
        let h2 = sqlkit::classify(&reparsed);
        prop_assert_eq!(h1, h2);
    }
}
