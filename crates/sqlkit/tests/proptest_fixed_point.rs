//! Fixed-point and literal-blindness properties.
//!
//! The roundtrip suite shows `parse ∘ print` is the identity on ASTs; this
//! one pins down the dual view: the *printed text* is a fixed point of
//! `print ∘ parse`, and the query skeleton — the signature DAIL-SQL keys
//! example selection on — is blind to every literal site the AST can carry
//! (comparison operands, BETWEEN bounds, IN lists, LIKE patterns and LIMIT
//! values), not just the comparison literals the older test replaced.

mod gen;

use gen::query;
use proptest::prelude::*;
use sqlkit::ast::*;
use sqlkit::{parse_query, Skeleton};

/// Overwrite every literal value reachable from `e` with values derived
/// from `n`, leaving the tree shape untouched.
fn subst_expr(e: &mut Expr, n: i64) {
    match e {
        Expr::Lit(l) => subst_lit(l, n),
        Expr::Arith { left, right, .. } => {
            subst_expr(left, n);
            subst_expr(right, n);
        }
        Expr::Neg(inner) => subst_expr(inner, n),
        Expr::Agg { arg, .. } => subst_expr(arg, n),
        Expr::Col(_) | Expr::Star => {}
    }
}

fn subst_lit(l: &mut Literal, n: i64) {
    match l {
        Literal::Int(v) => *v = n,
        // Quarters stay exactly representable, so printing stays lossless.
        Literal::Float(v) => *v = n as f64 / 4.0,
        Literal::Str(s) => *s = format!("v{}", n.unsigned_abs()),
        Literal::Null => {}
    }
}

fn subst_cond(c: &mut Cond, n: i64) {
    match c {
        Cond::Cmp { left, right, .. } => {
            subst_expr(left, n);
            match right {
                Operand::Expr(e) => subst_expr(e, n),
                Operand::Subquery(q) => subst_query(q, n),
            }
        }
        Cond::Between {
            expr, low, high, ..
        } => {
            subst_expr(expr, n);
            subst_expr(low, n);
            subst_expr(high, n);
        }
        Cond::In { expr, source, .. } => {
            subst_expr(expr, n);
            match source {
                InSource::List(lits) => {
                    for l in lits {
                        subst_lit(l, n);
                    }
                }
                InSource::Subquery(q) => subst_query(q, n),
            }
        }
        Cond::Like { expr, pattern, .. } => {
            subst_expr(expr, n);
            *pattern = format!("p{}%", n.unsigned_abs());
        }
        Cond::IsNull { expr, .. } => subst_expr(expr, n),
        Cond::Exists { query, .. } => subst_query(query, n),
        Cond::And(l, r) | Cond::Or(l, r) => {
            subst_cond(l, n);
            subst_cond(r, n);
        }
        Cond::Not(inner) => subst_cond(inner, n),
    }
}

fn subst_select(s: &mut Select, n: i64) {
    for item in &mut s.items {
        subst_expr(&mut item.expr, n);
    }
    if let Some(from) = &mut s.from {
        for j in &mut from.joins {
            if let Some(on) = &mut j.on {
                subst_cond(on, n);
            }
        }
    }
    if let Some(w) = &mut s.where_cond {
        subst_cond(w, n);
    }
    if let Some(h) = &mut s.having {
        subst_cond(h, n);
    }
    for key in &mut s.order_by {
        subst_expr(&mut key.expr, n);
    }
    if let Some(l) = &mut s.limit {
        *l = n.unsigned_abs() % 100;
    }
}

fn subst_query(q: &mut Query, n: i64) {
    match q {
        Query::Select(s) => subst_select(s, n),
        Query::Compound { left, right, .. } => {
            subst_query(left, n);
            subst_query(right, n);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The printed text is a fixed point: the first print canonicalises
    /// spacing and casing, and re-parsing then re-printing must not change
    /// another byte (and must parse back to the same AST).
    #[test]
    fn print_parse_print_is_a_fixed_point(q in query()) {
        let s1 = q.to_string();
        let q1 = parse_query(&s1)
            .unwrap_or_else(|e| panic!("failed to parse printed query {s1:?}: {e}"));
        prop_assert_eq!(&q1.to_string(), &s1, "print is not a fixed point");
        prop_assert_eq!(parse_query(&s1).unwrap(), q1);
    }

    /// Skeletons are blind to every literal site, and stay so across a
    /// print → parse lap of the substituted query.
    #[test]
    fn skeleton_blind_to_all_literal_sites(q in query(), n in -500i64..500) {
        let mut q2 = q.clone();
        subst_query(&mut q2, n);
        prop_assert_eq!(Skeleton::of(&q), Skeleton::of(&q2));
        let printed = q2.to_string();
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("substituted query no longer parses {printed:?}: {e}"));
        prop_assert_eq!(Skeleton::of(&reparsed), Skeleton::of(&q));
    }
}
