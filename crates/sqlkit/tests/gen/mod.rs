//! AST strategies shared by the sqlkit property tests (`proptest_roundtrip`
//! and `proptest_fixed_point` both `mod gen;` this file). The generated
//! space is a superset of what the benchmark generator emits.

use proptest::prelude::*;
use sqlkit::ast::*;

/// Identifiers that can never collide with keywords.
pub fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,7}"
        .prop_filter("not a keyword", |s| {
            sqlkit::token::Keyword::from_word(s).is_none()
        })
        .prop_map(|s| s.to_string())
}

pub fn literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        (-1000i64..1000).prop_map(Literal::Int),
        // Quarters are exactly representable, so Display/parse round-trips.
        (-4000i64..4000).prop_map(|q| Literal::Float(q as f64 / 4.0)),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Literal::Str),
        Just(Literal::Null),
    ]
}

pub fn column_ref() -> impl Strategy<Value = ColumnRef> {
    (proptest::option::of(ident()), ident()).prop_map(|(t, c)| ColumnRef {
        table: t,
        column: c,
    })
}

pub fn scalar_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        literal().prop_map(Expr::Lit),
        column_ref().prop_map(Expr::Col),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(ArithOp::Add),
                    Just(ArithOp::Sub),
                    Just(ArithOp::Mul),
                    Just(ArithOp::Div)
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::Arith {
                    op,
                    left: Box::new(l),
                    right: Box::new(r)
                }),
            // The parser folds negated numeric literals, so mirror that here
            // to keep print∘parse an identity on generated trees.
            inner.prop_map(|e| match e {
                Expr::Lit(Literal::Int(v)) => Expr::Lit(Literal::Int(-v)),
                Expr::Lit(Literal::Float(v)) => Expr::Lit(Literal::Float(-v)),
                other => Expr::Neg(Box::new(other)),
            }),
        ]
    })
}

pub fn agg_expr() -> impl Strategy<Value = Expr> {
    (
        prop_oneof![
            Just(AggFunc::Count),
            Just(AggFunc::Sum),
            Just(AggFunc::Avg),
            Just(AggFunc::Min),
            Just(AggFunc::Max)
        ],
        any::<bool>(),
        prop_oneof![Just(Expr::Star), column_ref().prop_map(Expr::Col)],
    )
        .prop_map(|(func, distinct, arg)| {
            // `COUNT(DISTINCT *)` is not legal SQL; force plain * for star args.
            let distinct = distinct && !matches!(arg, Expr::Star);
            Expr::Agg {
                func,
                distinct,
                arg: Box::new(arg),
            }
        })
}

pub fn select_item() -> impl Strategy<Value = SelectItem> {
    (
        prop_oneof![scalar_expr(), agg_expr(), Just(Expr::Star)],
        proptest::option::of(ident()),
    )
        .prop_map(|(expr, alias)| {
            // `* AS x` is not legal; strip the alias for stars.
            let alias = if matches!(expr, Expr::Star) {
                None
            } else {
                alias
            };
            SelectItem { expr, alias }
        })
}

pub fn simple_cond(depth: u32) -> BoxedStrategy<Cond> {
    let cmp = (
        prop_oneof![column_ref().prop_map(Expr::Col), agg_expr()],
        prop_oneof![
            Just(CmpOp::Eq),
            Just(CmpOp::Neq),
            Just(CmpOp::Lt),
            Just(CmpOp::Le),
            Just(CmpOp::Gt),
            Just(CmpOp::Ge)
        ],
        prop_oneof![
            literal().prop_map(Expr::Lit),
            column_ref().prop_map(Expr::Col)
        ],
    )
        .prop_map(|(l, op, r)| Cond::Cmp {
            left: l,
            op,
            right: Operand::Expr(r),
        });
    let between =
        (column_ref(), any::<bool>(), -100i64..100, 100i64..300).prop_map(|(c, neg, lo, hi)| {
            Cond::Between {
                expr: Expr::Col(c),
                negated: neg,
                low: Expr::Lit(Literal::Int(lo)),
                high: Expr::Lit(Literal::Int(hi)),
            }
        });
    let in_list = (
        column_ref(),
        any::<bool>(),
        proptest::collection::vec(literal(), 1..4),
    )
        .prop_map(|(c, neg, lits)| Cond::In {
            expr: Expr::Col(c),
            negated: neg,
            source: InSource::List(lits),
        });
    let like = (column_ref(), any::<bool>(), "[a-z%_]{1,8}").prop_map(|(c, neg, pat)| Cond::Like {
        expr: Expr::Col(c),
        negated: neg,
        pattern: pat,
    });
    let is_null = (column_ref(), any::<bool>()).prop_map(|(c, neg)| Cond::IsNull {
        expr: Expr::Col(c),
        negated: neg,
    });
    let leaf = prop_oneof![cmp, between, in_list, like, is_null].boxed();
    if depth == 0 {
        leaf
    } else {
        let inner = simple_cond(depth - 1);
        prop_oneof![
            leaf.clone(),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Cond::And(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Cond::Or(Box::new(l), Box::new(r))),
            inner.prop_map(|c| Cond::Not(Box::new(c))),
        ]
        .boxed()
    }
}

pub fn table_ref() -> impl Strategy<Value = TableRef> {
    (ident(), proptest::option::of(ident()))
        .prop_map(|(name, alias)| TableRef::Named { name, alias })
}

pub fn join() -> impl Strategy<Value = Join> {
    (
        table_ref(),
        proptest::option::of((column_ref(), column_ref()).prop_map(|(a, b)| Cond::Cmp {
            left: Expr::Col(a),
            op: CmpOp::Eq,
            right: Operand::Expr(Expr::Col(b)),
        })),
    )
        .prop_map(|(table, on)| Join { table, on })
}

pub fn select() -> impl Strategy<Value = Select> {
    (
        any::<bool>(),
        proptest::collection::vec(select_item(), 1..4),
        table_ref(),
        proptest::collection::vec(join(), 0..3),
        proptest::option::of(simple_cond(2)),
        proptest::collection::vec(column_ref(), 0..3),
        proptest::option::of(simple_cond(1)),
        proptest::collection::vec(
            (
                prop_oneof![column_ref().prop_map(Expr::Col), agg_expr()],
                prop_oneof![Just(SortDir::Asc), Just(SortDir::Desc)],
            )
                .prop_map(|(expr, dir)| OrderKey { expr, dir }),
            0..3,
        ),
        proptest::option::of(0u64..100),
    )
        .prop_map(
            |(distinct, items, base, joins, where_cond, group_by, having, order_by, limit)| {
                // HAVING without GROUP BY is technically legal but the
                // canonical corpus always pairs them.
                let having = if group_by.is_empty() { None } else { having };
                Select {
                    distinct,
                    items,
                    from: Some(FromClause { base, joins }),
                    where_cond,
                    group_by,
                    having,
                    order_by,
                    limit,
                }
            },
        )
}

pub fn query() -> impl Strategy<Value = Query> {
    prop_oneof![
        4 => select().prop_map(Query::Select),
        1 => (
            select(),
            prop_oneof![Just(SetOp::Union), Just(SetOp::Intersect), Just(SetOp::Except)],
            select()
        )
            .prop_map(|(l, op, r)| Query::Compound {
                op,
                left: Box::new(Query::Select(l)),
                right: Box::new(Query::Select(r)),
            }),
    ]
}
