//! Spider-style query hardness classification.
//!
//! Spider's official evaluation buckets queries into easy / medium / hard /
//! extra-hard by counting SQL components. This module implements the same
//! three counters and decision rules as the official `evaluation.py`
//! (component1 = {WHERE, GROUP BY, ORDER BY, LIMIT, JOIN, OR, LIKE},
//! component2 = nesting and set operations, "others" = multiplicity of
//! aggregates / select columns / where conditions / group-by keys).

use crate::ast::*;

/// Difficulty buckets used by the Spider leaderboard and all of the paper's
/// per-hardness breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Hardness {
    /// Single-table, single-condition queries.
    Easy,
    /// A couple of components.
    Medium,
    /// Several components or shallow nesting.
    Hard,
    /// Heavy nesting / many components.
    Extra,
}

impl Hardness {
    /// Lowercase label as used in Spider reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Hardness::Easy => "easy",
            Hardness::Medium => "medium",
            Hardness::Hard => "hard",
            Hardness::Extra => "extra",
        }
    }

    /// All buckets in ascending difficulty order.
    pub const ALL: [Hardness; 4] = [
        Hardness::Easy,
        Hardness::Medium,
        Hardness::Hard,
        Hardness::Extra,
    ];
}

/// Classify a query per the Spider hardness rules.
pub fn classify(q: &Query) -> Hardness {
    let c1 = count_component1(q);
    let c2 = count_component2(q);
    let others = count_others(q);

    if c1 <= 1 && c2 == 0 && others == 0 {
        Hardness::Easy
    } else if (others <= 2 && c1 <= 1 && c2 == 0) || (c1 <= 2 && others < 2 && c2 == 0) {
        Hardness::Medium
    } else if (others > 2 && c1 <= 2 && c2 == 0)
        || (c1 > 2 && c1 <= 3 && others <= 2 && c2 == 0)
        || (c1 <= 1 && others == 0 && c2 <= 1)
    {
        Hardness::Hard
    } else {
        Hardness::Extra
    }
}

/// Component-1 count: presence of WHERE, GROUP BY, ORDER BY, LIMIT, JOIN,
/// OR, LIKE in the outermost query (per the official scorer, which evaluates
/// the top-level SQL dict).
fn count_component1(q: &Query) -> usize {
    let s = q.head_select();
    let mut count = 0;
    if s.where_cond.is_some() {
        count += 1;
    }
    if !s.group_by.is_empty() {
        count += 1;
    }
    if !s.order_by.is_empty() {
        count += 1;
    }
    if s.limit.is_some() {
        count += 1;
    }
    if let Some(from) = &s.from {
        count += from.joins.len();
    }
    if let Some(w) = &s.where_cond {
        count += count_or(w) + count_like(w);
    }
    if let Some(h) = &s.having {
        count += count_or(h) + count_like(h);
    }
    count
}

/// Component-2 count: nesting — set operations plus subqueries in
/// WHERE/HAVING/FROM.
fn count_component2(q: &Query) -> usize {
    let mut count = 0;
    if let Query::Compound { .. } = q {
        count += 1;
    }
    let s = q.head_select();
    if s.where_cond.as_ref().is_some_and(Cond::contains_subquery) {
        count += 1;
    }
    if s.having.as_ref().is_some_and(Cond::contains_subquery) {
        count += 1;
    }
    if let Some(from) = &s.from {
        if matches!(from.base, TableRef::Derived { .. })
            || from
                .joins
                .iter()
                .any(|j| matches!(j.table, TableRef::Derived { .. }))
        {
            count += 1;
        }
    }
    count
}

/// "Others" count: number of aggregates > 1, select columns > 1, where
/// conditions > 1, group-by keys > 1 — each contributes one point.
fn count_others(q: &Query) -> usize {
    let s = q.head_select();
    let mut count = 0;

    let mut n_agg = 0usize;
    for item in &s.items {
        n_agg += count_aggs_expr(&item.expr);
    }
    for k in &s.order_by {
        n_agg += count_aggs_expr(&k.expr);
    }
    if let Some(h) = &s.having {
        n_agg += count_aggs_cond(h);
    }
    if n_agg > 1 {
        count += 1;
    }
    if s.items.len() > 1 {
        count += 1;
    }
    if let Some(w) = &s.where_cond {
        if w.conjuncts().len() > 1 || count_or(w) > 0 {
            count += 1;
        }
    }
    if s.group_by.len() > 1 {
        count += 1;
    }
    count
}

fn count_or(c: &Cond) -> usize {
    match c {
        Cond::Or(l, r) => 1 + count_or(l) + count_or(r),
        Cond::And(l, r) => count_or(l) + count_or(r),
        Cond::Not(inner) => count_or(inner),
        _ => 0,
    }
}

fn count_like(c: &Cond) -> usize {
    match c {
        Cond::Like { .. } => 1,
        Cond::Or(l, r) | Cond::And(l, r) => count_like(l) + count_like(r),
        Cond::Not(inner) => count_like(inner),
        _ => 0,
    }
}

fn count_aggs_expr(e: &Expr) -> usize {
    match e {
        Expr::Agg { .. } => 1,
        Expr::Arith { left, right, .. } => count_aggs_expr(left) + count_aggs_expr(right),
        Expr::Neg(inner) => count_aggs_expr(inner),
        _ => 0,
    }
}

fn count_aggs_cond(c: &Cond) -> usize {
    match c {
        Cond::Cmp { left, right, .. } => {
            count_aggs_expr(left)
                + match right {
                    Operand::Expr(e) => count_aggs_expr(e),
                    Operand::Subquery(_) => 0,
                }
        }
        Cond::And(l, r) | Cond::Or(l, r) => count_aggs_cond(l) + count_aggs_cond(r),
        Cond::Not(inner) => count_aggs_cond(inner),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn h(sql: &str) -> Hardness {
        classify(&parse_query(sql).unwrap())
    }

    #[test]
    fn trivial_select_is_easy() {
        assert_eq!(h("SELECT name FROM singer"), Hardness::Easy);
        assert_eq!(h("SELECT count(*) FROM singer"), Hardness::Easy);
        assert_eq!(h("SELECT name FROM singer WHERE age > 20"), Hardness::Easy);
    }

    #[test]
    fn moderate_queries_are_medium() {
        assert_eq!(
            h("SELECT name, age FROM singer WHERE age > 20"),
            Hardness::Medium
        );
        assert_eq!(
            h("SELECT T1.name FROM singer AS T1 JOIN song AS T2 ON T1.id = T2.sid WHERE T2.year = 2000"),
            Hardness::Medium
        );
    }

    #[test]
    fn multi_component_queries_are_hard_or_extra() {
        let hardness = h(
            "SELECT country, count(*), avg(age) FROM singer WHERE age > 20 AND country != 'US' GROUP BY country",
        );
        assert!(hardness >= Hardness::Hard, "got {hardness:?}");
    }

    #[test]
    fn nested_multi_join_is_extra() {
        let hardness = h(
            "SELECT T1.name FROM a AS T1 JOIN b AS T2 ON T1.i = T2.i JOIN c AS T3 ON T2.j = T3.j \
             WHERE T1.x > 3 OR T1.y LIKE '%z%' GROUP BY T1.name ORDER BY count(*) DESC LIMIT 5",
        );
        assert_eq!(hardness, Hardness::Extra);
    }

    #[test]
    fn simple_nested_is_hard() {
        assert_eq!(
            h("SELECT name FROM singer WHERE id IN (SELECT sid FROM song)"),
            Hardness::Hard
        );
    }

    #[test]
    fn set_op_counts_as_nesting() {
        let hardness = h("SELECT a FROM t UNION SELECT a FROM u");
        assert!(hardness >= Hardness::Hard);
    }

    #[test]
    fn buckets_order() {
        assert!(Hardness::Easy < Hardness::Medium);
        assert!(Hardness::Hard < Hardness::Extra);
    }
}
