//! Recursive-descent parser for the Spider SQL subset.
//!
//! The grammar accepts everything Spider gold queries use plus a bit more
//! slack (comma cross-joins, `==`, optional `AS`, parenthesized compound
//! operands), because the evaluation harness must also parse *model output*,
//! which is messier than the gold corpus.

use crate::ast::*;
use crate::error::{ParseError, ParseResult};
use crate::token::{lex, Keyword as Kw, Sym, Token, TokenKind as Tk};

/// Parse a SQL string into a [`Query`].
///
/// Trailing semicolons are accepted; any other trailing garbage is an error.
pub fn parse_query(sql: &str) -> ParseResult<Query> {
    let out = parse_query_inner(sql);
    if obskit::enabled() {
        let g = obskit::global();
        g.add_counter("sqlkit.parses", 1);
        if out.is_err() {
            g.add_counter("sqlkit.parse_errors", 1);
        }
    }
    out
}

fn parse_query_inner(sql: &str) -> ParseResult<Query> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.eat_sym(Sym::Semicolon);
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tk {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &Tk {
        self.tokens
            .get(self.pos + 1)
            .map(|t| &t.kind)
            .unwrap_or(&Tk::Eof)
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> Tk {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: Kw) -> bool {
        if self.peek() == &Tk::Keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_sym(&mut self, s: Sym) -> bool {
        if self.peek() == &Tk::Sym(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: Kw) -> ParseResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {}", kw.as_str())))
        }
    }

    fn expect_sym(&mut self, s: Sym) -> ParseResult<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", s.as_str())))
        }
    }

    fn expect_eof(&mut self) -> ParseResult<()> {
        if self.peek() == &Tk::Eof {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing token {}", self.peek())))
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.offset())
    }

    fn ident(&mut self) -> ParseResult<String> {
        match self.peek().clone() {
            Tk::Ident(s) => {
                self.bump();
                Ok(s)
            }
            // Aggregate names can be used as plain identifiers (column named
            // "count" exists in some schemas); allow them where an identifier
            // is required.
            Tk::Keyword(k @ (Kw::Count | Kw::Sum | Kw::Avg | Kw::Min | Kw::Max)) => {
                self.bump();
                Ok(k.as_str().to_lowercase())
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    // ---- query level ----

    fn query(&mut self) -> ParseResult<Query> {
        let mut left = self.query_operand()?;
        loop {
            let op = match self.peek() {
                Tk::Keyword(Kw::Union) => SetOp::Union,
                Tk::Keyword(Kw::Intersect) => SetOp::Intersect,
                Tk::Keyword(Kw::Except) => SetOp::Except,
                _ => break,
            };
            self.bump();
            // `UNION ALL` is accepted and treated as UNION; Spider's EX
            // metric compares result multisets so the distinction is handled
            // by the executor's set-op semantics.
            if let Tk::Ident(w) = self.peek() {
                if w.eq_ignore_ascii_case("all") {
                    self.bump();
                }
            }
            let right = self.query_operand()?;
            left = Query::Compound {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn query_operand(&mut self) -> ParseResult<Query> {
        if self.peek() == &Tk::Sym(Sym::LParen) && self.peek2() == &Tk::Keyword(Kw::Select) {
            self.bump();
            let q = self.query()?;
            self.expect_sym(Sym::RParen)?;
            Ok(q)
        } else {
            Ok(Query::Select(self.select_core()?))
        }
    }

    fn select_core(&mut self) -> ParseResult<Select> {
        self.expect_kw(Kw::Select)?;
        let distinct = self.eat_kw(Kw::Distinct);
        let mut items = vec![self.select_item()?];
        while self.eat_sym(Sym::Comma) {
            items.push(self.select_item()?);
        }
        let from = if self.eat_kw(Kw::From) {
            Some(self.from_clause()?)
        } else {
            None
        };
        let where_cond = if self.eat_kw(Kw::Where) {
            Some(self.cond()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw(Kw::Group) {
            self.expect_kw(Kw::By)?;
            group_by.push(self.column_ref()?);
            while self.eat_sym(Sym::Comma) {
                group_by.push(self.column_ref()?);
            }
        }
        let having = if self.eat_kw(Kw::Having) {
            Some(self.cond()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw(Kw::Order) {
            self.expect_kw(Kw::By)?;
            order_by.push(self.order_key()?);
            while self.eat_sym(Sym::Comma) {
                order_by.push(self.order_key()?);
            }
        }
        let limit = if self.eat_kw(Kw::Limit) {
            match self.bump() {
                Tk::Int(v) if v >= 0 => Some(v as u64),
                other => {
                    return Err(self.err(format!("expected row count after LIMIT, found {other}")))
                }
            }
        } else {
            None
        };
        Ok(Select {
            distinct,
            items,
            from,
            where_cond,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> ParseResult<SelectItem> {
        if self.peek() == &Tk::Sym(Sym::Star) {
            self.bump();
            return Ok(SelectItem::bare(Expr::Star));
        }
        // `t1.*`
        if let (Tk::Ident(t), Tk::Sym(Sym::Dot)) = (self.peek().clone(), self.peek2().clone()) {
            if self.tokens.get(self.pos + 2).map(|t| &t.kind) == Some(&Tk::Sym(Sym::Star)) {
                self.bump();
                self.bump();
                self.bump();
                // Qualified star projects all columns of one table; model it
                // as a Star with the qualifier recorded via a pseudo column.
                return Ok(SelectItem {
                    expr: Expr::Col(ColumnRef::qualified(t, "*")),
                    alias: None,
                });
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw(Kw::As) {
            Some(self.ident()?)
        } else if let Tk::Ident(_) = self.peek() {
            // Bare alias only when the next token is clearly an identifier and
            // not a qualified reference continuation.
            if self.peek2() == &Tk::Sym(Sym::Dot) {
                None
            } else {
                Some(self.ident()?)
            }
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    #[allow(clippy::wrong_self_convention)] // parses the FROM clause
    fn from_clause(&mut self) -> ParseResult<FromClause> {
        let base = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            if self.eat_sym(Sym::Comma) {
                // Comma cross-join; condition lives in WHERE.
                let table = self.table_ref()?;
                joins.push(Join { table, on: None });
            } else if matches!(self.peek(), Tk::Keyword(Kw::Join | Kw::Inner | Kw::Left)) {
                // INNER JOIN / LEFT [OUTER] JOIN / JOIN all parse; Spider gold
                // queries are inner joins, and the executor treats LEFT as
                // INNER (documented simplification — gold queries never rely
                // on outer semantics).
                self.eat_kw(Kw::Inner);
                if self.eat_kw(Kw::Left) {
                    self.eat_kw(Kw::Outer);
                }
                self.expect_kw(Kw::Join)?;
                let table = self.table_ref()?;
                let on = if self.eat_kw(Kw::On) {
                    Some(self.cond_no_or()?)
                } else {
                    None
                };
                joins.push(Join { table, on });
            } else {
                break;
            }
        }
        Ok(FromClause { base, joins })
    }

    fn table_ref(&mut self) -> ParseResult<TableRef> {
        if self.peek() == &Tk::Sym(Sym::LParen) {
            self.bump();
            let q = self.query()?;
            self.expect_sym(Sym::RParen)?;
            let alias = self.table_alias()?;
            return Ok(TableRef::Derived {
                query: Box::new(q),
                alias,
            });
        }
        let name = self.ident()?;
        let alias = self.table_alias()?;
        Ok(TableRef::Named { name, alias })
    }

    fn table_alias(&mut self) -> ParseResult<Option<String>> {
        if self.eat_kw(Kw::As) {
            return Ok(Some(self.ident()?));
        }
        if let Tk::Ident(_) = self.peek() {
            return Ok(Some(self.ident()?));
        }
        Ok(None)
    }

    fn order_key(&mut self) -> ParseResult<OrderKey> {
        let expr = self.expr()?;
        let dir = if self.eat_kw(Kw::Desc) {
            SortDir::Desc
        } else {
            self.eat_kw(Kw::Asc);
            SortDir::Asc
        };
        Ok(OrderKey { expr, dir })
    }

    // ---- conditions ----

    fn cond(&mut self) -> ParseResult<Cond> {
        let mut left = self.and_cond()?;
        while self.eat_kw(Kw::Or) {
            let right = self.and_cond()?;
            left = Cond::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    /// JOIN ON conditions: AND chains only, so that a following OR cannot be
    /// swallowed into the ON clause (matches SQLite precedence in practice
    /// for Spider queries, which never put OR in ON).
    fn cond_no_or(&mut self) -> ParseResult<Cond> {
        self.and_cond()
    }

    fn and_cond(&mut self) -> ParseResult<Cond> {
        let mut left = self.not_cond()?;
        while self.eat_kw(Kw::And) {
            let right = self.not_cond()?;
            left = Cond::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_cond(&mut self) -> ParseResult<Cond> {
        if self.peek() == &Tk::Keyword(Kw::Not) && self.peek2() != &Tk::Keyword(Kw::Exists) {
            // `NOT <cond>`; but `NOT IN` / `NOT LIKE` / `NOT BETWEEN` are
            // handled inside predicate(), so only consume NOT when it prefixes
            // a parenthesized condition or another NOT.
            if matches!(self.peek2(), Tk::Sym(Sym::LParen) | Tk::Keyword(Kw::Not)) {
                self.bump();
                let inner = self.not_cond()?;
                return Ok(Cond::Not(Box::new(inner)));
            }
        }
        self.predicate()
    }

    fn predicate(&mut self) -> ParseResult<Cond> {
        if self.eat_kw(Kw::Exists) {
            self.expect_sym(Sym::LParen)?;
            let q = self.query()?;
            self.expect_sym(Sym::RParen)?;
            return Ok(Cond::Exists {
                negated: false,
                query: Box::new(q),
            });
        }
        if self.peek() == &Tk::Keyword(Kw::Not) && self.peek2() == &Tk::Keyword(Kw::Exists) {
            self.bump();
            self.bump();
            self.expect_sym(Sym::LParen)?;
            let q = self.query()?;
            self.expect_sym(Sym::RParen)?;
            return Ok(Cond::Exists {
                negated: true,
                query: Box::new(q),
            });
        }
        // Parenthesized boolean group (only when it cannot be an expression
        // comparison; disambiguate by trying expr first when the parens wrap
        // an arithmetic expression). Spider conditions never parenthesize
        // plain expressions on the left of a comparison, so `(` followed by
        // SELECT is a subquery (invalid standalone) and anything else is
        // treated as a grouped condition if it parses as one.
        if self.peek() == &Tk::Sym(Sym::LParen) && self.peek2() != &Tk::Keyword(Kw::Select) {
            let save = self.pos;
            self.bump();
            if let Ok(c) = self.cond() {
                if self.eat_sym(Sym::RParen) {
                    // Make sure this really was a grouped condition and not a
                    // parenthesized scalar that continues with an operator.
                    if !matches!(
                        self.peek(),
                        Tk::Sym(
                            Sym::Eq
                                | Sym::Neq
                                | Sym::Lt
                                | Sym::Le
                                | Sym::Gt
                                | Sym::Ge
                                | Sym::Plus
                                | Sym::Minus
                                | Sym::Star
                                | Sym::Slash
                        )
                    ) {
                        return Ok(c);
                    }
                }
            }
            self.pos = save;
        }
        let left = self.expr()?;
        let negated = self.eat_kw(Kw::Not);
        match self.peek().clone() {
            Tk::Sym(s @ (Sym::Eq | Sym::Neq | Sym::Lt | Sym::Le | Sym::Gt | Sym::Ge)) => {
                if negated {
                    return Err(self.err("NOT before comparison operator"));
                }
                self.bump();
                let op = match s {
                    Sym::Eq => CmpOp::Eq,
                    Sym::Neq => CmpOp::Neq,
                    Sym::Lt => CmpOp::Lt,
                    Sym::Le => CmpOp::Le,
                    Sym::Gt => CmpOp::Gt,
                    Sym::Ge => CmpOp::Ge,
                    _ => unreachable!(),
                };
                let right = if self.peek() == &Tk::Sym(Sym::LParen)
                    && self.peek2() == &Tk::Keyword(Kw::Select)
                {
                    self.bump();
                    let q = self.query()?;
                    self.expect_sym(Sym::RParen)?;
                    Operand::Subquery(Box::new(q))
                } else {
                    Operand::Expr(self.expr()?)
                };
                Ok(Cond::Cmp { left, op, right })
            }
            Tk::Keyword(Kw::Between) => {
                self.bump();
                let low = self.expr()?;
                self.expect_kw(Kw::And)?;
                let high = self.expr()?;
                Ok(Cond::Between {
                    expr: left,
                    negated,
                    low,
                    high,
                })
            }
            Tk::Keyword(Kw::In) => {
                self.bump();
                self.expect_sym(Sym::LParen)?;
                let source = if self.peek() == &Tk::Keyword(Kw::Select) {
                    let q = self.query()?;
                    InSource::Subquery(Box::new(q))
                } else {
                    let mut lits = vec![self.literal()?];
                    while self.eat_sym(Sym::Comma) {
                        lits.push(self.literal()?);
                    }
                    InSource::List(lits)
                };
                self.expect_sym(Sym::RParen)?;
                Ok(Cond::In {
                    expr: left,
                    negated,
                    source,
                })
            }
            Tk::Keyword(Kw::Like) => {
                self.bump();
                match self.bump() {
                    Tk::Str(pattern) => Ok(Cond::Like {
                        expr: left,
                        negated,
                        pattern,
                    }),
                    other => {
                        Err(self.err(format!("expected string pattern after LIKE, found {other}")))
                    }
                }
            }
            Tk::Keyword(Kw::Is) => {
                if negated {
                    return Err(self.err("NOT before IS"));
                }
                self.bump();
                let neg = self.eat_kw(Kw::Not);
                self.expect_kw(Kw::Null)?;
                Ok(Cond::IsNull {
                    expr: left,
                    negated: neg,
                })
            }
            other => Err(self.err(format!("expected predicate operator, found {other}"))),
        }
    }

    fn literal(&mut self) -> ParseResult<Literal> {
        let neg = self.eat_sym(Sym::Minus);
        match self.bump() {
            Tk::Int(v) => Ok(Literal::Int(if neg { -v } else { v })),
            Tk::Float(v) => Ok(Literal::Float(if neg { -v } else { v })),
            Tk::Str(s) if !neg => Ok(Literal::Str(s)),
            Tk::Keyword(Kw::Null) if !neg => Ok(Literal::Null),
            other => Err(self.err(format!("expected literal, found {other}"))),
        }
    }

    // ---- expressions ----

    fn expr(&mut self) -> ParseResult<Expr> {
        let mut left = self.term()?;
        loop {
            let op = match self.peek() {
                Tk::Sym(Sym::Plus) => ArithOp::Add,
                Tk::Sym(Sym::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.term()?;
            left = Expr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn term(&mut self) -> ParseResult<Expr> {
        let mut left = self.factor()?;
        loop {
            let op = match self.peek() {
                Tk::Sym(Sym::Star) => ArithOp::Mul,
                Tk::Sym(Sym::Slash) => ArithOp::Div,
                _ => break,
            };
            self.bump();
            let right = self.factor()?;
            left = Expr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn factor(&mut self) -> ParseResult<Expr> {
        if self.eat_sym(Sym::Minus) {
            let inner = self.factor()?;
            // Fold negated numeric literals so `-5` parses to `Lit(-5)`,
            // keeping print∘parse a fixed point.
            return Ok(match inner {
                Expr::Lit(Literal::Int(v)) => Expr::Lit(Literal::Int(-v)),
                Expr::Lit(Literal::Float(v)) => Expr::Lit(Literal::Float(-v)),
                other => Expr::Neg(Box::new(other)),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> ParseResult<Expr> {
        match self.peek().clone() {
            Tk::Int(v) => {
                self.bump();
                Ok(Expr::Lit(Literal::Int(v)))
            }
            Tk::Float(v) => {
                self.bump();
                Ok(Expr::Lit(Literal::Float(v)))
            }
            Tk::Str(s) => {
                self.bump();
                Ok(Expr::Lit(Literal::Str(s)))
            }
            Tk::Keyword(Kw::Null) => {
                self.bump();
                Ok(Expr::Lit(Literal::Null))
            }
            Tk::Keyword(k @ (Kw::Count | Kw::Sum | Kw::Avg | Kw::Min | Kw::Max)) => {
                // Aggregate call only when followed by '('; otherwise it is a
                // column named e.g. "count".
                if self.peek2() == &Tk::Sym(Sym::LParen) {
                    self.bump();
                    self.bump();
                    let func = match k {
                        Kw::Count => AggFunc::Count,
                        Kw::Sum => AggFunc::Sum,
                        Kw::Avg => AggFunc::Avg,
                        Kw::Min => AggFunc::Min,
                        Kw::Max => AggFunc::Max,
                        _ => unreachable!(),
                    };
                    let distinct = self.eat_kw(Kw::Distinct);
                    let arg = if self.peek() == &Tk::Sym(Sym::Star) {
                        self.bump();
                        Expr::Star
                    } else {
                        self.expr()?
                    };
                    self.expect_sym(Sym::RParen)?;
                    Ok(Expr::Agg {
                        func,
                        distinct,
                        arg: Box::new(arg),
                    })
                } else {
                    self.column_expr()
                }
            }
            Tk::Ident(_) => self.column_expr(),
            Tk::Sym(Sym::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect_sym(Sym::RParen)?;
                Ok(e)
            }
            Tk::Sym(Sym::Star) => {
                self.bump();
                Ok(Expr::Star)
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }

    fn column_expr(&mut self) -> ParseResult<Expr> {
        Ok(Expr::Col(self.column_ref()?))
    }

    fn column_ref(&mut self) -> ParseResult<ColumnRef> {
        let first = self.ident()?;
        if self.eat_sym(Sym::Dot) {
            if self.peek() == &Tk::Sym(Sym::Star) {
                self.bump();
                return Ok(ColumnRef::qualified(first, "*"));
            }
            let col = self.ident()?;
            Ok(ColumnRef::qualified(first, col))
        } else {
            Ok(ColumnRef::new(first))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(sql: &str) -> Query {
        parse_query(sql).unwrap_or_else(|e| panic!("parse failed for {sql:?}: {e}"))
    }

    #[test]
    fn parses_simple_select() {
        let q = ok("SELECT name FROM singer");
        let s = q.head_select();
        assert_eq!(s.items.len(), 1);
        assert!(!s.distinct);
    }

    #[test]
    fn parses_distinct_and_star() {
        let q = ok("SELECT DISTINCT * FROM concert");
        let s = q.head_select();
        assert!(s.distinct);
        assert_eq!(s.items[0].expr, Expr::Star);
    }

    #[test]
    fn parses_aggregates() {
        let q = ok("SELECT count(*), avg(age), sum(DISTINCT salary) FROM t");
        let s = q.head_select();
        assert_eq!(s.items.len(), 3);
        match &s.items[2].expr {
            Expr::Agg {
                func: AggFunc::Sum,
                distinct: true,
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_joins_with_aliases() {
        let q = ok(
            "SELECT T1.name, T2.title FROM singer AS T1 JOIN song AS T2 ON T1.id = T2.singer_id",
        );
        let s = q.head_select();
        let from = s.from.as_ref().unwrap();
        assert_eq!(from.joins.len(), 1);
        assert!(from.joins[0].on.is_some());
    }

    #[test]
    fn parses_where_with_and_or_precedence() {
        let q = ok("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3");
        let s = q.head_select();
        // OR binds loosest: Or(x=1, And(y=2,z=3))
        match s.where_cond.as_ref().unwrap() {
            Cond::Or(_, r) => assert!(matches!(**r, Cond::And(_, _))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_group_having_order_limit() {
        let q = ok(
            "SELECT country, count(*) FROM singer GROUP BY country HAVING count(*) > 3 ORDER BY count(*) DESC LIMIT 5",
        );
        let s = q.head_select();
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by[0].dir, SortDir::Desc);
        assert_eq!(s.limit, Some(5));
    }

    #[test]
    fn parses_in_subquery() {
        let q = ok("SELECT name FROM singer WHERE id IN (SELECT singer_id FROM song)");
        assert!(q.is_nested());
    }

    #[test]
    fn parses_not_in_list() {
        let q = ok("SELECT name FROM t WHERE x NOT IN (1, 2, 3)");
        let s = q.head_select();
        match s.where_cond.as_ref().unwrap() {
            Cond::In {
                negated: true,
                source: InSource::List(l),
                ..
            } => assert_eq!(l.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_comparison_to_subquery() {
        let q = ok("SELECT name FROM t WHERE age > (SELECT avg(age) FROM t)");
        let s = q.head_select();
        match s.where_cond.as_ref().unwrap() {
            Cond::Cmp {
                right: Operand::Subquery(_),
                op: CmpOp::Gt,
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_between_like_isnull() {
        ok("SELECT a FROM t WHERE b BETWEEN 1 AND 5");
        ok("SELECT a FROM t WHERE name LIKE '%son%'");
        ok("SELECT a FROM t WHERE c IS NOT NULL");
        ok("SELECT a FROM t WHERE name NOT LIKE 'A%'");
    }

    #[test]
    fn parses_set_operations() {
        let q = ok("SELECT a FROM t UNION SELECT b FROM u");
        assert!(matches!(
            q,
            Query::Compound {
                op: SetOp::Union,
                ..
            }
        ));
        let q = ok("SELECT a FROM t EXCEPT SELECT a FROM t WHERE x = 1");
        assert!(matches!(
            q,
            Query::Compound {
                op: SetOp::Except,
                ..
            }
        ));
        let q = ok("SELECT a FROM t INTERSECT SELECT a FROM u");
        assert!(matches!(
            q,
            Query::Compound {
                op: SetOp::Intersect,
                ..
            }
        ));
    }

    #[test]
    fn parses_derived_table() {
        let q = ok(
            "SELECT T.c FROM (SELECT country AS c, count(*) AS n FROM singer GROUP BY country) AS T WHERE T.n > 2",
        );
        let s = q.head_select();
        assert!(matches!(
            s.from.as_ref().unwrap().base,
            TableRef::Derived { .. }
        ));
    }

    #[test]
    fn parses_exists() {
        let q = ok("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)");
        assert!(q.is_nested());
        ok("SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM u)");
    }

    #[test]
    fn parses_arithmetic_precedence() {
        let q = ok("SELECT a + b * c FROM t");
        let s = q.head_select();
        match &s.items[0].expr {
            Expr::Arith {
                op: ArithOp::Add,
                right,
                ..
            } => {
                assert!(matches!(
                    **right,
                    Expr::Arith {
                        op: ArithOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_negative_literal() {
        let q = ok("SELECT a FROM t WHERE x > -5");
        let s = q.head_select();
        match s.where_cond.as_ref().unwrap() {
            Cond::Cmp {
                right: Operand::Expr(e),
                ..
            } => {
                assert_eq!(*e, Expr::Lit(Literal::Int(-5)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_comma_join() {
        let q = ok("SELECT a.x, b.y FROM a, b WHERE a.id = b.id");
        let s = q.head_select();
        assert_eq!(s.from.as_ref().unwrap().joins.len(), 1);
        assert!(s.from.as_ref().unwrap().joins[0].on.is_none());
    }

    #[test]
    fn parses_trailing_semicolon() {
        ok("SELECT a FROM t;");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_query("SELECT FROM WHERE").is_err());
        assert!(parse_query("SELECT a FROM t WHERE").is_err());
        assert!(parse_query("hello world").is_err());
        assert!(parse_query("").is_err());
        assert!(parse_query("SELECT a FROM t extra garbage !!").is_err());
    }

    #[test]
    fn parses_qualified_star_item() {
        let q = ok("SELECT T1.* FROM singer AS T1");
        let s = q.head_select();
        match &s.items[0].expr {
            Expr::Col(c) => assert_eq!(c.column, "*"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_order_by_aggregate() {
        let q = ok("SELECT country FROM singer GROUP BY country ORDER BY count(*) DESC LIMIT 1");
        let s = q.head_select();
        assert!(s.order_by[0].expr.contains_aggregate());
    }

    #[test]
    fn parses_union_all_as_union() {
        let q = ok("SELECT a FROM t UNION ALL SELECT a FROM u");
        assert!(matches!(
            q,
            Query::Compound {
                op: SetOp::Union,
                ..
            }
        ));
    }

    #[test]
    fn parses_grouped_boolean_condition() {
        let q = ok("SELECT a FROM t WHERE (x = 1 OR y = 2) AND z = 3");
        let s = q.head_select();
        assert!(matches!(s.where_cond.as_ref().unwrap(), Cond::And(_, _)));
    }

    #[test]
    fn select_item_alias_variants() {
        let q = ok("SELECT count(*) AS n FROM t");
        assert_eq!(q.head_select().items[0].alias.as_deref(), Some("n"));
        let q = ok("SELECT count(*) n FROM t");
        assert_eq!(q.head_select().items[0].alias.as_deref(), Some("n"));
    }
}
