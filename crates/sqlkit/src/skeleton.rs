//! SQL skeleton extraction and skeleton similarity.
//!
//! DAIL-SQL's example-selection hypothesis is that LLMs learn the mapping
//! from questions to *query skeletons* — the query with all schema-specific
//! identifiers and literal values masked out. This module extracts such
//! skeletons and measures similarity between them, which drives both DAIL
//! example selection (`promptkit`) and the simulated LLM's in-context voting
//! (`simllm`).

use crate::ast::*;

/// One token of a query skeleton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SkelTok {
    /// `SELECT`
    Select,
    /// `DISTINCT` (in the projection head)
    Distinct,
    /// a projected plain column placeholder
    Col,
    /// a projected `*`
    Star,
    /// an aggregate placeholder with its function
    Agg(AggFunc),
    /// arithmetic between projections/operands
    Arith,
    /// `FROM` with the number of joined tables (1 = no join)
    From(u8),
    /// `WHERE`
    Where,
    /// a comparison predicate with its operator
    Cmp(CmpOp),
    /// `BETWEEN`
    Between,
    /// `IN`
    In,
    /// `LIKE`
    Like,
    /// `IS NULL`
    IsNull,
    /// `EXISTS`
    Exists,
    /// `NOT` modifier
    Not,
    /// `AND` connective
    And,
    /// `OR` connective
    Or,
    /// start of a nested subquery
    SubqOpen,
    /// end of a nested subquery
    SubqClose,
    /// `GROUP BY`
    GroupBy,
    /// `HAVING`
    Having,
    /// `ORDER BY`
    OrderBy,
    /// ascending key
    Asc,
    /// descending key
    Desc,
    /// `LIMIT`
    Limit,
    /// set operation
    Set(SetOp),
}

impl SkelTok {
    /// Encode the token as a `u16` for compact on-disk storage: the high
    /// byte is the variant tag, the low byte the payload (aggregate
    /// function, join arity, comparison operator, or set operation).
    /// [`SkelTok::from_code`] is the exact inverse.
    pub fn to_code(self) -> u16 {
        match self {
            SkelTok::Select => 0x0000,
            SkelTok::Distinct => 0x0001,
            SkelTok::Col => 0x0002,
            SkelTok::Star => 0x0003,
            SkelTok::Arith => 0x0004,
            SkelTok::Where => 0x0005,
            SkelTok::Between => 0x0006,
            SkelTok::In => 0x0007,
            SkelTok::Like => 0x0008,
            SkelTok::IsNull => 0x0009,
            SkelTok::Exists => 0x000a,
            SkelTok::Not => 0x000b,
            SkelTok::And => 0x000c,
            SkelTok::Or => 0x000d,
            SkelTok::SubqOpen => 0x000e,
            SkelTok::SubqClose => 0x000f,
            SkelTok::GroupBy => 0x0010,
            SkelTok::Having => 0x0011,
            SkelTok::OrderBy => 0x0012,
            SkelTok::Asc => 0x0013,
            SkelTok::Desc => 0x0014,
            SkelTok::Limit => 0x0015,
            SkelTok::Agg(f) => {
                0x0100
                    | match f {
                        AggFunc::Count => 0,
                        AggFunc::Sum => 1,
                        AggFunc::Avg => 2,
                        AggFunc::Min => 3,
                        AggFunc::Max => 4,
                    }
            }
            SkelTok::From(n) => 0x0200 | n as u16,
            SkelTok::Cmp(op) => {
                0x0300
                    | match op {
                        CmpOp::Eq => 0,
                        CmpOp::Neq => 1,
                        CmpOp::Lt => 2,
                        CmpOp::Le => 3,
                        CmpOp::Gt => 4,
                        CmpOp::Ge => 5,
                    }
            }
            SkelTok::Set(op) => {
                0x0400
                    | match op {
                        SetOp::Union => 0,
                        SetOp::Intersect => 1,
                        SetOp::Except => 2,
                    }
            }
        }
    }

    /// Decode a code produced by [`SkelTok::to_code`]; `None` for codes no
    /// variant produces (the decoder treats those as corruption).
    pub fn from_code(code: u16) -> Option<SkelTok> {
        let payload = (code & 0x00ff) as u8;
        Some(match code >> 8 {
            0x00 => match payload {
                0x00 => SkelTok::Select,
                0x01 => SkelTok::Distinct,
                0x02 => SkelTok::Col,
                0x03 => SkelTok::Star,
                0x04 => SkelTok::Arith,
                0x05 => SkelTok::Where,
                0x06 => SkelTok::Between,
                0x07 => SkelTok::In,
                0x08 => SkelTok::Like,
                0x09 => SkelTok::IsNull,
                0x0a => SkelTok::Exists,
                0x0b => SkelTok::Not,
                0x0c => SkelTok::And,
                0x0d => SkelTok::Or,
                0x0e => SkelTok::SubqOpen,
                0x0f => SkelTok::SubqClose,
                0x10 => SkelTok::GroupBy,
                0x11 => SkelTok::Having,
                0x12 => SkelTok::OrderBy,
                0x13 => SkelTok::Asc,
                0x14 => SkelTok::Desc,
                0x15 => SkelTok::Limit,
                _ => return None,
            },
            0x01 => SkelTok::Agg(match payload {
                0 => AggFunc::Count,
                1 => AggFunc::Sum,
                2 => AggFunc::Avg,
                3 => AggFunc::Min,
                4 => AggFunc::Max,
                _ => return None,
            }),
            0x02 => SkelTok::From(payload),
            0x03 => SkelTok::Cmp(match payload {
                0 => CmpOp::Eq,
                1 => CmpOp::Neq,
                2 => CmpOp::Lt,
                3 => CmpOp::Le,
                4 => CmpOp::Gt,
                5 => CmpOp::Ge,
                _ => return None,
            }),
            0x04 => SkelTok::Set(match payload {
                0 => SetOp::Union,
                1 => SetOp::Intersect,
                2 => SetOp::Except,
                _ => return None,
            }),
            _ => return None,
        })
    }

    /// Render the token for human-readable skeleton strings.
    pub fn as_str(self) -> &'static str {
        match self {
            SkelTok::Select => "SELECT",
            SkelTok::Distinct => "DISTINCT",
            SkelTok::Col => "_",
            SkelTok::Star => "*",
            SkelTok::Agg(f) => f.as_str(),
            SkelTok::Arith => "ARITH",
            SkelTok::From(_) => "FROM",
            SkelTok::Where => "WHERE",
            SkelTok::Cmp(op) => op.as_str(),
            SkelTok::Between => "BETWEEN",
            SkelTok::In => "IN",
            SkelTok::Like => "LIKE",
            SkelTok::IsNull => "ISNULL",
            SkelTok::Exists => "EXISTS",
            SkelTok::Not => "NOT",
            SkelTok::And => "AND",
            SkelTok::Or => "OR",
            SkelTok::SubqOpen => "(",
            SkelTok::SubqClose => ")",
            SkelTok::GroupBy => "GROUPBY",
            SkelTok::Having => "HAVING",
            SkelTok::OrderBy => "ORDERBY",
            SkelTok::Asc => "ASC",
            SkelTok::Desc => "DESC",
            SkelTok::Limit => "LIMIT",
            SkelTok::Set(op) => op.as_str(),
        }
    }
}

/// A query skeleton: the structural token sequence of a query with all
/// schema identifiers and values masked.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Skeleton(pub Vec<SkelTok>);

impl Skeleton {
    /// Extract the skeleton of a query.
    pub fn of(query: &Query) -> Skeleton {
        let mut toks = Vec::with_capacity(16);
        walk_query(query, &mut toks);
        Skeleton(toks)
    }

    /// Human-readable skeleton string, e.g. `SELECT _ FROM WHERE _ = _`.
    pub fn render(&self) -> String {
        let mut s = String::with_capacity(self.0.len() * 5);
        for (i, t) in self.0.iter().enumerate() {
            if i > 0 {
                s.push(' ');
            }
            s.push_str(t.as_str());
        }
        s
    }

    /// Stable 64-bit structural fingerprint of the skeleton (FNV-1a over the
    /// token sequence, including each token's payload such as the join arity
    /// in `From(n)`). Equal skeletons always collide; the digest rollup in
    /// `eval` uses this as its grouping key.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        };
        for t in &self.0 {
            for b in t.as_str().bytes() {
                eat(b);
            }
            // `as_str` collapses payload-carrying tokens (e.g. every `From(n)`
            // renders "FROM"); fold the payload in explicitly.
            if let SkelTok::From(n) = t {
                eat(*n);
            }
            eat(0x1f); // token separator so "A","BC" != "AB","C"
        }
        h
    }

    /// Similarity in `[0, 1]`: 1 − normalized Levenshtein distance over the
    /// token sequences. Identical skeletons score 1; disjoint ones approach 0.
    pub fn similarity(&self, other: &Skeleton) -> f64 {
        let n = self.0.len();
        let m = other.0.len();
        if n == 0 && m == 0 {
            return 1.0;
        }
        let dist = levenshtein(&self.0, &other.0);
        1.0 - dist as f64 / n.max(m) as f64
    }

    /// Jaccard similarity over the token multisets (order-insensitive view);
    /// cheaper and used as a prefilter before the edit-distance score.
    pub fn jaccard(&self, other: &Skeleton) -> f64 {
        if self.0.is_empty() && other.0.is_empty() {
            return 1.0;
        }
        let mut a = self.0.clone();
        let mut b = other.0.clone();
        a.sort_unstable();
        b.sort_unstable();
        let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let union = a.len() + b.len() - inter;
        inter as f64 / union as f64
    }
}

fn levenshtein(a: &[SkelTok], b: &[SkelTok]) -> usize {
    let m = b.len();
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut cur = vec![0usize; m + 1];
    for (i, &ta) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &tb) in b.iter().enumerate() {
            let cost = usize::from(ta != tb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

fn walk_query(q: &Query, out: &mut Vec<SkelTok>) {
    match q {
        Query::Select(s) => walk_select(s, out),
        Query::Compound { op, left, right } => {
            walk_query(left, out);
            out.push(SkelTok::Set(*op));
            walk_query(right, out);
        }
    }
}

fn walk_select(s: &Select, out: &mut Vec<SkelTok>) {
    out.push(SkelTok::Select);
    if s.distinct {
        out.push(SkelTok::Distinct);
    }
    for item in &s.items {
        walk_expr(&item.expr, out);
    }
    if let Some(from) = &s.from {
        let tables = 1 + from.joins.len();
        out.push(SkelTok::From(tables.min(u8::MAX as usize) as u8));
        walk_tableref(&from.base, out);
        for j in &from.joins {
            walk_tableref(&j.table, out);
        }
    }
    if let Some(w) = &s.where_cond {
        out.push(SkelTok::Where);
        walk_cond(w, out);
    }
    if !s.group_by.is_empty() {
        out.push(SkelTok::GroupBy);
        for _ in &s.group_by {
            out.push(SkelTok::Col);
        }
    }
    if let Some(h) = &s.having {
        out.push(SkelTok::Having);
        walk_cond(h, out);
    }
    if !s.order_by.is_empty() {
        out.push(SkelTok::OrderBy);
        for k in &s.order_by {
            walk_expr(&k.expr, out);
            out.push(match k.dir {
                SortDir::Asc => SkelTok::Asc,
                SortDir::Desc => SkelTok::Desc,
            });
        }
    }
    if s.limit.is_some() {
        out.push(SkelTok::Limit);
    }
}

fn walk_tableref(t: &TableRef, out: &mut Vec<SkelTok>) {
    if let TableRef::Derived { query, .. } = t {
        out.push(SkelTok::SubqOpen);
        walk_query(query, out);
        out.push(SkelTok::SubqClose);
    }
}

fn walk_expr(e: &Expr, out: &mut Vec<SkelTok>) {
    match e {
        Expr::Lit(_) => out.push(SkelTok::Col),
        Expr::Col(c) if c.column == "*" => out.push(SkelTok::Star),
        Expr::Col(_) => out.push(SkelTok::Col),
        Expr::Star => out.push(SkelTok::Star),
        Expr::Agg { func, arg, .. } => {
            out.push(SkelTok::Agg(*func));
            if !matches!(arg.as_ref(), Expr::Star) {
                // The argument shape is part of the sketch only when it is
                // itself compound; a plain column adds no information.
                if matches!(arg.as_ref(), Expr::Arith { .. }) {
                    out.push(SkelTok::Arith);
                }
            }
        }
        Expr::Arith { left, right, .. } => {
            out.push(SkelTok::Arith);
            walk_expr(left, out);
            walk_expr(right, out);
        }
        Expr::Neg(inner) => walk_expr(inner, out),
    }
}

fn walk_cond(c: &Cond, out: &mut Vec<SkelTok>) {
    match c {
        Cond::Cmp { left, op, right } => {
            walk_expr(left, out);
            out.push(SkelTok::Cmp(*op));
            match right {
                Operand::Expr(e) => walk_expr(e, out),
                Operand::Subquery(q) => {
                    out.push(SkelTok::SubqOpen);
                    walk_query(q, out);
                    out.push(SkelTok::SubqClose);
                }
            }
        }
        Cond::Between { negated, .. } => {
            if *negated {
                out.push(SkelTok::Not);
            }
            out.push(SkelTok::Between);
        }
        Cond::In {
            negated, source, ..
        } => {
            if *negated {
                out.push(SkelTok::Not);
            }
            out.push(SkelTok::In);
            if let InSource::Subquery(q) = source {
                out.push(SkelTok::SubqOpen);
                walk_query(q, out);
                out.push(SkelTok::SubqClose);
            }
        }
        Cond::Like { negated, .. } => {
            if *negated {
                out.push(SkelTok::Not);
            }
            out.push(SkelTok::Like);
        }
        Cond::IsNull { negated, .. } => {
            if *negated {
                out.push(SkelTok::Not);
            }
            out.push(SkelTok::IsNull);
        }
        Cond::Exists { negated, query } => {
            if *negated {
                out.push(SkelTok::Not);
            }
            out.push(SkelTok::Exists);
            out.push(SkelTok::SubqOpen);
            walk_query(query, out);
            out.push(SkelTok::SubqClose);
        }
        Cond::And(l, r) => {
            walk_cond(l, out);
            out.push(SkelTok::And);
            walk_cond(r, out);
        }
        Cond::Or(l, r) => {
            walk_cond(l, out);
            out.push(SkelTok::Or);
            walk_cond(r, out);
        }
        Cond::Not(inner) => {
            out.push(SkelTok::Not);
            walk_cond(inner, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn skel(sql: &str) -> Skeleton {
        Skeleton::of(&parse_query(sql).unwrap())
    }

    #[test]
    fn skeleton_masks_identifiers_and_values() {
        let a = skel("SELECT name FROM singer WHERE age > 20");
        let b = skel("SELECT title FROM album WHERE year > 1999");
        assert_eq!(a, b, "same structure must yield same skeleton");
    }

    #[test]
    fn skeleton_distinguishes_structure() {
        let a = skel("SELECT name FROM singer WHERE age > 20");
        let b = skel("SELECT count(*) FROM singer GROUP BY country");
        assert_ne!(a, b);
    }

    #[test]
    fn similarity_is_one_for_identical() {
        let a = skel("SELECT name FROM t ORDER BY age DESC LIMIT 1");
        let b = skel("SELECT title FROM u ORDER BY year DESC LIMIT 1");
        assert!((a.similarity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn similarity_decreases_with_divergence() {
        let base = skel("SELECT name FROM t WHERE age > 20");
        let close = skel("SELECT name FROM t WHERE age < 20");
        let far = skel(
            "SELECT country, count(*) FROM t GROUP BY country HAVING count(*) > 2 ORDER BY count(*) DESC LIMIT 3",
        );
        let s_close = base.similarity(&close);
        let s_far = base.similarity(&far);
        assert!(s_close > s_far, "{s_close} vs {s_far}");
        assert!(s_close > 0.8);
    }

    #[test]
    fn similarity_symmetric_and_bounded() {
        let a = skel("SELECT a FROM t");
        let b = skel("SELECT a, b FROM t WHERE x = 1 OR y = 2");
        let s1 = a.similarity(&b);
        let s2 = b.similarity(&a);
        assert!((s1 - s2).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&s1));
    }

    #[test]
    fn jaccard_identical_is_one() {
        let a = skel("SELECT a FROM t WHERE x = 1");
        assert!((a.jaccard(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nested_queries_contribute_markers() {
        let s = skel("SELECT name FROM t WHERE id IN (SELECT id FROM u)");
        assert!(s.0.contains(&SkelTok::SubqOpen));
        assert!(s.0.contains(&SkelTok::In));
    }

    #[test]
    fn render_is_readable() {
        let s = skel("SELECT name FROM singer WHERE age > 20 ORDER BY age DESC LIMIT 1");
        let r = s.render();
        assert!(r.starts_with("SELECT"));
        assert!(r.contains("WHERE"));
        assert!(r.contains("LIMIT"));
    }

    #[test]
    fn fingerprint_groups_by_structure() {
        let a = skel("SELECT name FROM singer WHERE age > 20");
        let b = skel("SELECT title FROM album WHERE year > 1999");
        let c = skel("SELECT count(*) FROM singer GROUP BY country");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Join arity is part of the structure even though both render "FROM".
        let one = skel("SELECT a FROM t");
        let two = skel("SELECT a FROM t JOIN u ON t.id = u.id");
        assert_ne!(one.fingerprint(), two.fingerprint());
    }

    #[test]
    fn token_codes_round_trip_every_variant() {
        let mut all = vec![
            SkelTok::Select,
            SkelTok::Distinct,
            SkelTok::Col,
            SkelTok::Star,
            SkelTok::Arith,
            SkelTok::Where,
            SkelTok::Between,
            SkelTok::In,
            SkelTok::Like,
            SkelTok::IsNull,
            SkelTok::Exists,
            SkelTok::Not,
            SkelTok::And,
            SkelTok::Or,
            SkelTok::SubqOpen,
            SkelTok::SubqClose,
            SkelTok::GroupBy,
            SkelTok::Having,
            SkelTok::OrderBy,
            SkelTok::Asc,
            SkelTok::Desc,
            SkelTok::Limit,
        ];
        for f in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ] {
            all.push(SkelTok::Agg(f));
        }
        for n in [0u8, 1, 2, 17, u8::MAX] {
            all.push(SkelTok::From(n));
        }
        for op in [
            CmpOp::Eq,
            CmpOp::Neq,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            all.push(SkelTok::Cmp(op));
        }
        for op in [SetOp::Union, SetOp::Intersect, SetOp::Except] {
            all.push(SkelTok::Set(op));
        }
        let mut seen = std::collections::HashSet::new();
        for t in all {
            let code = t.to_code();
            assert!(seen.insert(code), "code collision at {t:?}");
            assert_eq!(SkelTok::from_code(code), Some(t));
        }
        // Codes nothing produces decode to None, not to a wrong token.
        for bad in [0x0016u16, 0x0105, 0x0306, 0x0403, 0x0500, 0xffff] {
            assert_eq!(SkelTok::from_code(bad), None);
        }
    }

    #[test]
    fn join_count_changes_skeleton() {
        let one = skel("SELECT a FROM t");
        let two = skel("SELECT a FROM t JOIN u ON t.id = u.id");
        assert_ne!(one, two);
    }
}
