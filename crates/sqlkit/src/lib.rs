//! # sqlkit — SQL substrate for the DAIL-SQL reproduction
//!
//! Lexer, recursive-descent parser, typed AST, pretty-printer,
//! canonicalizer (exact-set match), skeleton extraction and Spider hardness
//! classification for the **Spider SQL subset**: single-block SELECTs with
//! joins, aggregation, grouping, having, ordering, limit, the three set
//! operations, and nested subqueries in WHERE / HAVING / FROM.
//!
//! Everything downstream builds on this crate: the storage engine executes
//! the AST, the benchmark generator produces it, the prompt layer prints it,
//! the simulated LLM decodes into it, and the evaluation harness compares
//! gold vs predicted ASTs with the canonicalizer.
//!
//! ```
//! use sqlkit::{parse_query, Skeleton, hardness::classify};
//!
//! let q = parse_query("SELECT name FROM singer WHERE age > 20").unwrap();
//! assert_eq!(q.to_string(), "SELECT name FROM singer WHERE age > 20");
//! let skel = Skeleton::of(&q);
//! assert!(skel.render().starts_with("SELECT"));
//! let _h = classify(&q);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod canon;
pub mod error;
pub mod hardness;
pub mod parser;
mod printer;
pub mod skeleton;
pub mod token;

pub use ast::{
    AggFunc, ArithOp, CmpOp, ColumnRef, Cond, Expr, FromClause, InSource, Join, Literal, Operand,
    OrderKey, Query, Select, SelectItem, SetOp, SortDir, TableRef,
};
pub use canon::{canonicalize, exact_set_match, exact_set_match_strict, CanonQuery, ValueMode};
pub use error::{ParseError, ParseResult};
pub use hardness::{classify, Hardness};
pub use parser::parse_query;
pub use skeleton::{SkelTok, Skeleton};
