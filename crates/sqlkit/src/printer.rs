//! Pretty-printer: renders the AST back to canonical SQL text.
//!
//! The printed form is valid input for [`crate::parser::parse_query`], and the
//! round-trip `parse(print(ast)) == ast` is enforced by property tests. The
//! style matches the Spider corpus conventions (uppercase keywords, lowercase
//! function names are normalized to uppercase, minimal parentheses).

use crate::ast::*;
use std::fmt;

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Lit(l) => write!(f, "{l}"),
            Expr::Col(c) => write!(f, "{c}"),
            Expr::Star => write!(f, "*"),
            Expr::Agg {
                func,
                distinct,
                arg,
            } => {
                if *distinct {
                    write!(f, "{}(DISTINCT {})", func.as_str(), arg)
                } else {
                    write!(f, "{}({})", func.as_str(), arg)
                }
            }
            Expr::Arith { op, left, right } => {
                // Parenthesize so the left-associative parser rebuilds the
                // same tree: the left child needs parens only at strictly
                // lower precedence; the right child at lower-or-equal.
                fn prec(op: ArithOp) -> u8 {
                    match op {
                        ArithOp::Add | ArithOp::Sub => 1,
                        ArithOp::Mul | ArithOp::Div => 2,
                    }
                }
                let needs_l =
                    matches!(left.as_ref(), Expr::Arith { op: lop, .. } if prec(*lop) < prec(*op));
                let needs_r = matches!(right.as_ref(), Expr::Arith { op: rop, .. } if prec(*rop) <= prec(*op));
                if needs_l {
                    write!(f, "({})", left)?;
                } else {
                    write!(f, "{}", left)?;
                }
                write!(f, " {} ", op.as_str())?;
                if needs_r {
                    write!(f, "({})", right)
                } else {
                    write!(f, "{}", right)
                }
            }
            Expr::Neg(e) => match e.as_ref() {
                Expr::Lit(_) | Expr::Col(_) => write!(f, "-{e}"),
                _ => write!(f, "-({e})"),
            },
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{}.{}", t, self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::Cmp { left, op, right } => {
                write!(f, "{} {} ", left, op.as_str())?;
                match right {
                    Operand::Expr(e) => write!(f, "{e}"),
                    Operand::Subquery(q) => write!(f, "({q})"),
                }
            }
            Cond::Between {
                expr,
                negated,
                low,
                high,
            } => {
                if *negated {
                    write!(f, "{expr} NOT BETWEEN {low} AND {high}")
                } else {
                    write!(f, "{expr} BETWEEN {low} AND {high}")
                }
            }
            Cond::In {
                expr,
                negated,
                source,
            } => {
                write!(f, "{expr}")?;
                if *negated {
                    write!(f, " NOT")?;
                }
                write!(f, " IN (")?;
                match source {
                    InSource::List(lits) => {
                        for (i, l) in lits.iter().enumerate() {
                            if i > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "{l}")?;
                        }
                    }
                    InSource::Subquery(q) => write!(f, "{q}")?,
                }
                write!(f, ")")
            }
            Cond::Like {
                expr,
                negated,
                pattern,
            } => {
                if *negated {
                    write!(f, "{} NOT LIKE '{}'", expr, pattern.replace('\'', "''"))
                } else {
                    write!(f, "{} LIKE '{}'", expr, pattern.replace('\'', "''"))
                }
            }
            Cond::IsNull { expr, negated } => {
                if *negated {
                    write!(f, "{expr} IS NOT NULL")
                } else {
                    write!(f, "{expr} IS NULL")
                }
            }
            Cond::Exists { negated, query } => {
                if *negated {
                    write!(f, "NOT EXISTS ({query})")
                } else {
                    write!(f, "EXISTS ({query})")
                }
            }
            Cond::And(l, r) => {
                // OR children need parens for precedence; a right-nested AND
                // needs parens so the left-associative parser rebuilds the
                // same tree.
                match l.as_ref() {
                    Cond::Or(_, _) => write!(f, "({l})")?,
                    _ => write!(f, "{l}")?,
                }
                write!(f, " AND ")?;
                match r.as_ref() {
                    Cond::Or(_, _) | Cond::And(_, _) => write!(f, "({r})"),
                    _ => write!(f, "{r}"),
                }
            }
            Cond::Or(l, r) => match r.as_ref() {
                Cond::Or(_, _) => write!(f, "{l} OR ({r})"),
                _ => write!(f, "{l} OR {r}"),
            },
            Cond::Not(c) => write!(f, "NOT ({c})"),
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Named { name, alias } => {
                write!(f, "{name}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
            TableRef::Derived { query, alias } => {
                write!(f, "({query})")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", item.expr)?;
            if let Some(a) = &item.alias {
                write!(f, " AS {a}")?;
            }
        }
        if let Some(from) = &self.from {
            write!(f, " FROM {}", from.base)?;
            for j in &from.joins {
                write!(f, " JOIN {}", j.table)?;
                if let Some(on) = &j.on {
                    write!(f, " ON {on}")?;
                }
            }
        }
        if let Some(w) = &self.where_cond {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, k) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{} {}", k.expr, k.dir.as_str())?;
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Select(s) => write!(f, "{s}"),
            Query::Compound { op, left, right } => {
                write!(f, "{} {} {}", left, op.as_str(), right)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_query;

    /// parse → print → parse must be a fixed point.
    fn roundtrip(sql: &str) {
        let q1 = parse_query(sql).unwrap();
        let printed = q1.to_string();
        let q2 = parse_query(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed for {printed:?}: {e}"));
        assert_eq!(q1, q2, "round-trip changed AST for {sql:?} -> {printed:?}");
    }

    #[test]
    fn roundtrip_corpus() {
        for sql in [
            "SELECT name FROM singer",
            "SELECT DISTINCT country FROM singer WHERE age > 20",
            "SELECT count(*) FROM concert WHERE year = 2014 OR year = 2015",
            "SELECT T2.name, count(*) FROM concert AS T1 JOIN stadium AS T2 ON T1.stadium_id = T2.stadium_id GROUP BY T1.stadium_id",
            "SELECT name FROM singer WHERE singer_id NOT IN (SELECT singer_id FROM singer_in_concert)",
            "SELECT country FROM singer WHERE age > 40 INTERSECT SELECT country FROM singer WHERE age < 30",
            "SELECT name, capacity FROM stadium ORDER BY average DESC LIMIT 1",
            "SELECT a FROM t WHERE x BETWEEN 1 AND 5 AND name LIKE '%e%'",
            "SELECT a FROM t WHERE c IS NOT NULL",
            "SELECT avg(age), min(age), max(age) FROM singer WHERE country = 'France'",
            "SELECT a + b * c FROM t",
            "SELECT a FROM t WHERE (x = 1 OR y = 2) AND z = 3",
            "SELECT T.c FROM (SELECT country AS c FROM singer) AS T",
            "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id)",
            "SELECT a FROM t WHERE x > -5",
            "SELECT sum(DISTINCT salary) FROM employees",
        ] {
            roundtrip(sql);
        }
    }

    #[test]
    fn printed_keywords_are_uppercase() {
        let q =
            parse_query("select name from singer where age > 3 order by age desc limit 2").unwrap();
        let s = q.to_string();
        assert!(s.contains("SELECT"));
        assert!(s.contains("FROM"));
        assert!(s.contains("WHERE"));
        assert!(s.contains("ORDER BY"));
        assert!(s.contains("DESC"));
        assert!(s.contains("LIMIT"));
    }

    #[test]
    fn and_wraps_or_children() {
        let q = parse_query("SELECT a FROM t WHERE (x = 1 OR y = 2) AND z = 3").unwrap();
        let s = q.to_string();
        assert!(s.contains("(x = 1 OR y = 2) AND"), "got {s}");
    }
}
