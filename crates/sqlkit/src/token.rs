//! SQL lexer for the Spider SQL subset.
//!
//! Keywords are case-insensitive; identifiers preserve their original case but
//! compare case-insensitively elsewhere in the pipeline. String literals use
//! single or double quotes with doubled-quote escaping, matching what SQLite
//! accepts for the Spider corpus.

use crate::error::{ParseError, ParseResult};
use std::fmt;

/// A lexical token together with its byte offset in the source string.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// Byte offset into the source string.
    pub offset: usize,
}

/// The kinds of tokens the Spider SQL subset needs.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A keyword such as `SELECT`; stored uppercase.
    Keyword(Keyword),
    /// An identifier (table, column, alias name).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating point literal.
    Float(f64),
    /// A string literal with quotes removed and escapes resolved.
    Str(String),
    /// A symbol or operator, e.g. `(`, `,`, `<=`.
    Sym(Sym),
    /// End of input marker.
    Eof,
}

/// Reserved words recognised by the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    From,
    Where,
    Group,
    By,
    Having,
    Order,
    Limit,
    Distinct,
    And,
    Or,
    Not,
    In,
    Like,
    Between,
    Is,
    Null,
    Join,
    On,
    As,
    Asc,
    Desc,
    Union,
    Intersect,
    Except,
    Count,
    Sum,
    Avg,
    Min,
    Max,
    Inner,
    Left,
    Outer,
    Exists,
    Case,
    When,
    Then,
    Else,
    End,
    Cast,
}

impl Keyword {
    /// Parse a keyword from an identifier-like word, case-insensitively.
    pub fn from_word(word: &str) -> Option<Keyword> {
        use Keyword::*;
        let w = word.to_ascii_uppercase();
        Some(match w.as_str() {
            "SELECT" => Select,
            "FROM" => From,
            "WHERE" => Where,
            "GROUP" => Group,
            "BY" => By,
            "HAVING" => Having,
            "ORDER" => Order,
            "LIMIT" => Limit,
            "DISTINCT" => Distinct,
            "AND" => And,
            "OR" => Or,
            "NOT" => Not,
            "IN" => In,
            "LIKE" => Like,
            "BETWEEN" => Between,
            "IS" => Is,
            "NULL" => Null,
            "JOIN" => Join,
            "ON" => On,
            "AS" => As,
            "ASC" => Asc,
            "DESC" => Desc,
            "UNION" => Union,
            "INTERSECT" => Intersect,
            "EXCEPT" => Except,
            "COUNT" => Count,
            "SUM" => Sum,
            "AVG" => Avg,
            "MIN" => Min,
            "MAX" => Max,
            "INNER" => Inner,
            "LEFT" => Left,
            "OUTER" => Outer,
            "EXISTS" => Exists,
            "CASE" => Case,
            "WHEN" => When,
            "THEN" => Then,
            "ELSE" => Else,
            "END" => End,
            "CAST" => Cast,
            _ => return None,
        })
    }

    /// The canonical uppercase spelling.
    pub fn as_str(self) -> &'static str {
        use Keyword::*;
        match self {
            Select => "SELECT",
            From => "FROM",
            Where => "WHERE",
            Group => "GROUP",
            By => "BY",
            Having => "HAVING",
            Order => "ORDER",
            Limit => "LIMIT",
            Distinct => "DISTINCT",
            And => "AND",
            Or => "OR",
            Not => "NOT",
            In => "IN",
            Like => "LIKE",
            Between => "BETWEEN",
            Is => "IS",
            Null => "NULL",
            Join => "JOIN",
            On => "ON",
            As => "AS",
            Asc => "ASC",
            Desc => "DESC",
            Union => "UNION",
            Intersect => "INTERSECT",
            Except => "EXCEPT",
            Count => "COUNT",
            Sum => "SUM",
            Avg => "AVG",
            Min => "MIN",
            Max => "MAX",
            Inner => "INNER",
            Left => "LEFT",
            Outer => "OUTER",
            Exists => "EXISTS",
            Case => "CASE",
            When => "WHEN",
            Then => "THEN",
            Else => "ELSE",
            End => "END",
            Cast => "CAST",
        }
    }
}

/// Punctuation and operator symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Sym {
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Semicolon,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Sym {
    /// The textual spelling of this symbol.
    pub fn as_str(self) -> &'static str {
        use Sym::*;
        match self {
            LParen => "(",
            RParen => ")",
            Comma => ",",
            Dot => ".",
            Star => "*",
            Plus => "+",
            Minus => "-",
            Slash => "/",
            Percent => "%",
            Semicolon => ";",
            Eq => "=",
            Neq => "!=",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{}", k.as_str()),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Float(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::Sym(s) => write!(f, "{}", s.as_str()),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// Tokenize a SQL string into a vector of tokens ending with [`TokenKind::Eof`].
pub fn lex(input: &str) -> ParseResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::with_capacity(input.len() / 4 + 4);
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\n' | b'\r' => {
                i += 1;
            }
            b'(' => {
                tokens.push(Token {
                    kind: TokenKind::Sym(Sym::LParen),
                    offset: i,
                });
                i += 1;
            }
            b')' => {
                tokens.push(Token {
                    kind: TokenKind::Sym(Sym::RParen),
                    offset: i,
                });
                i += 1;
            }
            b',' => {
                tokens.push(Token {
                    kind: TokenKind::Sym(Sym::Comma),
                    offset: i,
                });
                i += 1;
            }
            b'.' => {
                // A dot starting a number like `.5` is not produced by Spider
                // queries; treat dot as a qualifier separator.
                tokens.push(Token {
                    kind: TokenKind::Sym(Sym::Dot),
                    offset: i,
                });
                i += 1;
            }
            b'*' => {
                tokens.push(Token {
                    kind: TokenKind::Sym(Sym::Star),
                    offset: i,
                });
                i += 1;
            }
            b'+' => {
                tokens.push(Token {
                    kind: TokenKind::Sym(Sym::Plus),
                    offset: i,
                });
                i += 1;
            }
            b'-' => {
                // `--` comments are not part of the subset; `-` may begin a
                // negative numeric literal, which the parser handles as unary
                // minus. Emit the symbol.
                tokens.push(Token {
                    kind: TokenKind::Sym(Sym::Minus),
                    offset: i,
                });
                i += 1;
            }
            b'/' => {
                tokens.push(Token {
                    kind: TokenKind::Sym(Sym::Slash),
                    offset: i,
                });
                i += 1;
            }
            b'%' => {
                tokens.push(Token {
                    kind: TokenKind::Sym(Sym::Percent),
                    offset: i,
                });
                i += 1;
            }
            b';' => {
                tokens.push(Token {
                    kind: TokenKind::Sym(Sym::Semicolon),
                    offset: i,
                });
                i += 1;
            }
            b'=' => {
                // Accept both `=` and `==`.
                let len = if bytes.get(i + 1) == Some(&b'=') {
                    2
                } else {
                    1
                };
                tokens.push(Token {
                    kind: TokenKind::Sym(Sym::Eq),
                    offset: i,
                });
                i += len;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Sym(Sym::Neq),
                        offset: i,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new("expected '=' after '!'", i));
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Sym(Sym::Le),
                        offset: i,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::Sym(Sym::Neq),
                        offset: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Sym(Sym::Lt),
                        offset: i,
                    });
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Sym(Sym::Ge),
                        offset: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Sym(Sym::Gt),
                        offset: i,
                    });
                    i += 1;
                }
            }
            b'\'' | b'"' => {
                let quote = c;
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(ParseError::new("unterminated string literal", start));
                    }
                    if bytes[i] == quote {
                        if bytes.get(i + 1) == Some(&quote) {
                            s.push(quote as char);
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Strings in the corpus are UTF-8; copy byte-wise but
                        // re-validate at the end via from_utf8 on the slice.
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            b'`' => {
                // Backtick-quoted identifier.
                let start = i;
                i += 1;
                let mut s = String::new();
                while i < bytes.len() && bytes[i] != b'`' {
                    s.push(bytes[i] as char);
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(ParseError::new("unterminated quoted identifier", start));
                }
                i += 1;
                tokens.push(Token {
                    kind: TokenKind::Ident(s),
                    offset: start,
                });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                let kind = if is_float {
                    TokenKind::Float(
                        text.parse()
                            .map_err(|_| ParseError::new("invalid float literal", start))?,
                    )
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => TokenKind::Int(v),
                        Err(_) => TokenKind::Float(
                            text.parse()
                                .map_err(|_| ParseError::new("invalid numeric literal", start))?,
                        ),
                    }
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &input[start..i];
                let kind = match Keyword::from_word(word) {
                    Some(k) => TokenKind::Keyword(k),
                    None => TokenKind::Ident(word.to_string()),
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
            _ => {
                return Err(ParseError::new(
                    format!("unexpected character {:?}", c as char),
                    i,
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        lex(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_basic_select() {
        let ks = kinds("SELECT name FROM singer");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Ident("name".into()),
                TokenKind::Keyword(Keyword::From),
                TokenKind::Ident("singer".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(kinds("select")[0], TokenKind::Keyword(Keyword::Select));
        assert_eq!(kinds("SeLeCt")[0], TokenKind::Keyword(Keyword::Select));
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("3.25")[0], TokenKind::Float(3.25));
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(kinds("'it''s'")[0], TokenKind::Str("it's".into()));
        assert_eq!(kinds("\"two\"")[0], TokenKind::Str("two".into()));
    }

    #[test]
    fn lexes_operators() {
        let ks = kinds("a <= b <> c >= d != e == f");
        let syms: Vec<_> = ks
            .iter()
            .filter_map(|k| match k {
                TokenKind::Sym(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(syms, vec![Sym::Le, Sym::Neq, Sym::Ge, Sym::Neq, Sym::Eq]);
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn rejects_stray_bang() {
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn qualified_column_has_dot() {
        let ks = kinds("t1.name");
        assert_eq!(ks[1], TokenKind::Sym(Sym::Dot));
    }

    #[test]
    fn offsets_point_into_source() {
        let toks = lex("SELECT x").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 7);
    }

    #[test]
    fn backtick_identifiers() {
        assert_eq!(kinds("`order`")[0], TokenKind::Ident("order".into()));
    }
}
