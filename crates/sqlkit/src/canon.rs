//! Canonicalization and exact-set match (EM).
//!
//! Spider's exact-set-match metric compares gold and predicted queries
//! clause-by-clause as *sets*, after resolving table aliases and (in the
//! standard variant) ignoring literal values. This module canonicalizes a
//! [`Query`] into a comparable structure and implements both the standard
//! (value-insensitive) and strict (value-sensitive) variants.

use crate::ast::*;
use std::collections::{BTreeMap, BTreeSet};

/// Canonical, order-insensitive form of one SELECT block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonSelect {
    /// DISTINCT flag.
    pub distinct: bool,
    /// Canonical select-item strings (set semantics).
    pub items: BTreeSet<String>,
    /// Base tables referenced (lowercased set).
    pub tables: BTreeSet<String>,
    /// Canonical equi-join pairs.
    pub join_pairs: BTreeSet<(String, String)>,
    /// Canonical WHERE conjunct strings.
    pub where_set: BTreeSet<String>,
    /// Canonical GROUP BY column strings.
    pub group_by: BTreeSet<String>,
    /// Canonical HAVING conjunct strings.
    pub having_set: BTreeSet<String>,
    /// ORDER BY keys (order matters).
    pub order_by: Vec<String>,
    /// LIMIT canonical form (`Some("limit")` when values are masked, the
    /// number itself in strict mode).
    pub limit: Option<String>,
    /// Canonicalized subqueries appearing anywhere in this block, rendered to
    /// canonical strings so nested structure participates in the match.
    pub subqueries: BTreeSet<String>,
}

/// Canonical form of a full query (mirrors [`Query`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CanonQuery {
    /// A single block.
    Select(Box<CanonSelect>),
    /// A set-operation.
    Compound {
        /// Which op.
        op: SetOp,
        /// Left side.
        left: Box<CanonQuery>,
        /// Right side.
        right: Box<CanonQuery>,
    },
}

/// Whether literal values participate in the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueMode {
    /// Standard Spider EM: literals are masked to `value`.
    Masked,
    /// Strict: literals compared verbatim.
    Strict,
}

/// Compute the standard exact-set match between two queries (values masked).
pub fn exact_set_match(gold: &Query, pred: &Query) -> bool {
    canonicalize(gold, ValueMode::Masked) == canonicalize(pred, ValueMode::Masked)
}

/// Value-sensitive exact-set match.
pub fn exact_set_match_strict(gold: &Query, pred: &Query) -> bool {
    canonicalize(gold, ValueMode::Strict) == canonicalize(pred, ValueMode::Strict)
}

/// Canonicalize a query.
pub fn canonicalize(q: &Query, mode: ValueMode) -> CanonQuery {
    match q {
        Query::Select(s) => CanonQuery::Select(Box::new(canon_select(s, mode))),
        Query::Compound { op, left, right } => {
            // UNION/INTERSECT are commutative; order the operands
            // canonically so `A UNION B` matches `B UNION A`.
            let l = canonicalize(left, mode);
            let r = canonicalize(right, mode);
            if matches!(op, SetOp::Union | SetOp::Intersect) {
                let (a, b) = order_pair(l, r);
                CanonQuery::Compound {
                    op: *op,
                    left: Box::new(a),
                    right: Box::new(b),
                }
            } else {
                CanonQuery::Compound {
                    op: *op,
                    left: Box::new(l),
                    right: Box::new(r),
                }
            }
        }
    }
}

fn order_pair(a: CanonQuery, b: CanonQuery) -> (CanonQuery, CanonQuery) {
    if render(&a) <= render(&b) {
        (a, b)
    } else {
        (b, a)
    }
}

/// Deterministic textual rendering of a canonical query (used for ordering
/// commutative operands and for embedding subqueries into parent sets).
fn render(q: &CanonQuery) -> String {
    match q {
        CanonQuery::Select(s) => format!(
            "sel[d={} i={:?} t={:?} j={:?} w={:?} g={:?} h={:?} o={:?} l={:?} s={:?}]",
            s.distinct,
            s.items,
            s.tables,
            s.join_pairs,
            s.where_set,
            s.group_by,
            s.having_set,
            s.order_by,
            s.limit,
            s.subqueries
        ),
        CanonQuery::Compound { op, left, right } => {
            format!("({} {} {})", render(left), op.as_str(), render(right))
        }
    }
}

struct Scope {
    /// binding (lowercased alias or table name) → real table name (lowercased)
    alias_map: BTreeMap<String, String>,
    /// number of distinct base tables in scope
    n_tables: usize,
    mode: ValueMode,
}

impl Scope {
    fn from_select(s: &Select, mode: ValueMode) -> Scope {
        let mut alias_map = BTreeMap::new();
        let mut n_tables = 0;
        if let Some(from) = &s.from {
            let mut add = |t: &TableRef| match t {
                TableRef::Named { name, alias } => {
                    let real = name.to_lowercase();
                    if let Some(a) = alias {
                        alias_map.insert(a.to_lowercase(), real.clone());
                    }
                    alias_map.insert(name.to_lowercase(), real);
                    n_tables += 1;
                }
                TableRef::Derived { alias, .. } => {
                    if let Some(a) = alias {
                        alias_map.insert(a.to_lowercase(), "<derived>".to_string());
                    }
                    n_tables += 1;
                }
            };
            add(&from.base);
            for j in &from.joins {
                add(&j.table);
            }
        }
        Scope {
            alias_map,
            n_tables,
            mode,
        }
    }

    /// Canonical column string: alias resolved to table name; qualifier
    /// dropped entirely when only one table is in scope (so `singer.name`
    /// and `name` compare equal on single-table queries).
    fn col(&self, c: &ColumnRef) -> String {
        let col = c.column.to_lowercase();
        if self.n_tables <= 1 {
            return col;
        }
        match &c.table {
            Some(t) => {
                let t = t.to_lowercase();
                let real = self.alias_map.get(&t).cloned().unwrap_or(t);
                format!("{real}.{col}")
            }
            None => col,
        }
    }

    fn lit(&self, l: &Literal) -> String {
        match self.mode {
            ValueMode::Masked => "value".to_string(),
            ValueMode::Strict => l.to_string().to_lowercase(),
        }
    }

    fn expr(&self, e: &Expr) -> String {
        match e {
            Expr::Lit(l) => self.lit(l),
            Expr::Col(c) => self.col(c),
            Expr::Star => "*".to_string(),
            Expr::Agg {
                func,
                distinct,
                arg,
            } => {
                if *distinct {
                    format!(
                        "{}(distinct {})",
                        func.as_str().to_lowercase(),
                        self.expr(arg)
                    )
                } else {
                    format!("{}({})", func.as_str().to_lowercase(), self.expr(arg))
                }
            }
            Expr::Arith { op, left, right } => {
                format!("({} {} {})", self.expr(left), op.as_str(), self.expr(right))
            }
            Expr::Neg(inner) => format!("(-{})", self.expr(inner)),
        }
    }
}

fn canon_select(s: &Select, mode: ValueMode) -> CanonSelect {
    let scope = Scope::from_select(s, mode);
    let mut subqueries = BTreeSet::new();

    let items = s
        .items
        .iter()
        .map(|it| {
            let mut txt = scope.expr(&it.expr);
            if s.distinct {
                // DISTINCT is captured by the flag; nothing per-item.
            }
            if txt == "*" {
                txt = "*".to_string();
            }
            txt
        })
        .collect();

    let mut tables = BTreeSet::new();
    let mut join_pairs = BTreeSet::new();
    if let Some(from) = &s.from {
        let mut add_table = |t: &TableRef, subs: &mut BTreeSet<String>| match t {
            TableRef::Named { name, .. } => {
                tables.insert(name.to_lowercase());
            }
            TableRef::Derived { query, .. } => {
                subs.insert(render(&canonicalize(query, mode)));
                tables.insert("<derived>".to_string());
            }
        };
        add_table(&from.base, &mut subqueries);
        for j in &from.joins {
            add_table(&j.table, &mut subqueries);
            if let Some(on) = &j.on {
                collect_join_pairs(on, &scope, &mut join_pairs);
            }
        }
    }

    let mut where_set = BTreeSet::new();
    if let Some(w) = &s.where_cond {
        for c in w.conjuncts() {
            // Equi-join predicates expressed in WHERE (comma joins) are
            // normalized into join_pairs rather than the where set.
            if let Some(pair) = as_join_pair(c, &scope) {
                join_pairs.insert(pair);
            } else {
                where_set.insert(canon_cond(c, &scope, &mut subqueries));
            }
        }
    }

    let group_by = s.group_by.iter().map(|c| scope.col(c)).collect();

    let mut having_set = BTreeSet::new();
    if let Some(h) = &s.having {
        for c in h.conjuncts() {
            having_set.insert(canon_cond(c, &scope, &mut subqueries));
        }
    }

    let order_by = s
        .order_by
        .iter()
        .map(|k| format!("{} {}", scope.expr(&k.expr), k.dir.as_str().to_lowercase()))
        .collect();

    let limit = s.limit.map(|n| match mode {
        ValueMode::Masked => "limit".to_string(),
        ValueMode::Strict => n.to_string(),
    });

    CanonSelect {
        distinct: s.distinct,
        items,
        tables,
        join_pairs,
        where_set,
        group_by,
        having_set,
        order_by,
        limit,
        subqueries,
    }
}

fn collect_join_pairs(c: &Cond, scope: &Scope, out: &mut BTreeSet<(String, String)>) {
    for conj in c.conjuncts() {
        if let Some(p) = as_join_pair(conj, scope) {
            out.insert(p);
        }
    }
}

/// Recognize `col = col` predicates as join pairs, ordering the two sides
/// canonically.
fn as_join_pair(c: &Cond, scope: &Scope) -> Option<(String, String)> {
    if let Cond::Cmp {
        left: Expr::Col(a),
        op: CmpOp::Eq,
        right: Operand::Expr(Expr::Col(b)),
    } = c
    {
        let sa = scope.col(a);
        let sb = scope.col(b);
        return Some(if sa <= sb { (sa, sb) } else { (sb, sa) });
    }
    None
}

fn canon_cond(c: &Cond, scope: &Scope, subqueries: &mut BTreeSet<String>) -> String {
    match c {
        Cond::Cmp { left, op, right } => {
            let (l, o, r) = match right {
                Operand::Expr(e) => {
                    // Put the non-literal side on the left so `5 < age` and
                    // `age > 5` canonicalize identically.
                    if matches!(left, Expr::Lit(_)) && !matches!(e, Expr::Lit(_)) {
                        (scope.expr(e), op.flipped(), scope.expr(left))
                    } else {
                        (scope.expr(left), *op, scope.expr(e))
                    }
                }
                Operand::Subquery(q) => {
                    let sub = render(&canonicalize(q, scope.mode));
                    subqueries.insert(sub.clone());
                    (scope.expr(left), *op, format!("<subq:{sub}>"))
                }
            };
            format!("{} {} {}", l, o.as_str(), r)
        }
        Cond::Between {
            expr,
            negated,
            low,
            high,
        } => format!(
            "{}{} between {} and {}",
            if *negated { "not " } else { "" },
            scope.expr(expr),
            scope.expr(low),
            scope.expr(high)
        ),
        Cond::In {
            expr,
            negated,
            source,
        } => {
            let src = match source {
                InSource::List(lits) => {
                    let mut parts: Vec<String> = lits.iter().map(|l| scope.lit(l)).collect();
                    parts.sort();
                    format!("[{}]", parts.join(","))
                }
                InSource::Subquery(q) => {
                    let sub = render(&canonicalize(q, scope.mode));
                    subqueries.insert(sub.clone());
                    format!("<subq:{sub}>")
                }
            };
            format!(
                "{}{} in {}",
                if *negated { "not " } else { "" },
                scope.expr(expr),
                src
            )
        }
        Cond::Like {
            expr,
            negated,
            pattern,
        } => {
            let pat = match scope.mode {
                ValueMode::Masked => "value".to_string(),
                ValueMode::Strict => pattern.to_lowercase(),
            };
            format!(
                "{}{} like {}",
                if *negated { "not " } else { "" },
                scope.expr(expr),
                pat
            )
        }
        Cond::IsNull { expr, negated } => format!(
            "{} is {}null",
            scope.expr(expr),
            if *negated { "not " } else { "" }
        ),
        Cond::Exists { negated, query } => {
            let sub = render(&canonicalize(query, scope.mode));
            subqueries.insert(sub.clone());
            format!("{}exists <subq:{sub}>", if *negated { "not " } else { "" })
        }
        Cond::And(_, _) => {
            // conjuncts() never yields an And; defensive rendering.
            let mut parts: Vec<String> = c
                .conjuncts()
                .iter()
                .map(|cc| canon_cond(cc, scope, subqueries))
                .collect();
            parts.sort();
            parts.join(" and ")
        }
        Cond::Or(l, r) => {
            let mut parts = [
                canon_cond(l, scope, subqueries),
                canon_cond(r, scope, subqueries),
            ];
            parts.sort();
            format!("({})", parts.join(" or "))
        }
        Cond::Not(inner) => format!("not ({})", canon_cond(inner, scope, subqueries)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn em(a: &str, b: &str) -> bool {
        exact_set_match(&parse_query(a).unwrap(), &parse_query(b).unwrap())
    }

    fn em_strict(a: &str, b: &str) -> bool {
        exact_set_match_strict(&parse_query(a).unwrap(), &parse_query(b).unwrap())
    }

    #[test]
    fn identical_queries_match() {
        assert!(em("SELECT name FROM singer", "SELECT name FROM singer"));
    }

    #[test]
    fn em_is_case_insensitive() {
        assert!(em("SELECT Name FROM Singer", "select name from singer"));
    }

    #[test]
    fn select_items_are_a_set() {
        assert!(em("SELECT a, b FROM t", "SELECT b, a FROM t"));
    }

    #[test]
    fn where_conjuncts_are_a_set() {
        assert!(em(
            "SELECT a FROM t WHERE x = 1 AND y = 2",
            "SELECT a FROM t WHERE y = 2 AND x = 1"
        ));
    }

    #[test]
    fn aliases_resolve_to_tables() {
        assert!(em(
            "SELECT T1.name FROM singer AS T1 JOIN song AS T2 ON T1.id = T2.sid",
            "SELECT S.name FROM singer AS S JOIN song AS G ON S.id = G.sid"
        ));
    }

    #[test]
    fn single_table_qualifier_is_dropped() {
        assert!(em(
            "SELECT singer.name FROM singer",
            "SELECT name FROM singer"
        ));
    }

    #[test]
    fn values_masked_in_standard_em() {
        assert!(em(
            "SELECT a FROM t WHERE x = 1",
            "SELECT a FROM t WHERE x = 99"
        ));
        assert!(!em_strict(
            "SELECT a FROM t WHERE x = 1",
            "SELECT a FROM t WHERE x = 99"
        ));
    }

    #[test]
    fn strict_em_matches_same_values() {
        assert!(em_strict(
            "SELECT a FROM t WHERE x = 1",
            "SELECT a FROM t WHERE x = 1"
        ));
    }

    #[test]
    fn different_structure_never_matches() {
        assert!(!em("SELECT a FROM t", "SELECT a FROM t WHERE x = 1"));
        assert!(!em("SELECT a FROM t", "SELECT a, b FROM t"));
        assert!(!em(
            "SELECT a FROM t ORDER BY a ASC",
            "SELECT a FROM t ORDER BY a DESC"
        ));
        assert!(!em("SELECT a FROM t", "SELECT DISTINCT a FROM t"));
    }

    #[test]
    fn flipped_comparison_matches() {
        assert!(em_strict(
            "SELECT a FROM t WHERE 5 < age",
            "SELECT a FROM t WHERE age > 5"
        ));
    }

    #[test]
    fn union_is_commutative() {
        assert!(em(
            "SELECT a FROM t UNION SELECT b FROM u",
            "SELECT b FROM u UNION SELECT a FROM t"
        ));
    }

    #[test]
    fn except_is_not_commutative() {
        assert!(!em(
            "SELECT a FROM t EXCEPT SELECT b FROM u",
            "SELECT b FROM u EXCEPT SELECT a FROM t"
        ));
    }

    #[test]
    fn comma_join_equals_explicit_join() {
        assert!(em(
            "SELECT a.x FROM a, b WHERE a.id = b.id AND a.y = 3",
            "SELECT a.x FROM a JOIN b ON a.id = b.id WHERE a.y = 3"
        ));
    }

    #[test]
    fn join_pair_order_is_canonical() {
        assert!(em(
            "SELECT a.x FROM a JOIN b ON a.id = b.id",
            "SELECT a.x FROM a JOIN b ON b.id = a.id"
        ));
    }

    #[test]
    fn subquery_participates_in_match() {
        assert!(em(
            "SELECT name FROM t WHERE id IN (SELECT id FROM u WHERE z = 1)",
            "SELECT name FROM t WHERE id IN (SELECT id FROM u WHERE z = 2)"
        ));
        assert!(!em(
            "SELECT name FROM t WHERE id IN (SELECT id FROM u)",
            "SELECT name FROM t WHERE id IN (SELECT id FROM v)"
        ));
    }

    #[test]
    fn or_groups_sorted() {
        assert!(em(
            "SELECT a FROM t WHERE x = 1 OR y = 2",
            "SELECT a FROM t WHERE y = 2 OR x = 1"
        ));
    }

    #[test]
    fn limit_value_masked_in_standard() {
        assert!(em(
            "SELECT a FROM t ORDER BY a DESC LIMIT 1",
            "SELECT a FROM t ORDER BY a DESC LIMIT 3"
        ));
        assert!(!em_strict(
            "SELECT a FROM t ORDER BY a DESC LIMIT 1",
            "SELECT a FROM t ORDER BY a DESC LIMIT 3"
        ));
    }
}
