//! Error types for SQL lexing and parsing.

use std::fmt;

/// An error produced while lexing or parsing a SQL string.
///
/// Carries a human-readable message and the byte offset in the input at which
/// the problem was detected, so callers (e.g. the evaluation harness, which
/// must score *invalid* model output too) can report precise diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the original input where the error was detected.
    pub offset: usize,
}

impl ParseError {
    pub(crate) fn new(message: impl Into<String>, offset: usize) -> Self {
        ParseError {
            message: message.into(),
            offset,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SQL parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Convenience alias for parse results.
pub type ParseResult<T> = Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset_and_message() {
        let e = ParseError::new("unexpected token", 17);
        let s = e.to_string();
        assert!(s.contains("17"));
        assert!(s.contains("unexpected token"));
    }
}
