//! Typed AST for the Spider SQL subset.
//!
//! The subset covers what the Spider benchmark's gold queries use: single
//! SELECT blocks with joins, aggregation, grouping, having, ordering, limit,
//! the three set operations, and nested subqueries in WHERE (comparison / IN /
//! EXISTS) and FROM positions.

use std::fmt;

/// A literal constant value appearing in a query.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// 64-bit signed integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// SQL NULL.
    Null,
}

impl Literal {
    /// True if this literal is numeric (int or float).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Literal::Int(_) | Literal::Float(_))
    }
}

impl Eq for Literal {}

impl std::hash::Hash for Literal {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Literal::Int(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            Literal::Float(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            Literal::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Literal::Null => 3u8.hash(state),
        }
    }
}

/// Reference to a column, optionally qualified by a table name or alias.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Table name or alias; `None` when unqualified.
    pub table: Option<String>,
    /// Column name; `*` is represented by [`Expr::Star`], never here.
    pub column: String,
}

impl ColumnRef {
    /// An unqualified column reference.
    pub fn new(column: impl Into<String>) -> Self {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }

    /// A table-qualified column reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }

    /// Case-folded (lowercase) copy, used by canonicalization.
    pub fn lowered(&self) -> ColumnRef {
        ColumnRef {
            table: self.table.as_ref().map(|t| t.to_lowercase()),
            column: self.column.to_lowercase(),
        }
    }
}

/// Aggregate functions in the Spider subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    /// Canonical uppercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }

    /// All aggregate functions, for generators and tests.
    pub const ALL: [AggFunc; 5] = [
        AggFunc::Count,
        AggFunc::Sum,
        AggFunc::Avg,
        AggFunc::Min,
        AggFunc::Max,
    ];
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl ArithOp {
    /// Operator spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal constant.
    Lit(Literal),
    /// A column reference.
    Col(ColumnRef),
    /// `*` — only valid inside `COUNT(*)` or as a select item.
    Star,
    /// An aggregate call, e.g. `COUNT(DISTINCT t.name)`.
    Agg {
        /// Which aggregate.
        func: AggFunc,
        /// Whether `DISTINCT` was present.
        distinct: bool,
        /// The argument; `Expr::Star` for `COUNT(*)`.
        arg: Box<Expr>,
    },
    /// Binary arithmetic.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary minus.
    Neg(Box<Expr>),
}

impl Expr {
    /// True if the expression contains an aggregate call anywhere.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Arith { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Neg(e) => e.contains_aggregate(),
            _ => false,
        }
    }

    /// Collect every column referenced by this expression into `out`.
    pub fn collect_columns<'a>(&'a self, out: &mut Vec<&'a ColumnRef>) {
        match self {
            Expr::Col(c) => out.push(c),
            Expr::Agg { arg, .. } => arg.collect_columns(out),
            Expr::Arith { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Neg(e) => e.collect_columns(out),
            _ => {}
        }
    }
}

/// Comparison operators used in predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum CmpOp {
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Operator spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// The operator with operand order flipped (`<` becomes `>` etc.).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Neq => CmpOp::Neq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// Right-hand side of a comparison: a scalar expression or a scalar subquery.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A scalar expression.
    Expr(Expr),
    /// A parenthesized subquery expected to return a single value.
    Subquery(Box<Query>),
}

/// Source of values for an IN predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum InSource {
    /// An explicit literal list: `IN (1, 2, 3)`.
    List(Vec<Literal>),
    /// A subquery: `IN (SELECT ...)`.
    Subquery(Box<Query>),
}

/// Boolean conditions (WHERE / HAVING / JOIN ON).
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// Comparison between an expression and an operand.
    Cmp {
        /// Left side.
        left: Expr,
        /// Operator.
        op: CmpOp,
        /// Right side.
        right: Operand,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Expr,
        /// Negated?
        negated: bool,
        /// Lower bound.
        low: Expr,
        /// Upper bound.
        high: Expr,
    },
    /// `expr [NOT] IN (...)`.
    In {
        /// Tested expression.
        expr: Expr,
        /// Negated?
        negated: bool,
        /// Value source.
        source: InSource,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        /// Tested expression.
        expr: Expr,
        /// Negated?
        negated: bool,
        /// Pattern with `%` and `_` wildcards.
        pattern: String,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Expr,
        /// Negated (`IS NOT NULL`)?
        negated: bool,
    },
    /// `[NOT] EXISTS (SELECT ...)`.
    Exists {
        /// Negated?
        negated: bool,
        /// The subquery.
        query: Box<Query>,
    },
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
    /// Disjunction.
    Or(Box<Cond>, Box<Cond>),
    /// Negation.
    Not(Box<Cond>),
}

impl Cond {
    /// Split a condition into its top-level AND-ed conjuncts.
    pub fn conjuncts(&self) -> Vec<&Cond> {
        let mut out = Vec::new();
        fn walk<'a>(c: &'a Cond, out: &mut Vec<&'a Cond>) {
            match c {
                Cond::And(l, r) => {
                    walk(l, out);
                    walk(r, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// True if any subquery appears anywhere inside this condition.
    pub fn contains_subquery(&self) -> bool {
        match self {
            Cond::Cmp {
                right: Operand::Subquery(_),
                ..
            } => true,
            Cond::In {
                source: InSource::Subquery(_),
                ..
            } => true,
            Cond::Exists { .. } => true,
            Cond::And(l, r) | Cond::Or(l, r) => l.contains_subquery() || r.contains_subquery(),
            Cond::Not(c) => c.contains_subquery(),
            _ => false,
        }
    }
}

/// One item in the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The projected expression.
    pub expr: Expr,
    /// Optional output alias (`AS name`).
    pub alias: Option<String>,
}

impl SelectItem {
    /// A select item without an alias.
    pub fn bare(expr: Expr) -> Self {
        SelectItem { expr, alias: None }
    }
}

/// A table reference in FROM: either a named table or a derived table.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A base table, optionally aliased.
    Named {
        /// Table name as written.
        name: String,
        /// Optional alias (`AS t1`).
        alias: Option<String>,
    },
    /// A parenthesized subquery used as a table, with a required alias in
    /// standard SQL but optional in Spider's corpus.
    Derived {
        /// The subquery.
        query: Box<Query>,
        /// Optional alias.
        alias: Option<String>,
    },
}

impl TableRef {
    /// The name this reference binds in scope: its alias if present, else the
    /// base table name (derived tables without alias bind nothing).
    pub fn binding(&self) -> Option<&str> {
        match self {
            TableRef::Named { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            TableRef::Derived { alias, .. } => alias.as_deref(),
        }
    }
}

/// A JOIN step: `JOIN <table> [ON cond]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// The joined table.
    pub table: TableRef,
    /// Join condition; Spider gold queries always use equi-joins but model
    /// output may produce arbitrary conditions, so store a full [`Cond`].
    pub on: Option<Cond>,
}

/// The FROM clause: a leading table plus zero or more joins.
#[derive(Debug, Clone, PartialEq)]
pub struct FromClause {
    /// First table.
    pub base: TableRef,
    /// Subsequent `JOIN ... ON ...` steps.
    pub joins: Vec<Join>,
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum SortDir {
    Asc,
    Desc,
}

impl SortDir {
    /// Keyword spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            SortDir::Asc => "ASC",
            SortDir::Desc => "DESC",
        }
    }
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Sort expression (column or aggregate).
    pub expr: Expr,
    /// Direction; ASC when omitted in the source.
    pub dir: SortDir,
}

/// A single SELECT block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Select {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// FROM clause; `None` only for degenerate `SELECT <literal>` queries.
    pub from: Option<FromClause>,
    /// WHERE condition.
    pub where_cond: Option<Cond>,
    /// GROUP BY keys.
    pub group_by: Vec<ColumnRef>,
    /// HAVING condition.
    pub having: Option<Cond>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT row count.
    pub limit: Option<u64>,
}

/// Set operations combining two queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum SetOp {
    Union,
    Intersect,
    Except,
}

impl SetOp {
    /// Keyword spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            SetOp::Union => "UNION",
            SetOp::Intersect => "INTERSECT",
            SetOp::Except => "EXCEPT",
        }
    }
}

/// A full query: a SELECT block or a set-operation of two queries.
///
/// `Select` is deliberately stored inline: virtually every query in the
/// corpus is a plain select, so boxing it would add an allocation to the
/// common case to shrink the rare one.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum Query {
    /// Plain SELECT.
    Select(Select),
    /// `left <op> right` (set semantics, as in SQLite for Spider).
    Compound {
        /// The set operation.
        op: SetOp,
        /// Left query.
        left: Box<Query>,
        /// Right query.
        right: Box<Query>,
    },
}

impl Query {
    /// The leftmost SELECT block, which defines the output arity.
    pub fn head_select(&self) -> &Select {
        match self {
            Query::Select(s) => s,
            Query::Compound { left, .. } => left.head_select(),
        }
    }

    /// Visit every SELECT block in the query, including nested subqueries.
    pub fn visit_selects<'a>(&'a self, f: &mut impl FnMut(&'a Select)) {
        match self {
            Query::Select(s) => {
                f(s);
                // Recurse into FROM-derived tables and condition subqueries.
                if let Some(from) = &s.from {
                    visit_tableref(&from.base, f);
                    for j in &from.joins {
                        visit_tableref(&j.table, f);
                        if let Some(c) = &j.on {
                            visit_cond(c, f);
                        }
                    }
                }
                if let Some(c) = &s.where_cond {
                    visit_cond(c, f);
                }
                if let Some(c) = &s.having {
                    visit_cond(c, f);
                }
            }
            Query::Compound { left, right, .. } => {
                left.visit_selects(f);
                right.visit_selects(f);
            }
        }
    }

    /// True if this query nests another query anywhere (set op counts).
    pub fn is_nested(&self) -> bool {
        match self {
            Query::Compound { .. } => true,
            Query::Select(s) => {
                s.where_cond.as_ref().is_some_and(Cond::contains_subquery)
                    || s.having.as_ref().is_some_and(Cond::contains_subquery)
                    || s.from.as_ref().is_some_and(|f| {
                        matches!(f.base, TableRef::Derived { .. })
                            || f.joins
                                .iter()
                                .any(|j| matches!(j.table, TableRef::Derived { .. }))
                    })
            }
        }
    }
}

fn visit_tableref<'a>(t: &'a TableRef, f: &mut impl FnMut(&'a Select)) {
    if let TableRef::Derived { query, .. } = t {
        query.visit_selects(f);
    }
}

fn visit_cond<'a>(c: &'a Cond, f: &mut impl FnMut(&'a Select)) {
    match c {
        Cond::Cmp {
            right: Operand::Subquery(q),
            ..
        } => q.visit_selects(f),
        Cond::In {
            source: InSource::Subquery(q),
            ..
        } => q.visit_selects(f),
        Cond::Exists { query, .. } => query.visit_selects(f),
        Cond::And(l, r) | Cond::Or(l, r) => {
            visit_cond(l, f);
            visit_cond(r, f);
        }
        Cond::Not(inner) => visit_cond(inner, f),
        _ => {}
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Null => write!(f, "NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let leaf = |n: i64| Cond::Cmp {
            left: Expr::Lit(Literal::Int(n)),
            op: CmpOp::Eq,
            right: Operand::Expr(Expr::Lit(Literal::Int(n))),
        };
        let c = Cond::And(
            Box::new(Cond::And(Box::new(leaf(1)), Box::new(leaf(2)))),
            Box::new(leaf(3)),
        );
        assert_eq!(c.conjuncts().len(), 3);
    }

    #[test]
    fn contains_aggregate_walks_arith() {
        let e = Expr::Arith {
            op: ArithOp::Add,
            left: Box::new(Expr::Lit(Literal::Int(1))),
            right: Box::new(Expr::Agg {
                func: AggFunc::Count,
                distinct: false,
                arg: Box::new(Expr::Star),
            }),
        };
        assert!(e.contains_aggregate());
    }

    #[test]
    fn binding_prefers_alias() {
        let t = TableRef::Named {
            name: "singer".into(),
            alias: Some("t1".into()),
        };
        assert_eq!(t.binding(), Some("t1"));
        let t = TableRef::Named {
            name: "singer".into(),
            alias: None,
        };
        assert_eq!(t.binding(), Some("singer"));
    }

    #[test]
    fn literal_display_escapes_quotes() {
        assert_eq!(Literal::Str("it's".into()).to_string(), "'it''s'");
    }

    #[test]
    fn float_literal_displays_with_decimal() {
        assert_eq!(Literal::Float(3.0).to_string(), "3.0");
    }

    #[test]
    fn flipped_ops() {
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flipped(), CmpOp::Eq);
    }

    #[test]
    fn nested_detection() {
        let inner = Query::Select(Select::default());
        let q = Query::Select(Select {
            where_cond: Some(Cond::In {
                expr: Expr::Col(ColumnRef::new("x")),
                negated: false,
                source: InSource::Subquery(Box::new(inner)),
            }),
            ..Select::default()
        });
        assert!(q.is_nested());
        let plain = Query::Select(Select::default());
        assert!(!plain.is_nested());
    }
}
