//! Cross-crate invariants that must hold for every generated benchmark.

use dail_sql::prelude::*;
use sqlkit::exact_set_match;

fn bench() -> Benchmark {
    Benchmark::generate(BenchmarkConfig::tiny())
}

#[test]
fn every_gold_query_executes_and_matches_itself() {
    let b = bench();
    for item in b.dev.iter().chain(&b.train) {
        let q = parse_query(&item.gold_sql).unwrap();
        assert_eq!(q, item.gold, "printed gold diverges: {}", item.gold_sql);
        assert!(exact_set_match(&item.gold, &q));
        execute_query(b.db(item), &item.gold)
            .unwrap_or_else(|e| panic!("gold does not execute: {} ({e})", item.gold_sql));
    }
}

#[test]
fn questions_are_nonempty_and_distinctive() {
    let b = bench();
    for item in &b.dev {
        assert!(!item.question.trim().is_empty());
        assert!(!item.question_realistic.trim().is_empty());
        assert!(item.question.split_whitespace().count() >= 3);
    }
}

#[test]
fn prompt_contains_full_schema_for_every_representation() {
    let b = bench();
    let item = &b.dev[0];
    let schema = &b.db(item).schema;
    for repr in QuestionRepr::ALL {
        let p =
            promptkit::render_prompt(repr, schema, None, &item.question, ReprOptions::default());
        for t in &schema.tables {
            assert!(
                p.to_lowercase().contains(&t.name.to_lowercase()),
                "{repr:?} missing table {}",
                t.name
            );
            for c in &t.columns {
                assert!(
                    p.to_lowercase().contains(&c.name.to_lowercase()),
                    "{repr:?} missing column {}.{}",
                    t.name,
                    c.name
                );
            }
        }
    }
}

#[test]
fn simulated_model_round_trips_every_representation() {
    // The model must recover the question from any representation's prompt.
    let b = bench();
    let item = &b.dev[0];
    let schema = &b.db(item).schema;
    for repr in QuestionRepr::ALL {
        let p =
            promptkit::render_prompt(repr, schema, None, &item.question, ReprOptions::default());
        let parsed = simllm::parse_prompt(&p);
        assert_eq!(parsed.question, item.question, "{repr:?}");
        assert_eq!(parsed.tables.len(), schema.tables.len(), "{repr:?}");
    }
}

#[test]
fn selector_is_deterministic_and_in_pool() {
    let b = bench();
    let sel = ExampleSelector::new(&b);
    let item = &b.dev[0];
    let ids: Vec<usize> = sel
        .select(
            SelectionStrategy::MaskedQuestionSimilarity,
            &item.question,
            &item.question,
            None,
            5,
            1,
        )
        .iter()
        .map(|e| e.id)
        .collect();
    let ids2: Vec<usize> = sel
        .select(
            SelectionStrategy::MaskedQuestionSimilarity,
            &item.question,
            &item.question,
            None,
            5,
            1,
        )
        .iter()
        .map(|e| e.id)
        .collect();
    assert_eq!(ids, ids2);
    let train_ids: std::collections::HashSet<usize> = b.train.iter().map(|e| e.id).collect();
    assert!(ids.iter().all(|i| train_ids.contains(i)));
}

#[test]
fn scoring_gold_as_prediction_is_perfect_and_noise_is_not() {
    let b = bench();
    let mut noise_ex = 0usize;
    for item in &b.dev[..20.min(b.dev.len())] {
        let s = eval::score_item(b.db(item), item, &item.gold_sql);
        assert!(s.valid && s.ex && s.em);
        let wrong = eval::score_item(b.db(item), item, "SELECT 12345 FROM nonexistent");
        assert!(!wrong.valid);
        noise_ex += usize::from(wrong.ex);
    }
    assert_eq!(noise_ex, 0);
}

#[test]
fn model_zoo_profiles_load_into_models() {
    for p in simllm::ZOO {
        let m = SimLlm::new(p.name).unwrap();
        assert_eq!(m.profile.name, p.name);
    }
}
