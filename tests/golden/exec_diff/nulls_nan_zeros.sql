# Shrunk differential regressions: NULL / NaN / signed-zero semantics.
# Replayed by crates/storage/tests/exec_differential.rs against the fixed
# regression database (see regression_db() there). One statement per line.

# -0.0 and 0.0 are sql-equal but bitwise distinct; both engines must keep
# both rows and return each cell's original bits.
SELECT id, score FROM person WHERE score = 0.0 ORDER BY id ASC

# NaN in the probe column: the exact-key hash prefilter cannot bucket NaN,
# so the planner must take the pairwise fallback and still agree.
SELECT T1.id, T2.vid FROM person AS T1 JOIN visit AS T2 ON T1.score = T2.amount ORDER BY T1.id ASC, T2.vid ASC

# NULL join keys never match, on either side.
SELECT count(*) FROM person AS T1 JOIN visit AS T2 ON T1.id = T2.person_id

# IS NULL / IS NOT NULL pushdown vs the interpreter's 3VL.
SELECT id FROM person WHERE score IS NULL
SELECT id FROM person WHERE score IS NOT NULL ORDER BY id DESC

# Aggregates that see NaN and NULLs (avg skips NULLs, propagates NaN).
SELECT count(*), count(score), avg(score), min(score), max(score) FROM person

# Scalar subquery produces NaN; every comparison against it must agree.
SELECT id FROM person WHERE score > (SELECT avg(amount) FROM visit)

# NULL-heavy set operations (NULL equals NULL under set-op dedup).
SELECT grp FROM person EXCEPT SELECT person_id FROM visit
SELECT score FROM person UNION SELECT amount FROM visit

# NOT folding over 3VL: NOT(NULL = 1) is NULL, row drops in both engines.
SELECT id FROM person WHERE NOT (grp = 1) ORDER BY id ASC
