# Shrunk differential regressions: planner decisions that must never change
# results — pushdown, join reorder, index selection, exact-key hashing.

# 2^53 neighbors collide as f64 hash-prefilter keys; candidates must be
# re-verified with exact comparison.
SELECT id FROM person WHERE grp = 9007199254740992
SELECT id FROM person WHERE grp IN (9007199254740992, 9007199254740993) ORDER BY id ASC

# Self-join on a column holding 2^53-band values and NULLs.
SELECT A.id, B.id FROM person AS A JOIN person AS B ON A.grp = B.grp ORDER BY A.id ASC, B.id ASC

# WHERE equi-edge across tables becomes a join key during planning.
SELECT count(*) FROM person AS A JOIN visit AS B ON A.id = B.person_id WHERE A.grp = B.vid

# Join against an empty table (tag has no rows in the regression db).
SELECT count(*) FROM person AS A JOIN tag AS C ON A.grp = C.tid

# Pushdown + safe residual split: grp is pushable, the arithmetic is not.
SELECT id FROM person WHERE grp = 3 AND score * 2 > 1.0 ORDER BY id ASC

# Unsafe conjunct (subquery) forces full row-wise WHERE with no pushdown.
SELECT id FROM person WHERE grp IN (SELECT person_id FROM visit) AND grp = 1

# Join reorder must not change output order (reference order is restored).
SELECT T1.id, T2.vid FROM person AS T1 JOIN visit AS T2 ON T1.id = T2.person_id WHERE T2.amount > 0.0 ORDER BY T1.id ASC, T2.vid ASC

# Range and BETWEEN shapes that are index-eligible on larger tables.
SELECT id FROM person WHERE grp BETWEEN 1 AND 3 ORDER BY id ASC
SELECT id FROM person WHERE grp >= 2 AND grp < 9007199254740993 ORDER BY id ASC

# LIKE with a bare wildcard keeps all non-null names.
SELECT id FROM person WHERE name LIKE '%' ORDER BY id ASC

# Grouped join with HAVING, after reorder.
SELECT grp, count(*) FROM person GROUP BY grp HAVING count(*) >= 2 ORDER BY grp ASC

# Correlated EXISTS / NOT EXISTS stay on the interpreter path but share
# the columnar outer scan.
SELECT id FROM person AS A WHERE EXISTS (SELECT 1 FROM visit WHERE visit.person_id = A.id) ORDER BY id ASC
SELECT id FROM person AS A WHERE NOT EXISTS (SELECT 1 FROM visit WHERE visit.person_id = A.id) ORDER BY id ASC

# No outer ORDER BY: raw row order must match the reference engine exactly
# (order restoration after join reorder); LIMIT and DISTINCT observe it.
SELECT T1.id, T2.vid FROM person AS T1 JOIN visit AS T2 ON T1.id = T2.person_id
SELECT T1.id, T2.vid FROM person AS T1 JOIN visit AS T2 ON T1.id = T2.person_id LIMIT 2
SELECT DISTINCT T1.grp FROM person AS T1 JOIN visit AS T2 ON T1.id = T2.person_id
SELECT T1.grp, count(*) FROM person AS T1 JOIN visit AS T2 ON T1.id = T2.person_id GROUP BY T1.grp
