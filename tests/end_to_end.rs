//! Cross-crate end-to-end tests: the full pipeline from benchmark generation
//! through prompting, simulated inference, execution and scoring.

use dail_sql::prelude::*;

fn bench() -> Benchmark {
    Benchmark::generate(BenchmarkConfig {
        seed: 2023,
        train_size: 300,
        dev_size: 120,
        dev_domains: 6,
        synthetic_domains: 0,
    })
}

#[test]
fn dail_sql_beats_zero_shot() {
    let b = bench();
    let selector = ExampleSelector::new(&b);
    // gpt-3.5 has the most ICL headroom; average two seeds to tame noise.
    let zero = ZeroShot::new(
        SimLlm::new("gpt-3.5-turbo").unwrap(),
        QuestionRepr::CodeRepr,
    );
    let dail = DailSql::new(SimLlm::new("gpt-3.5-turbo").unwrap());
    let mut gz = 0.0;
    let mut gd = 0.0;
    for seed in [5u64, 17] {
        gz += evaluate(&b, &selector, &zero, &b.dev, seed, false).ex_pct();
        gd += evaluate(&b, &selector, &dail, &b.dev, seed, false).ex_pct();
    }
    assert!(
        gd / 2.0 > gz / 2.0 + 4.0,
        "DAIL {:.1} vs zero-shot {:.1}",
        gd / 2.0,
        gz / 2.0
    );
}

#[test]
fn stronger_models_score_higher() {
    let b = bench();
    let selector = ExampleSelector::new(&b);
    let mut last = f64::INFINITY;
    for model in ["gpt-4", "text-davinci-003", "llama-7b"] {
        let p = ZeroShot::new(SimLlm::new(model).unwrap(), QuestionRepr::CodeRepr);
        let r = evaluate(&b, &selector, &p, &b.dev, 5, false);
        assert!(
            r.ex_pct() < last + 3.0,
            "{model} unexpectedly high: {:.1} vs previous {:.1}",
            r.ex_pct(),
            last
        );
        last = r.ex_pct();
    }
    // Endpoints must be clearly separated.
    let strong = evaluate(
        &b,
        &selector,
        &ZeroShot::new(SimLlm::new("gpt-4").unwrap(), QuestionRepr::CodeRepr),
        &b.dev,
        5,
        false,
    );
    let weak = evaluate(
        &b,
        &selector,
        &ZeroShot::new(SimLlm::new("llama-7b").unwrap(), QuestionRepr::CodeRepr),
        &b.dev,
        5,
        false,
    );
    assert!(strong.ex_pct() > weak.ex_pct() + 15.0);
}

#[test]
fn realistic_questions_are_harder() {
    let b = bench();
    let selector = ExampleSelector::new(&b);
    let p = ZeroShot::new(SimLlm::new("gpt-4").unwrap(), QuestionRepr::CodeRepr);
    let std = evaluate(&b, &selector, &p, &b.dev, 5, false);
    let real = evaluate(&b, &selector, &p, &b.dev, 5, true);
    assert!(
        real.ex_pct() < std.ex_pct() - 3.0,
        "realistic {:.1} vs standard {:.1}",
        real.ex_pct(),
        std.ex_pct()
    );
}

#[test]
fn evaluation_is_deterministic_end_to_end() {
    let b = bench();
    let selector = ExampleSelector::new(&b);
    let p = DailSql::new(SimLlm::new("gpt-3.5-turbo").unwrap());
    let r1 = evaluate(&b, &selector, &p, &b.dev[..30], 9, false);
    let r2 = evaluate(&b, &selector, &p, &b.dev[..30], 9, false);
    assert_eq!(r1.ex, r2.ex);
    assert_eq!(r1.em, r2.em);
    assert_eq!(r1.cost.prompt_tokens, r2.cost.prompt_tokens);
}

#[test]
fn sft_lifts_zero_shot_and_kills_icl() {
    let b = bench();
    let selector = ExampleSelector::new(&b);
    let base = SimLlm::new("llama-7b").unwrap();
    let tuned = base.finetune(PromptStyle::Alpaca, b.train.len());

    let rb = evaluate(
        &b,
        &selector,
        &ZeroShot::new(base.clone(), QuestionRepr::AlpacaSft),
        &b.dev,
        5,
        false,
    );
    let rt = evaluate(
        &b,
        &selector,
        &ZeroShot::new(tuned.clone(), QuestionRepr::AlpacaSft),
        &b.dev,
        5,
        false,
    );
    assert!(
        rt.ex_pct() > rb.ex_pct() + 5.0,
        "tuned {:.1} base {:.1}",
        rt.ex_pct(),
        rb.ex_pct()
    );

    // Few-shot gain collapses after SFT.
    let base13 = SimLlm::new("llama-13b").unwrap();
    let tuned13 = base13.finetune(PromptStyle::Ddl, b.train.len());
    let gain = |m: &SimLlm| {
        let z = evaluate(
            &b,
            &selector,
            &ZeroShot::new(m.clone(), QuestionRepr::CodeRepr),
            &b.dev,
            5,
            false,
        );
        let f = evaluate(
            &b,
            &selector,
            &FewShot::new(m.clone(), PromptConfig::dail_sql(5)),
            &b.dev,
            5,
            false,
        );
        f.ex_pct() - z.ex_pct()
    };
    let base_gain = gain(&base13);
    let tuned_gain = gain(&tuned13);
    assert!(
        base_gain > tuned_gain + 5.0,
        "base gain {base_gain:.1} vs tuned gain {tuned_gain:.1}"
    );
}

#[test]
fn foreign_keys_help_code_repr() {
    let b = bench();
    let selector = ExampleSelector::new(&b);
    let with = ZeroShot {
        model: SimLlm::new("gpt-3.5-turbo").unwrap(),
        repr: QuestionRepr::CodeRepr,
        opts: ReprOptions {
            foreign_keys: true,
            ..Default::default()
        },
    };
    let without = ZeroShot {
        model: SimLlm::new("gpt-3.5-turbo").unwrap(),
        repr: QuestionRepr::CodeRepr,
        opts: ReprOptions {
            foreign_keys: false,
            ..Default::default()
        },
    };
    let rw = evaluate(&b, &selector, &with, &b.dev, 5, false);
    let ro = evaluate(&b, &selector, &without, &b.dev, 5, false);
    assert!(
        rw.ex_pct() > ro.ex_pct(),
        "with FK {:.1} vs without {:.1}",
        rw.ex_pct(),
        ro.ex_pct()
    );
}

#[test]
fn token_efficiency_ordering_holds() {
    let b = bench();
    let selector = ExampleSelector::new(&b);
    let mk = |org| PromptConfig {
        repr: QuestionRepr::CodeRepr,
        opts: ReprOptions::default(),
        selection: SelectionStrategy::MaskedQuestionSimilarity,
        organization: org,
        shots: 5,
        max_tokens: 8192,
    };
    let full = evaluate(
        &b,
        &selector,
        &FewShot::new(
            SimLlm::new("gpt-4").unwrap(),
            mk(OrganizationStrategy::Full),
        ),
        &b.dev[..40],
        5,
        false,
    );
    let dail = evaluate(
        &b,
        &selector,
        &FewShot::new(
            SimLlm::new("gpt-4").unwrap(),
            mk(OrganizationStrategy::DailPairs),
        ),
        &b.dev[..40],
        5,
        false,
    );
    let sql_only = evaluate(
        &b,
        &selector,
        &FewShot::new(
            SimLlm::new("gpt-4").unwrap(),
            mk(OrganizationStrategy::SqlOnly),
        ),
        &b.dev[..40],
        5,
        false,
    );
    // Token ordering: FULL > DAIL > SQLONLY.
    assert!(full.cost.avg_prompt_tokens() > dail.cost.avg_prompt_tokens());
    assert!(dail.cost.avg_prompt_tokens() > sql_only.cost.avg_prompt_tokens());
    // DAIL organization must match FULL's accuracy within a small margin
    // while being much cheaper (the paper's token-efficiency headline).
    assert!(dail.ex_pct() >= full.ex_pct() - 5.0);
    assert!(dail.ex_pct() >= sql_only.ex_pct() - 2.0);
}
