//! Smoke test: every experiment (E1–E10) runs end-to-end at quick scale and
//! produces well-formed, saveable tables.

use dail_sql::prelude::*;
use eval::Table;

#[test]
fn all_experiments_run_and_save() {
    let bench = Benchmark::generate(BenchmarkConfig::tiny());
    let runner = ExperimentRunner::new(
        &bench,
        Scale {
            dev_cap: 10,
            full_grid: false,
        },
        3,
    );
    let dir = std::env::temp_dir().join("dail_sql_smoke_results");
    let _ = std::fs::remove_dir_all(&dir);

    let mut all: Vec<Table> = Vec::new();
    for id in ExperimentRunner::ALL_IDS {
        let tables = runner.run_experiment(id);
        assert!(!tables.is_empty(), "{id} produced no tables");
        for t in tables {
            assert!(!t.rows.is_empty(), "{}: empty table", t.id);
            assert!(t.rows.iter().all(|r| r.len() == t.headers.len()));
            t.save(&dir).unwrap();
            all.push(t);
        }
    }
    // Every artifact landed on disk in both formats.
    for t in &all {
        assert!(dir.join(format!("{}.md", t.id)).exists());
        assert!(dir.join(format!("{}.tsv", t.id)).exists());
    }
    // E10 produces its three sub-tables.
    assert!(all.iter().filter(|t| t.id.starts_with("E10")).count() >= 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn experiment_percentages_are_sane() {
    let bench = Benchmark::generate(BenchmarkConfig::tiny());
    let runner = ExperimentRunner::new(
        &bench,
        Scale {
            dev_cap: 12,
            full_grid: false,
        },
        3,
    );
    for id in ["e1", "e5", "e8"] {
        for t in runner.run_experiment(id) {
            for row in &t.rows {
                for cell in row {
                    if let Ok(v) = cell.parse::<f64>() {
                        assert!(
                            (-100.0..=10_000.0).contains(&v),
                            "{}: weird numeric cell {cell}",
                            t.id
                        );
                    }
                }
            }
        }
    }
}
