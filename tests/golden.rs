//! Golden-file tests for the trace renderers: folded flamegraph stacks and
//! the cross-run profile diff, compared byte-for-byte against committed
//! fixtures under `tests/golden/`.
//!
//! To regenerate after an intentional renderer change:
//!
//! ```bash
//! DAIL_UPDATE_GOLDEN=1 cargo test --test golden
//! ```

use dail_sql::obskit::{parse_jsonl, Event, Flame, Profile, ProfileDiff};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn load_events(name: &str) -> Vec<Event> {
    let path = golden_dir().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    parse_jsonl(&text).unwrap_or_else(|e| panic!("fixture {name} must be a valid trace: {e}"))
}

/// Compare `actual` against the committed golden file, or rewrite the file
/// when `DAIL_UPDATE_GOLDEN=1` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var("DAIL_UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::write(&path, actual)
            .unwrap_or_else(|e| panic!("cannot update golden {}: {e}", path.display()));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {}: {e}\nrun `DAIL_UPDATE_GOLDEN=1 cargo test --test golden` to create it",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "renderer output diverged from golden {name}; if the change is \
         intentional, regenerate with `DAIL_UPDATE_GOLDEN=1 cargo test --test golden`"
    );
}

#[test]
fn folded_stacks_match_golden() {
    let flame = Flame::from_events(&load_events("baseline_trace.jsonl"));
    check_golden("baseline_trace.folded", &flame.folded());
}

#[test]
fn profile_diff_markdown_matches_golden() {
    let base = Profile::from_events(&load_events("baseline_trace.jsonl"));
    let slow = Profile::from_events(&load_events("slowdown_trace.jsonl"));
    check_golden(
        "profile_diff.md",
        &ProfileDiff::between(&base, &slow).to_markdown(),
    );
}

#[test]
fn flame_root_width_equals_trace_wall_clock() {
    let events = load_events("baseline_trace.jsonl");
    let flame = Flame::from_events(&events);
    let profile = Profile::from_events(&events);
    assert_eq!(flame.wall_ns(), profile.wall_ns);
    // The SVG advertises the same width on its root frame...
    let svg = flame.to_svg();
    let root = format!("data-name=\"all\" data-ns=\"{}\"", profile.wall_ns);
    assert!(svg.contains(&root), "root frame must span the wall-clock");
    // ...and the folded self-times sum exactly to it.
    let folded_sum: u64 = flame
        .folded()
        .lines()
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(folded_sum, profile.wall_ns);
}

#[test]
fn slowdown_fixture_trips_the_gate_and_baseline_does_not() {
    let base = Profile::from_events(&load_events("baseline_trace.jsonl"));
    let slow = Profile::from_events(&load_events("slowdown_trace.jsonl"));
    // Identical traces: clean at any threshold.
    assert!(ProfileDiff::between(&base, &base)
        .regressions(0.0)
        .is_empty());
    // The slowdown fixture regresses `predict` by ~33% and nothing else.
    let regressed = ProfileDiff::between(&base, &slow).regressions(10.0);
    assert_eq!(regressed.len(), 1, "{regressed:?}");
    assert_eq!(regressed[0].0, "predict");
    assert!((regressed[0].1 - 100.0 / 3.0).abs() < 0.1, "{regressed:?}");
}
