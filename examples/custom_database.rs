//! Bring your own database: wire a hand-built schema + data through the
//! whole Text-to-SQL stack (prompt rendering → simulated LLM → execution).
//!
//! This is the integration path a downstream application would use — nothing
//! here depends on the synthetic benchmark generator.
//!
//! ```text
//! cargo run --release --example custom_database
//! ```

use dail_sql::prelude::*;
use simllm::extract_sql;
use storage::schema::{ColType, ColumnDef, DbSchema, ForeignKey, TableSchema};

fn build_travel_db() -> Database {
    let schema = DbSchema {
        db_id: "travel_agency".into(),
        tables: vec![
            TableSchema {
                name: "destination".into(),
                columns: vec![
                    ColumnDef::new("destination_id", ColType::Int),
                    ColumnDef::new("name", ColType::Text),
                    ColumnDef::new("country", ColType::Text),
                    ColumnDef::new("avg_temp", ColType::Float),
                ],
                primary_key: vec![0],
            },
            TableSchema {
                name: "trip".into(),
                columns: vec![
                    ColumnDef::new("trip_id", ColType::Int),
                    ColumnDef::new("destination_id", ColType::Int),
                    ColumnDef::new("traveler", ColType::Text),
                    ColumnDef::new("days", ColType::Int),
                    ColumnDef::new("price", ColType::Float),
                ],
                primary_key: vec![0],
            },
        ],
        foreign_keys: vec![ForeignKey {
            from_table: "trip".into(),
            from_column: "destination_id".into(),
            to_table: "destination".into(),
            to_column: "destination_id".into(),
        }],
    };
    let mut db = Database::new(schema);
    let destinations = [
        (1, "Lisbon", "Portugal", 21.5),
        (2, "Kyoto", "Japan", 16.0),
        (3, "Reykjavik", "Iceland", 5.5),
        (4, "Cusco", "Peru", 12.0),
    ];
    for (id, name, country, temp) in destinations {
        db.insert(
            "destination",
            vec![
                Value::Int(id),
                Value::Str(name.into()),
                Value::Str(country.into()),
                Value::Float(temp),
            ],
        )
        .unwrap();
    }
    let trips = [
        (1, 1, "Ana", 7, 1450.0),
        (2, 1, "Bruno", 4, 890.0),
        (3, 2, "Carla", 10, 3200.0),
        (4, 3, "Diego", 5, 2100.0),
        (5, 2, "Elena", 12, 4100.0),
        (6, 4, "Felix", 9, 1750.0),
    ];
    for (id, dest, traveler, days, price) in trips {
        db.insert(
            "trip",
            vec![
                Value::Int(id),
                Value::Int(dest),
                Value::Str(traveler.into()),
                Value::Int(days),
                Value::Float(price),
            ],
        )
        .unwrap();
    }
    db
}

fn main() {
    let db = build_travel_db();
    let model = SimLlm::new("gpt-4").unwrap();

    let questions = [
        "How many trips are there?",
        "What is the average price of all trips?",
        "List the name of destinations.",
        "What is the name of the destination with the highest avg_temp?",
        "How many trips does each destination have? Show the name and the count.",
    ];

    for question in questions {
        // Render the DAIL-SQL zero-shot prompt (CR_P representation).
        let prompt = promptkit::render_prompt(
            QuestionRepr::CodeRepr,
            &db.schema,
            Some(&db),
            question,
            ReprOptions::default(),
        );
        let out = model.complete(
            &prompt,
            &GenOptions {
                seed: 11,
                ..Default::default()
            },
        );
        let sql = extract_sql(&out, prompt.trim_end().ends_with("SELECT"));
        println!("Q: {question}");
        println!("  SQL: {sql}");
        match parse_query(&sql).map(|q| execute_query(&db, &q)) {
            Ok(Ok(rs)) => {
                let preview: Vec<String> = rs
                    .rows
                    .iter()
                    .take(4)
                    .map(|r| {
                        r.iter()
                            .map(|v| v.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    })
                    .collect();
                println!("  rows ({}): {}", rs.rows.len(), preview.join(" | "));
            }
            Ok(Err(e)) => println!("  execution error: {e}"),
            Err(e) => println!("  parse error: {e}"),
        }
        println!();
    }
}
