//! Mini Spider-leaderboard run: DAIL-SQL vs the baselines on a reduced
//! benchmark (the full regeneration is `run_experiments e8`).
//!
//! ```text
//! cargo run --release --example leaderboard
//! ```

use dail_sql::prelude::*;

fn main() {
    // Use the canonical experiment scale so the ordering is stable; see
    // `run_experiments e8` for the CI-annotated version.
    let bench = Benchmark::generate(BenchmarkConfig::default());
    let selector = ExampleSelector::new(&bench);

    let entries: Vec<Box<dyn Predictor + Sync>> = vec![
        Box::new(DailSql::with_self_consistency(
            SimLlm::new("gpt-4").unwrap(),
            5,
        )),
        Box::new(DailSql::new(SimLlm::new("gpt-4").unwrap())),
        Box::new(DinSqlStyle::new(SimLlm::new("gpt-4").unwrap())),
        Box::new(C3Style::new(SimLlm::new("gpt-3.5-turbo").unwrap())),
        Box::new(ZeroShot::new(
            SimLlm::new("gpt-4").unwrap(),
            QuestionRepr::CodeRepr,
        )),
    ];

    println!(
        "{:<28} {:>6} {:>6} {:>6} {:>8}",
        "solution", "EX%", "EM%", "valid%", "calls/q"
    );
    let mut rows: Vec<(String, f64, f64, f64, f64)> = Vec::new();
    for p in &entries {
        let r = evaluate(&bench, &selector, p.as_ref(), &bench.dev, 2023, false);
        rows.push((
            r.name.clone(),
            r.ex_pct(),
            r.em_pct(),
            r.valid_pct(),
            r.cost.avg_api_calls(),
        ));
    }
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (name, ex, em, valid, calls) in rows {
        println!("{name:<28} {ex:>6.1} {em:>6.1} {valid:>6.1} {calls:>8.1}");
    }
}
