//! Prompt cookbook: render one question under all five representations and
//! all three example organizations, with token counts and API cost — the
//! paper's effectiveness-vs-efficiency trade-off, hands-on.
//!
//! ```text
//! cargo run --release --example prompt_cookbook
//! ```

use dail_sql::prelude::*;
use simllm::profile;

fn main() {
    let bench = Benchmark::generate(BenchmarkConfig::tiny());
    let selector = ExampleSelector::new(&bench);
    let tokenizer = Tokenizer::new();
    let item = &bench.dev[0];
    let gpt4 = profile("gpt-4").unwrap();

    println!("question: {}\n", item.question);

    // --- the five zero-shot representations ---
    println!("== zero-shot representations ==");
    for repr in QuestionRepr::ALL {
        let cfg = PromptConfig::zero_shot(repr);
        let bundle = build_prompt(&cfg, &bench, &selector, item, None, false, &tokenizer, 1);
        let usd = bundle.tokens as f64 / 1000.0 * gpt4.price_per_1k_prompt;
        println!(
            "{:>5}: {:4} tokens  (${:.4} prompt cost on gpt-4)",
            repr.as_str(),
            bundle.tokens,
            usd
        );
    }

    // Show one full prompt.
    let cfg = PromptConfig::zero_shot(QuestionRepr::CodeRepr);
    let bundle = build_prompt(&cfg, &bench, &selector, item, None, false, &tokenizer, 1);
    println!(
        "\n--- CR_P prompt ---\n{}\n-------------------\n",
        bundle.text
    );

    // --- the three 5-shot organizations ---
    println!("== 5-shot example organizations (MQS selection) ==");
    for org in OrganizationStrategy::ALL {
        let cfg = PromptConfig {
            repr: QuestionRepr::CodeRepr,
            opts: ReprOptions::default(),
            selection: SelectionStrategy::MaskedQuestionSimilarity,
            organization: org,
            shots: 5,
            max_tokens: 8192,
        };
        let bundle = build_prompt(&cfg, &bench, &selector, item, None, false, &tokenizer, 1);
        let usd = bundle.tokens as f64 / 1000.0 * gpt4.price_per_1k_prompt;
        println!(
            "{:>8}: {:5} tokens  (${:.4}, {} examples kept)",
            org.as_str(),
            bundle.tokens,
            usd,
            bundle.example_ids.len()
        );
    }

    // --- a DAIL organization prompt, printed ---
    let cfg = PromptConfig::dail_sql(3);
    let bundle = build_prompt(
        &cfg,
        &bench,
        &selector,
        item,
        Some(&item.gold),
        false,
        &tokenizer,
        1,
    );
    println!(
        "\n--- DAIL 3-shot prompt ---\n{}\n--------------------------",
        bundle.text
    );
}
