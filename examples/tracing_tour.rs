//! Tracing tour: record a full pipeline trace and replay it as a profile.
//!
//! ```text
//! cargo run --release --example tracing_tour
//! ```
//!
//! The same machinery backs `dail_sql_cli ... --trace FILE.jsonl` and
//! `dail_sql_cli profile FILE.jsonl`.

use dail_sql::prelude::*;

fn main() {
    // 1. An enabled recorder. Installing it globally lets the deep layers
    //    (simllm, storage, promptkit, sqlkit, textkit) report counters and
    //    latency histograms without any handle-threading; the harness also
    //    takes it explicitly to emit per-item spans.
    let recorder = Recorder::enabled();
    obskit::set_global(recorder.clone());

    // 2. A traced evaluation run.
    let bench = Benchmark::generate(BenchmarkConfig::tiny());
    let selector = ExampleSelector::new(&bench);
    let dail = DailSql::new(SimLlm::new("gpt-4").unwrap());
    let opts = EvalOptions {
        threads: None,
        recorder: recorder.clone(),
        digests: false,
    };
    let items = &bench.dev[..12.min(bench.dev.len())];
    let result = evaluate_opts(&bench, &selector, &dail, items, 42, false, &opts);
    println!(
        "evaluated {} items: EX {:.1}% ({} prompt tokens total)\n",
        result.n,
        result.ex_pct(),
        result.cost.prompt_tokens
    );

    // 3. The raw trace is JSONL — one event per line, replayable later.
    let jsonl = recorder.to_jsonl();
    let preview: Vec<&str> = jsonl.lines().take(5).collect();
    println!("first trace lines:\n{}\n...\n", preview.join("\n"));

    // 4. Replay the trace into a per-stage breakdown. Span self-times sum
    //    to the run wall-clock; the metric tables aggregate every layer's
    //    counters, gauges and histograms.
    let events = recorder.drain_trace();
    let profile = Profile::from_events(&events);
    println!("{}", profile.to_markdown());

    // 5. Individual metrics are directly addressable too.
    let metrics = recorder.metrics();
    println!(
        "the executor ran {} statements and scanned {} rows to score this run",
        metrics
            .counters
            .get("storage.statements")
            .copied()
            .unwrap_or(0),
        metrics
            .counters
            .get("storage.rows_scanned")
            .copied()
            .unwrap_or(0),
    );
}
