//! Model anatomy: watch the simulated LLM think, stage by stage.
//!
//! Uses [`simllm::SimLlm::complete_traced`] to expose what each pipeline
//! stage saw and decided — the tool to reach for when a prompt configuration
//! underperforms and you want to know *which mechanism* failed.
//!
//! ```text
//! cargo run --release --example model_anatomy
//! ```

use dail_sql::prelude::*;

fn show(model_name: &str, prompt: &str, label: &str) {
    let model = SimLlm::new(model_name).unwrap();
    let t = model.complete_traced(
        prompt,
        &GenOptions {
            seed: 3,
            ..Default::default()
        },
    );
    println!("== {label} ({model_name})");
    println!("  question   : {}", t.question);
    println!(
        "  schema seen: {} tables ({}), {} FKs, {} examples",
        t.tables_seen.len(),
        t.tables_seen
            .iter()
            .map(|(n, c)| format!("{n}:{c} cols"))
            .collect::<Vec<_>>()
            .join(", "),
        t.fks_seen,
        t.examples_seen
    );
    println!(
        "  effective  : tier {:.2}, alignment {:.2}",
        t.tier, t.alignment
    );
    println!(
        "  cues kept  : {:?}",
        t.cues_kept
            .iter()
            .map(|(id, w)| format!("#{id}(w={w})"))
            .collect::<Vec<_>>()
    );
    let top: Vec<String> = t
        .intent_ranking
        .iter()
        .take(3)
        .map(|(i, s)| format!("{i:?}={s:.2}"))
        .collect();
    println!("  intents    : {} -> chose {:?}", top.join(", "), t.intent);
    println!(
        "  stabilize  : {:.2}  (p_sys {:.3}, p_noise {:.3})",
        t.stabilize, t.p_sys, t.p_noise
    );
    println!("  sql        : {}", t.sql);
    println!("  response   : {:?}\n", t.response);
}

fn main() {
    let bench = Benchmark::generate(BenchmarkConfig::tiny());
    let selector = ExampleSelector::new(&bench);
    let tokenizer = Tokenizer::new();
    let item = &bench.dev[0];
    println!("gold: {}\n", item.gold_sql);

    // Zero-shot CR_P.
    let cfg = PromptConfig::zero_shot(QuestionRepr::CodeRepr);
    let zero = promptkit::build_prompt(&cfg, &bench, &selector, item, None, false, &tokenizer, 3);
    show("gpt-4", &zero.text, "zero-shot CR_P");

    // Few-shot DAIL prompt: examples appear, stabilization rises.
    let cfg = PromptConfig::dail_sql(5);
    let few = promptkit::build_prompt(
        &cfg,
        &bench,
        &selector,
        item,
        Some(&item.gold),
        false,
        &tokenizer,
        3,
    );
    show("gpt-4", &few.text, "5-shot DAIL");

    // The same few-shot prompt through a small open-source model.
    show("llama-7b", &few.text, "5-shot DAIL");
}
