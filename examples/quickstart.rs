//! Quickstart: generate a benchmark, run DAIL-SQL, inspect predictions.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dail_sql::prelude::*;

fn main() {
    // 1. A small cross-domain benchmark (deterministic from the seed).
    let bench = Benchmark::generate(BenchmarkConfig::tiny());
    println!(
        "benchmark: {} train examples, {} dev examples, {} databases\n",
        bench.train.len(),
        bench.dev.len(),
        bench.databases.len()
    );

    // 2. The DAIL-SQL pipeline on a simulated GPT-4.
    let selector = ExampleSelector::new(&bench);
    let tokenizer = Tokenizer::new();
    let ctx = PredictCtx {
        bench: &bench,
        selector: &selector,
        tokenizer: &tokenizer,
        seed: 42,
        realistic: false,
        trace: TraceContext::disabled(),
    };
    let dail = DailSql::new(SimLlm::new("gpt-4").unwrap());

    // 3. Predict and score a handful of dev questions.
    let mut correct = 0;
    let n = 8.min(bench.dev.len());
    for item in &bench.dev[..n] {
        let pred = dail.predict(&ctx, item);
        let score = score_item(bench.db(item), item, &pred.sql);
        correct += usize::from(score.ex);
        println!("Q: {}", item.question);
        println!("  gold: {}", item.gold_sql);
        println!("  pred: {}", pred.sql);
        println!(
            "  EX={} EM={} ({} prompt tokens, {} calls)\n",
            score.ex, score.em, pred.prompt_tokens, pred.api_calls
        );
    }
    println!("execution accuracy on this sample: {correct}/{n}");

    // 4. Full-dev evaluation in one call.
    let result = evaluate(&bench, &selector, &dail, &bench.dev, 42, false);
    println!(
        "full dev: EX {:.1}%  EM {:.1}%  valid {:.1}%  (avg {:.0} prompt tokens/query)",
        result.ex_pct(),
        result.em_pct(),
        result.valid_pct(),
        result.cost.avg_prompt_tokens()
    );
}
