//! SFT workshop: fine-tune open-source models on different representations
//! and watch the paper's three SFT findings appear:
//!
//! 1. zero-shot accuracy jumps (most for small models);
//! 2. the representation used at tuning time is locked in;
//! 3. in-context learning stops helping after SFT.
//!
//! ```text
//! cargo run --release --example sft_workshop
//! ```

use dail_sql::prelude::*;

fn main() {
    let bench = Benchmark::generate(BenchmarkConfig {
        seed: 2023,
        train_size: 400,
        dev_size: 100,
        dev_domains: 6,
        synthetic_domains: 0,
    });
    let selector = ExampleSelector::new(&bench);
    let corpus = bench.train.len();

    println!("== finding 1: SFT lifts zero-shot accuracy ==");
    for model in ["llama-7b", "llama-13b", "llama-33b"] {
        let base = SimLlm::new(model).unwrap();
        let tuned = base.finetune(PromptStyle::Alpaca, corpus);
        let rb = evaluate(
            &bench,
            &selector,
            &ZeroShot::new(base, QuestionRepr::AlpacaSft),
            &bench.dev,
            1,
            false,
        );
        let rt = evaluate(
            &bench,
            &selector,
            &ZeroShot::new(tuned, QuestionRepr::AlpacaSft),
            &bench.dev,
            1,
            false,
        );
        println!(
            "{model:>10}: EX {:.1}% -> {:.1}%  (+{:.1})",
            rb.ex_pct(),
            rt.ex_pct(),
            rt.ex_pct() - rb.ex_pct()
        );
    }

    println!("\n== finding 2: the tuning representation is locked in ==");
    let tuned = SimLlm::new("llama-13b")
        .unwrap()
        .finetune(PromptStyle::Ddl, corpus);
    for serve in [
        QuestionRepr::CodeRepr,
        QuestionRepr::TextRepr,
        QuestionRepr::OpenAiDemo,
    ] {
        let r = evaluate(
            &bench,
            &selector,
            &ZeroShot::new(tuned.clone(), serve),
            &bench.dev,
            1,
            false,
        );
        println!(
            "trained on CR_P, served {:>5}: EX {:.1}%",
            serve.as_str(),
            r.ex_pct()
        );
    }

    println!("\n== finding 3: ICL degrades after SFT ==");
    let base = SimLlm::new("llama-13b").unwrap();
    let tuned = base.finetune(PromptStyle::Ddl, corpus);
    for (label, model) in [("base", base), ("SFT", tuned)] {
        let zero = evaluate(
            &bench,
            &selector,
            &ZeroShot::new(model.clone(), QuestionRepr::CodeRepr),
            &bench.dev,
            1,
            false,
        );
        let few = evaluate(
            &bench,
            &selector,
            &FewShot::new(model.clone(), PromptConfig::dail_sql(5)),
            &bench.dev,
            1,
            false,
        );
        println!(
            "{label:>5}: 0-shot {:.1}%  5-shot {:.1}%  (gain {:+.1})",
            zero.ex_pct(),
            few.ex_pct(),
            few.ex_pct() - zero.ex_pct()
        );
    }
}
