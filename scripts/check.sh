#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, tests, and a print-statement
# lint for library code. Run from anywhere; operates on the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q --offline --workspace

echo "==> print lint (library crates must use obskit, not stdout)"
# Library crates report through obskit; println!/eprintln! belong only in
# CLI binaries (crates/bench/src/bin), examples, and the criterion shim
# (whose whole job is printing). Doc-comment lines are exempt.
violations=$(grep -rn --include='*.rs' -E 'print(ln)?!|eprint(ln)?!' \
    src crates \
    | grep -v '^crates/bench/src/bin/' \
    | grep -v '^crates/criterion/' \
    | grep -vE '^[^:]+:[0-9]+:[[:space:]]*//' \
    || true)
if [ -n "$violations" ]; then
    echo "found print statements in library code:" >&2
    echo "$violations" >&2
    exit 1
fi

echo "==> perf regression gate (baseline profile diff + flamegraph)"
# The committed baseline/slowdown traces verify the gate machinery itself:
# an identical pair must pass, the injected-slowdown fixture must be
# flagged, and the flamegraph renderer must produce a non-empty SVG.
CLI="cargo run -q --offline -p bench --bin dail_sql_cli --"
$CLI profile tests/golden/baseline_trace.jsonl tests/golden/baseline_trace.jsonl \
    --fail-on-regress 10 >/dev/null
if $CLI profile tests/golden/baseline_trace.jsonl tests/golden/slowdown_trace.jsonl \
    --fail-on-regress 10 >/dev/null 2>&1; then
    echo "perf gate failed to flag the injected-slowdown fixture" >&2
    exit 1
fi
$CLI flame tests/golden/baseline_trace.jsonl --out target/flame-baseline.svg 2>/dev/null
[ -s target/flame-baseline.svg ] || {
    echo "flamegraph render produced no output" >&2
    exit 1
}

echo "==> serve-bench golden report (deterministic serving layer)"
# The serving layer must produce a byte-identical report for a fixed seed,
# independent of machine and worker count. Regenerate the golden after an
# intended change with:  DAIL_UPDATE_GOLDEN=1 cargo test -q -p bench --test cli
$CLI serve-bench --seed 7 --train 60 --dev 24 --requests 120 \
    --mean-gap-ms 15 --queue 16 > target/serve-bench-report.md
if ! cmp -s target/serve-bench-report.md tests/golden/serve_bench_report.md; then
    echo "serve-bench report drifted from tests/golden/serve_bench_report.md:" >&2
    diff tests/golden/serve_bench_report.md target/serve-bench-report.md >&2 || true
    echo "regenerate with: DAIL_UPDATE_GOLDEN=1 cargo test -q -p bench --test cli" >&2
    exit 1
fi

echo "==> metrics exposition golden (Prometheus text format)"
# The exposition of the committed baseline trace must stay byte-stable;
# regenerate after an intended change with:
#   DAIL_UPDATE_GOLDEN=1 cargo test -q -p bench --test cli
$CLI metrics tests/golden/baseline_trace.jsonl > target/metrics-expo.txt
if ! cmp -s target/metrics-expo.txt tests/golden/metrics_expo.txt; then
    echo "metrics exposition drifted from tests/golden/metrics_expo.txt:" >&2
    diff tests/golden/metrics_expo.txt target/metrics-expo.txt >&2 || true
    echo "regenerate with: DAIL_UPDATE_GOLDEN=1 cargo test -q -p bench --test cli" >&2
    exit 1
fi

echo "==> slo-report golden (multi-window burn-rate alerting)"
# The SLO report for the serve-bench golden load must stay byte-stable
# and fire exactly one burn-rate alert at the tuned threshold.
$CLI slo-report --seed 7 --train 60 --dev 24 --requests 120 \
    --mean-gap-ms 15 --queue 16 --burn-alert 4 > target/slo-report.md
if ! cmp -s target/slo-report.md tests/golden/slo_report.md; then
    echo "slo-report drifted from tests/golden/slo_report.md:" >&2
    diff tests/golden/slo_report.md target/slo-report.md >&2 || true
    echo "regenerate with: DAIL_UPDATE_GOLDEN=1 cargo test -q -p bench --test cli" >&2
    exit 1
fi
alerts=$(grep -c '^- ALERT' target/slo-report.md || true)
if [ "$alerts" != "1" ]; then
    echo "slo-report golden must fire exactly one burn-rate alert, found ${alerts}" >&2
    exit 1
fi

echo "==> explain golden plan (canonical ANALYZE rendering)"
# The canonical (time-zeroed) ANALYZE plan for a fixed join+group query must
# stay byte-stable — cardinalities, operator order, and estimate display all
# included. Regenerate after an intended change with:
#   DAIL_UPDATE_GOLDEN=1 cargo test -q -p bench --test cli
$CLI explain concert_singer \
    "SELECT T1.country, count(*) FROM singer AS T1 JOIN concert AS T2 ON T1.singer_id = T2.singer_id WHERE T2.year > 2015 GROUP BY T1.country ORDER BY count(*) DESC LIMIT 3" \
    --analyze --canonical --train 40 --dev 10 > target/explain-plan.txt
if ! cmp -s target/explain-plan.txt tests/golden/explain_plan.txt; then
    echo "explain plan drifted from tests/golden/explain_plan.txt:" >&2
    diff tests/golden/explain_plan.txt target/explain-plan.txt >&2 || true
    echo "regenerate with: DAIL_UPDATE_GOLDEN=1 cargo test -q -p bench --test cli" >&2
    exit 1
fi

echo "==> table/column statistics JSONL round-trip"
# Collected statistics must survive serialize -> parse -> serialize
# byte-identically (the CLI exits 1 on any mismatch).
$CLI stats concert_singer --roundtrip --train 40 --dev 10 > target/db-stats.jsonl
[ -s target/db-stats.jsonl ] || {
    echo "stats subcommand produced no JSONL output" >&2
    exit 1
}

echo "==> ANALYZE passivity (report bytes unchanged with stats collection on)"
# With per-operator stats collection enabled (DAIL_ANALYZE=1), the
# serve-bench report must stay byte-identical to the committed golden:
# the observability layer is strictly passive.
DAIL_ANALYZE=1 $CLI serve-bench --seed 7 --train 60 --dev 24 --requests 120 \
    --mean-gap-ms 15 --queue 16 > target/serve-bench-analyzed.md
if ! cmp -s target/serve-bench-analyzed.md tests/golden/serve_bench_report.md; then
    echo "DAIL_ANALYZE=1 changed the serve-bench report bytes:" >&2
    diff tests/golden/serve_bench_report.md target/serve-bench-analyzed.md >&2 || true
    exit 1
fi

echo "==> telemetry overhead ceiling (1% head sampling, tsdb on)"
# Tracing at a production-like 1% sample rate — with per-operator ANALYZE
# stats collection AND the windowed time-series store enabled on top —
# must not meaningfully slow the serving layer. The bound is deliberately
# loose (2x + 1s slack): it catches pathological per-request overhead,
# not scheduler noise.
t0=$(date +%s%N)
$CLI serve-bench --seed 7 --train 60 --dev 24 --requests 120 \
    --mean-gap-ms 15 --queue 16 >/dev/null
t_off=$(( ($(date +%s%N) - t0) / 1000000 ))
t0=$(date +%s%N)
DAIL_ANALYZE=1 DAIL_TSDB=1 DAIL_TRACE_SAMPLE=0.01 \
    $CLI serve-bench --seed 7 --train 60 --dev 24 --requests 120 \
    --mean-gap-ms 15 --queue 16 --trace target/serve-sampled.jsonl >/dev/null 2>&1
t_on=$(( ($(date +%s%N) - t0) / 1000000 ))
ceiling=$(( t_off * 2 + 1000 ))
if [ "$t_on" -gt "$ceiling" ]; then
    echo "serve-bench with 1% trace sampling took ${t_on}ms vs ${t_off}ms untraced (ceiling ${ceiling}ms)" >&2
    exit 1
fi
echo "    untraced ${t_off}ms, 1%-sampled ${t_on}ms (ceiling ${ceiling}ms)"

echo "==> tsdb passivity gate (report bytes unchanged with tsdb off/sampled/on)"
# The windowed time-series store installs whenever tracing is on; it must
# never change a reported number. serve-bench and slo-report must match
# their goldens byte-for-byte with tsdb disabled, head-sampled, and fully
# sampled.
for env_combo in "DAIL_TSDB=0" "DAIL_TRACE_SAMPLE=0.01" "DAIL_TRACE_SAMPLE=1.0"; do
    env "$env_combo" $CLI serve-bench --seed 7 --train 60 --dev 24 --requests 120 \
        --mean-gap-ms 15 --queue 16 --trace target/tsdb-passivity.jsonl \
        > target/serve-bench-tsdb.md 2>/dev/null
    if ! cmp -s target/serve-bench-tsdb.md tests/golden/serve_bench_report.md; then
        echo "serve-bench report changed under ${env_combo}:" >&2
        diff tests/golden/serve_bench_report.md target/serve-bench-tsdb.md >&2 || true
        exit 1
    fi
    env "$env_combo" $CLI slo-report --seed 7 --train 60 --dev 24 --requests 120 \
        --mean-gap-ms 15 --queue 16 --burn-alert 4 --trace target/tsdb-passivity.jsonl \
        > target/slo-report-tsdb.md 2>/dev/null
    if ! cmp -s target/slo-report-tsdb.md tests/golden/slo_report.md; then
        echo "slo-report changed under ${env_combo}:" >&2
        diff tests/golden/slo_report.md target/slo-report-tsdb.md >&2 || true
        exit 1
    fi
done

echo "==> dashboard golden (byte-stable across DAIL_THREADS 1 vs 4)"
# The dashboard reads only drain-time tsdb events on the virtual clock,
# so its bytes must not depend on thread count or worker scheduling.
# Regenerate with: DAIL_UPDATE_GOLDEN=1 cargo test -q -p bench --test cli
DAIL_THREADS=1 DAIL_TRACE_SAMPLE=1.0 $CLI serve-bench --seed 7 --train 60 --dev 24 \
    --requests 120 --mean-gap-ms 15 --queue 16 --workers 1 \
    --trace target/dash-t1.jsonl >/dev/null 2>&1
DAIL_THREADS=4 DAIL_TRACE_SAMPLE=1.0 $CLI serve-bench --seed 7 --train 60 --dev 24 \
    --requests 120 --mean-gap-ms 15 --queue 16 --workers 6 \
    --trace target/dash-t4.jsonl >/dev/null 2>&1
$CLI dashboard target/dash-t1.jsonl > target/dashboard-t1.md
$CLI dashboard target/dash-t4.jsonl > target/dashboard-t4.md
if ! cmp -s target/dashboard-t1.md target/dashboard-t4.md; then
    echo "dashboard differs between DAIL_THREADS=1 and =4:" >&2
    diff target/dashboard-t1.md target/dashboard-t4.md >&2 || true
    exit 1
fi
if ! cmp -s target/dashboard-t1.md tests/golden/dashboard.md; then
    echo "dashboard drifted from tests/golden/dashboard.md:" >&2
    diff tests/golden/dashboard.md target/dashboard-t1.md >&2 || true
    echo "regenerate with: DAIL_UPDATE_GOLDEN=1 cargo test -q -p bench --test cli" >&2
    exit 1
fi

echo "==> tsdb cardinality-bound trip gate (overflow series + counter fire)"
# With the series bound squeezed to 2, excess label sets must reroute to
# the __overflow__ series and the overflow counter must fire — loudly
# visible in both the dashboard and the Prometheus exposition.
DAIL_TSDB_MAX_SERIES=2 DAIL_TRACE_SAMPLE=1.0 $CLI serve-bench --seed 7 --train 60 \
    --dev 24 --requests 120 --mean-gap-ms 15 --queue 16 \
    --trace target/dash-overflow.jsonl >/dev/null 2>&1
$CLI dashboard target/dash-overflow.jsonl > target/dashboard-overflow.md
if ! grep -q '__overflow__' target/dashboard-overflow.md; then
    echo "cardinality trip left no __overflow__ series in the dashboard" >&2
    exit 1
fi
if grep -q '| overflow | 0 |' target/dashboard-overflow.md; then
    echo "cardinality trip did not raise the dashboard overflow count" >&2
    exit 1
fi
$CLI metrics target/dash-overflow.jsonl > target/metrics-overflow.txt
overflow_count=$(sed -n 's/^obskit_tsdb_overflow \([0-9]*\)$/\1/p' target/metrics-overflow.txt)
if [ -z "$overflow_count" ] || [ "$overflow_count" = "0" ]; then
    echo "obskit_tsdb_overflow counter missing or zero in the exposition" >&2
    exit 1
fi
echo "    overflow observations rerouted: ${overflow_count}"

echo "==> select-bench determinism gate (byte-identical across DAIL_THREADS)"
# Selection results must not depend on the worker count: the sharded scan
# carries global indices and the k-way merge uses the same
# score-then-index ranking as a single-threaded pass. A pool above the
# 4096-row parallel threshold makes DAIL_THREADS=4 actually shard.
DAIL_THREADS=1 $CLI select-bench --pool 6000 --queries 12 --seed 11 --no-timing \
    > target/select-bench-t1.md
DAIL_THREADS=4 $CLI select-bench --pool 6000 --queries 12 --seed 11 --no-timing \
    > target/select-bench-t4.md
if ! cmp -s target/select-bench-t1.md target/select-bench-t4.md; then
    echo "select-bench report differs between DAIL_THREADS=1 and =4:" >&2
    diff target/select-bench-t1.md target/select-bench-t4.md >&2 || true
    exit 1
fi

echo "==> exact-retrieval passivity gate (DAIL_RETRIEVAL=exact is the pre-ANN oracle)"
# With DAIL_RETRIEVAL=exact (and with the variable unset, its default), the
# selector must take the pre-ANN scan path: report bytes identical between
# the two runs, and the selection checksum pinned to the pre-IVF golden.
$CLI select-bench --pool 6000 --queries 12 --seed 11 --no-timing \
    > target/select-bench-default.md
DAIL_RETRIEVAL=exact $CLI select-bench --pool 6000 --queries 12 --seed 11 --no-timing \
    > target/select-bench-exact.md
if ! cmp -s target/select-bench-default.md target/select-bench-exact.md; then
    echo "DAIL_RETRIEVAL=exact changed the select-bench report bytes:" >&2
    diff target/select-bench-default.md target/select-bench-exact.md >&2 || true
    exit 1
fi
if ! grep -q '0x125a29265b97d94a' target/select-bench-exact.md; then
    echo "exact-mode selection checksum drifted from the pre-IVF golden 0x125a29265b97d94a:" >&2
    grep -i checksum target/select-bench-exact.md >&2 || true
    exit 1
fi

echo "==> select-bench perf floor (fast path >= 3x naive reference at 10k rows)"
# The retrievekit fast path (contiguous f32 matrix + bounded-heap top-k)
# must stay at least 3x the committed naive reference (per-row f64 cosine
# + full stable sort) on a 10k-example synthetic pool. Timing needs
# optimized code, hence the release profile. The run also hard-checks
# every selection against the full-sort oracle (exit 1 on mismatch) and
# emits the pool-size/throughput trajectory as target/BENCH_select.json.
CLI_REL="cargo run -q --offline --release -p bench --bin dail_sql_cli --"
$CLI_REL select-bench --pool 10000 --queries 50 --seed 2023 \
    --json target/BENCH_select_naive.json > target/select-bench-report.md 2>/dev/null
speedup=$(sed -n 's/.*"speedup_vs_naive":\([0-9.]*\).*/\1/p' target/BENCH_select_naive.json)
if [ -z "$speedup" ]; then
    echo "could not parse speedup_vs_naive from target/BENCH_select_naive.json" >&2
    exit 1
fi
if ! awk -v s="$speedup" 'BEGIN { exit !(s >= 3.0) }'; then
    echo "selection fast path is only ${speedup}x the naive reference (floor: 3.0x)" >&2
    cat target/select-bench-report.md >&2
    exit 1
fi
echo "    speedup_vs_naive: ${speedup}x"

echo "==> ANN sweep determinism gate (IVF training invariant across DAIL_THREADS)"
# k-means training parallelizes the assignment step above the 4096-row
# threshold; centroid accumulation stays sequential in row order, so the
# sweep report (recall, checksums) must be byte-identical across worker
# counts. 20k rows makes DAIL_THREADS=4 actually shard the training scan.
DAIL_THREADS=1 $CLI_REL select-bench --pool-rows 20000 --queries 12 --seed 11 \
    --no-timing > target/select-sweep-t1.md 2>/dev/null
DAIL_THREADS=4 $CLI_REL select-bench --pool-rows 20000 --queries 12 --seed 11 \
    --no-timing > target/select-sweep-t4.md 2>/dev/null
if ! cmp -s target/select-sweep-t1.md target/select-sweep-t4.md; then
    echo "ANN sweep report differs between DAIL_THREADS=1 and =4:" >&2
    diff target/select-sweep-t1.md target/select-sweep-t4.md >&2 || true
    exit 1
fi

echo "==> ANN retrieval gate (1M rows: recall >= 0.99, int8 scan >= 5x exact)"
# The IVF+int8 path must hold recall@k >= 0.99 against the exact oracle at
# the default probe setting and clear a 5x throughput floor over the exact
# scan on a million-row pool. Numbers land in target/BENCH_select.json
# (one point per line: exact baseline, then ivf and ivf-int8).
$CLI_REL select-bench --pool-rows 1000000 --queries 20 --seed 2023 \
    --json target/BENCH_select.json > target/select-ann-report.md 2>/dev/null
recall_ivf=$(sed -n 's/.*"mode":"ivf",.*"recall_at_k":\([0-9.]*\).*/\1/p' target/BENCH_select.json)
recall_int8=$(sed -n 's/.*"mode":"ivf-int8",.*"recall_at_k":\([0-9.]*\).*/\1/p' target/BENCH_select.json)
speedup_ivf=$(sed -n 's/.*"mode":"ivf",.*"speedup_vs_exact":\([0-9.]*\).*/\1/p' target/BENCH_select.json)
speedup_int8=$(sed -n 's/.*"mode":"ivf-int8",.*"speedup_vs_exact":\([0-9.]*\).*/\1/p' target/BENCH_select.json)
if [ -z "$recall_ivf" ] || [ -z "$recall_int8" ] \
    || [ -z "$speedup_ivf" ] || [ -z "$speedup_int8" ]; then
    echo "could not parse ANN metrics from target/BENCH_select.json" >&2
    cat target/BENCH_select.json >&2
    exit 1
fi
if ! awk -v a="$recall_ivf" -v b="$recall_int8" 'BEGIN { exit !(a >= 0.99 && b >= 0.99) }'; then
    echo "ANN recall below floor 0.99: ivf=${recall_ivf} ivf-int8=${recall_int8}" >&2
    cat target/select-ann-report.md >&2
    exit 1
fi
if ! awk -v a="$speedup_ivf" -v b="$speedup_int8" 'BEGIN { exit !(a >= 5.0 && b >= 5.0) }'; then
    echo "ANN speedup below floor 5.0x: ivf=${speedup_ivf}x ivf-int8=${speedup_int8}x" >&2
    cat target/select-ann-report.md >&2
    exit 1
fi
echo "    1M-row recall@k: ivf ${recall_ivf}, ivf-int8 ${recall_int8}"
echo "    1M-row speedup vs exact: ivf ${speedup_ivf}x, ivf-int8 ${speedup_int8}x"

echo "==> columnar executor: differential oracle gate"
# Every gold query must produce bit-identical results through the columnar
# engine and the reference interpreter, under both join strategies
# (exec-diff exits 1 on any divergence). DAIL_EXEC=oracle remains the
# process-wide escape hatch to route all execution through the interpreter.
$CLI exec-diff --train 60 --dev 24 >/dev/null

echo "==> columnar executor: step-change perf gate"
# Trace the same fixed workload through both engines and require the
# INVERTED profile gate to flag the oracle run as a regression against the
# columnar baseline: if `profile --fail-on-regress 25` passes here, the
# rebuilt executor is no longer meaningfully faster than the interpreter
# it replaced. Engines must also agree on every workload row count.
$CLI_REL exec-bench --rows 50000 --trace target/exec-columnar.jsonl \
    > target/exec-bench-columnar.txt 2>/dev/null
DAIL_EXEC=oracle $CLI_REL exec-bench --rows 50000 --trace target/exec-oracle.jsonl \
    > target/exec-bench-oracle.txt 2>/dev/null
if ! cmp -s <(tail -n +2 target/exec-bench-columnar.txt) \
    <(tail -n +2 target/exec-bench-oracle.txt); then
    echo "exec-bench row counts differ between engines:" >&2
    diff target/exec-bench-columnar.txt target/exec-bench-oracle.txt >&2 || true
    exit 1
fi
if $CLI_REL profile target/exec-columnar.jsonl target/exec-oracle.jsonl \
    --fail-on-regress 25 >/dev/null 2>&1; then
    echo "columnar executor is not a step-change over the oracle interpreter" >&2
    echo "(storage.exec self-time vs DAIL_EXEC=oracle is within 25%)" >&2
    exit 1
fi

echo "==> kill-and-recover determinism gate (crash-injected persist)"
# Persist the golden benchmark's databases to disk with a crash injected
# mid-commit (the process must die, not error out cleanly), recover the
# torn store, resume persistence, and serve the golden load from disk.
# The report must be byte-identical to the committed golden: a crash plus
# recovery may not change a single result bit.
rm -rf target/crash-store
# (the nested bash keeps its own "Aborted" job notice off our stderr; the
# trailing exit stops it exec-ing persist directly and dying by the signal)
if bash -c "DAIL_CRASH_POINT=mid-commit@2 $CLI_REL persist --seed 7 --train 60 --dev 24 \
    --out target/crash-store; exit \$?" >/dev/null 2>&1; then
    echo "crash injector did not fire: persist survived DAIL_CRASH_POINT" >&2
    exit 1
fi
$CLI_REL recover target/crash-store >/dev/null
$CLI_REL persist --seed 7 --train 60 --dev 24 --out target/crash-store --resume >/dev/null
$CLI_REL recover target/crash-store --verify >/dev/null
$CLI_REL serve-bench --store target/crash-store --seed 7 --train 60 --dev 24 \
    --requests 120 --mean-gap-ms 15 --queue 16 > target/serve-bench-recovered.md
if ! cmp -s target/serve-bench-recovered.md tests/golden/serve_bench_report.md; then
    echo "serve-bench from a crash-recovered store drifted from the golden:" >&2
    diff tests/golden/serve_bench_report.md target/serve-bench-recovered.md >&2 || true
    exit 1
fi

echo "==> recover/exec-diff exit-code contract (2 = usage/missing input)"
# Missing or unreadable inputs are caller errors (exit 2), distinct from
# corruption findings (exit 1).
set +e
$CLI_REL recover target/definitely-not-a-store >/dev/null 2>&1
rc_recover=$?
$CLI_REL exec-diff --corpus target/definitely-not-a-corpus.sql >/dev/null 2>&1
rc_corpus=$?
set -e
if [ "$rc_recover" != "2" ] || [ "$rc_corpus" != "2" ]; then
    echo "expected exit 2 for missing inputs, got recover=${rc_recover} exec-diff=${rc_corpus}" >&2
    exit 1
fi

echo "==> exec-diff corpus replay (committed edge-case statements)"
# Every committed regression statement must execute bit-identically through
# the columnar engine and the oracle under both join strategies.
for corpus in tests/golden/exec_diff/*.sql; do
    $CLI exec-diff --corpus "$corpus" >/dev/null
done

echo "==> warm-start perf floor (snapshot load >= 10x cold pool build)"
# Loading the example pool from a binary snapshot must be at least 10x
# faster than re-embedding it from scratch, with the loaded selector
# producing identical selections under every strategy (the subcommand
# exits 1 on divergence). Numbers land in target/BENCH_persist.json.
$CLI_REL warm-start-bench --store target/warm-store \
    --json target/BENCH_persist.json >/dev/null
warm_speedup=$(sed -n 's/.*"speedup":\([0-9.]*\).*/\1/p' target/BENCH_persist.json)
if [ -z "$warm_speedup" ]; then
    echo "could not parse speedup from target/BENCH_persist.json" >&2
    exit 1
fi
if ! awk -v s="$warm_speedup" 'BEGIN { exit !(s >= 10.0) }'; then
    echo "warm start is only ${warm_speedup}x the cold build (floor: 10.0x)" >&2
    exit 1
fi
echo "    warm-start speedup: ${warm_speedup}x"

echo "==> LIKE pathology timing guard"
# The iterative LIKE matcher must answer adversarial many-% patterns
# quickly; the old recursive matcher effectively hung here. 60s is a hard
# backstop (the tests assert tighter bounds internally).
timeout 60 cargo test -q --offline -p storage pathological >/dev/null || {
    echo "pathological LIKE patterns no longer complete in bounded time" >&2
    exit 1
}

echo "all checks passed"
