#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, tests, and a print-statement
# lint for library code. Run from anywhere; operates on the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q --offline --workspace

echo "==> print lint (library crates must use obskit, not stdout)"
# Library crates report through obskit; println!/eprintln! belong only in
# CLI binaries (crates/bench/src/bin), examples, and the criterion shim
# (whose whole job is printing). Doc-comment lines are exempt.
violations=$(grep -rn --include='*.rs' -E 'print(ln)?!|eprint(ln)?!' \
    src crates \
    | grep -v '^crates/bench/src/bin/' \
    | grep -v '^crates/criterion/' \
    | grep -vE '^[^:]+:[0-9]+:[[:space:]]*//' \
    || true)
if [ -n "$violations" ]; then
    echo "found print statements in library code:" >&2
    echo "$violations" >&2
    exit 1
fi

echo "all checks passed"
