#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, tests, and a print-statement
# lint for library code. Run from anywhere; operates on the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q --offline --workspace

echo "==> print lint (library crates must use obskit, not stdout)"
# Library crates report through obskit; println!/eprintln! belong only in
# CLI binaries (crates/bench/src/bin), examples, and the criterion shim
# (whose whole job is printing). Doc-comment lines are exempt.
violations=$(grep -rn --include='*.rs' -E 'print(ln)?!|eprint(ln)?!' \
    src crates \
    | grep -v '^crates/bench/src/bin/' \
    | grep -v '^crates/criterion/' \
    | grep -vE '^[^:]+:[0-9]+:[[:space:]]*//' \
    || true)
if [ -n "$violations" ]; then
    echo "found print statements in library code:" >&2
    echo "$violations" >&2
    exit 1
fi

echo "==> perf regression gate (baseline profile diff + flamegraph)"
# The committed baseline/slowdown traces verify the gate machinery itself:
# an identical pair must pass, the injected-slowdown fixture must be
# flagged, and the flamegraph renderer must produce a non-empty SVG.
CLI="cargo run -q --offline -p bench --bin dail_sql_cli --"
$CLI profile tests/golden/baseline_trace.jsonl tests/golden/baseline_trace.jsonl \
    --fail-on-regress 10 >/dev/null
if $CLI profile tests/golden/baseline_trace.jsonl tests/golden/slowdown_trace.jsonl \
    --fail-on-regress 10 >/dev/null 2>&1; then
    echo "perf gate failed to flag the injected-slowdown fixture" >&2
    exit 1
fi
$CLI flame tests/golden/baseline_trace.jsonl --out target/flame-baseline.svg 2>/dev/null
[ -s target/flame-baseline.svg ] || {
    echo "flamegraph render produced no output" >&2
    exit 1
}

echo "==> serve-bench golden report (deterministic serving layer)"
# The serving layer must produce a byte-identical report for a fixed seed,
# independent of machine and worker count. Regenerate the golden after an
# intended change with:  DAIL_UPDATE_GOLDEN=1 cargo test -q -p bench --test cli
$CLI serve-bench --seed 7 --train 60 --dev 24 --requests 120 \
    --mean-gap-ms 15 --queue 16 > target/serve-bench-report.md
if ! cmp -s target/serve-bench-report.md tests/golden/serve_bench_report.md; then
    echo "serve-bench report drifted from tests/golden/serve_bench_report.md:" >&2
    diff tests/golden/serve_bench_report.md target/serve-bench-report.md >&2 || true
    echo "regenerate with: DAIL_UPDATE_GOLDEN=1 cargo test -q -p bench --test cli" >&2
    exit 1
fi

echo "==> LIKE pathology timing guard"
# The iterative LIKE matcher must answer adversarial many-% patterns
# quickly; the old recursive matcher effectively hung here. 60s is a hard
# backstop (the tests assert tighter bounds internally).
timeout 60 cargo test -q --offline -p storage pathological >/dev/null || {
    echo "pathological LIKE patterns no longer complete in bounded time" >&2
    exit 1
}

echo "all checks passed"
